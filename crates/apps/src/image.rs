//! QOI decoding, PNG encoding and the image-compression application.
//!
//! Figure 8's compute-intensive application transforms an 18 kB QOI image to
//! PNG. Both codecs are implemented from scratch here: a complete QOI
//! decoder (the format is small by design) and a PNG encoder that emits
//! zlib "stored" deflate blocks — valid PNG output without an external
//! compression library.

use dandelion_isolation::{FunctionArtifact, FunctionCtx};

/// A decoded RGBA image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// RGBA pixel data, row-major, 4 bytes per pixel.
    pub pixels: Vec<u8>,
}

impl Image {
    /// Generates a deterministic synthetic test image (a colour gradient
    /// with structured regions so both codecs get realistic input).
    pub fn synthetic(width: u32, height: u32) -> Image {
        let mut pixels = Vec::with_capacity((width * height * 4) as usize);
        for y in 0..height {
            for x in 0..width {
                let r = (x * 255 / width.max(1)) as u8;
                let g = (y * 255 / height.max(1)) as u8;
                let b = ((x + y) % 64 * 4) as u8;
                let a = 255;
                // Flat regions every 8 columns make QOI runs/index entries
                // exercise more of the format.
                if (x / 8) % 2 == 0 {
                    pixels.extend_from_slice(&[r, g, 128, a]);
                } else {
                    pixels.extend_from_slice(&[r, g, b, a]);
                }
            }
        }
        Image {
            width,
            height,
            pixels,
        }
    }
}

// --------------------------------------------------------------------------
// QOI
// --------------------------------------------------------------------------

const QOI_MAGIC: &[u8; 4] = b"qoif";
const QOI_OP_INDEX: u8 = 0x00;
const QOI_OP_DIFF: u8 = 0x40;
const QOI_OP_LUMA: u8 = 0x80;
const QOI_OP_RUN: u8 = 0xC0;
const QOI_OP_RGB: u8 = 0xFE;
const QOI_OP_RGBA: u8 = 0xFF;

fn qoi_hash(pixel: [u8; 4]) -> usize {
    (pixel[0] as usize * 3 + pixel[1] as usize * 5 + pixel[2] as usize * 7 + pixel[3] as usize * 11)
        % 64
}

/// Encodes an RGBA image as QOI (used to build benchmark/test inputs).
pub fn qoi_encode(image: &Image) -> Vec<u8> {
    let mut out = Vec::with_capacity(image.pixels.len() / 2 + 32);
    out.extend_from_slice(QOI_MAGIC);
    out.extend_from_slice(&image.width.to_be_bytes());
    out.extend_from_slice(&image.height.to_be_bytes());
    out.push(4); // channels
    out.push(0); // colorspace
    let mut index = [[0u8; 4]; 64];
    let mut previous = [0u8, 0, 0, 255];
    let mut run = 0u8;
    for chunk in image.pixels.chunks_exact(4) {
        let pixel = [chunk[0], chunk[1], chunk[2], chunk[3]];
        if pixel == previous {
            run += 1;
            if run == 62 {
                out.push(QOI_OP_RUN | (run - 1));
                run = 0;
            }
            continue;
        }
        if run > 0 {
            out.push(QOI_OP_RUN | (run - 1));
            run = 0;
        }
        let hash = qoi_hash(pixel);
        if index[hash] == pixel {
            out.push(QOI_OP_INDEX | hash as u8);
        } else if pixel[3] == previous[3] {
            let dr = pixel[0].wrapping_sub(previous[0]) as i8 as i16;
            let dg = pixel[1].wrapping_sub(previous[1]) as i8 as i16;
            let db = pixel[2].wrapping_sub(previous[2]) as i8 as i16;
            if (-2..=1).contains(&dr) && (-2..=1).contains(&dg) && (-2..=1).contains(&db) {
                out.push(
                    QOI_OP_DIFF
                        | (((dr + 2) as u8) << 4)
                        | (((dg + 2) as u8) << 2)
                        | ((db + 2) as u8),
                );
            } else {
                let dr_dg = dr - dg;
                let db_dg = db - dg;
                if (-32..=31).contains(&dg)
                    && (-8..=7).contains(&dr_dg)
                    && (-8..=7).contains(&db_dg)
                {
                    out.push(QOI_OP_LUMA | ((dg + 32) as u8));
                    out.push((((dr_dg + 8) as u8) << 4) | ((db_dg + 8) as u8));
                } else {
                    out.push(QOI_OP_RGB);
                    out.extend_from_slice(&pixel[..3]);
                }
            }
        } else {
            out.push(QOI_OP_RGBA);
            out.extend_from_slice(&pixel);
        }
        index[hash] = pixel;
        previous = pixel;
    }
    if run > 0 {
        out.push(QOI_OP_RUN | (run - 1));
    }
    out.extend_from_slice(&[0, 0, 0, 0, 0, 0, 0, 1]);
    out
}

/// Decodes a QOI image.
pub fn qoi_decode(bytes: &[u8]) -> Result<Image, String> {
    if bytes.len() < 14 || &bytes[0..4] != QOI_MAGIC {
        return Err("not a QOI file".to_string());
    }
    let width = u32::from_be_bytes(bytes[4..8].try_into().expect("slice of 4"));
    let height = u32::from_be_bytes(bytes[8..12].try_into().expect("slice of 4"));
    let pixel_count = width as usize * height as usize;
    if pixel_count > 64 * 1024 * 1024 {
        return Err("image too large".to_string());
    }
    let mut pixels = Vec::with_capacity(pixel_count * 4);
    let mut index = [[0u8; 4]; 64];
    let mut pixel = [0u8, 0, 0, 255];
    let mut cursor = 14;
    while pixels.len() < pixel_count * 4 {
        if cursor >= bytes.len() {
            return Err("truncated QOI stream".to_string());
        }
        let byte = bytes[cursor];
        cursor += 1;
        match byte {
            QOI_OP_RGB => {
                if cursor + 3 > bytes.len() {
                    return Err("truncated RGB op".to_string());
                }
                pixel[0] = bytes[cursor];
                pixel[1] = bytes[cursor + 1];
                pixel[2] = bytes[cursor + 2];
                cursor += 3;
            }
            QOI_OP_RGBA => {
                if cursor + 4 > bytes.len() {
                    return Err("truncated RGBA op".to_string());
                }
                pixel.copy_from_slice(&bytes[cursor..cursor + 4]);
                cursor += 4;
            }
            _ => match byte & 0xC0 {
                QOI_OP_INDEX => pixel = index[(byte & 0x3F) as usize],
                QOI_OP_DIFF => {
                    let dr = ((byte >> 4) & 0x03) as i16 - 2;
                    let dg = ((byte >> 2) & 0x03) as i16 - 2;
                    let db = (byte & 0x03) as i16 - 2;
                    pixel[0] = (pixel[0] as i16 + dr) as u8;
                    pixel[1] = (pixel[1] as i16 + dg) as u8;
                    pixel[2] = (pixel[2] as i16 + db) as u8;
                }
                QOI_OP_LUMA => {
                    if cursor >= bytes.len() {
                        return Err("truncated LUMA op".to_string());
                    }
                    let dg = (byte & 0x3F) as i16 - 32;
                    let second = bytes[cursor];
                    cursor += 1;
                    let dr_dg = ((second >> 4) & 0x0F) as i16 - 8;
                    let db_dg = (second & 0x0F) as i16 - 8;
                    pixel[0] = (pixel[0] as i16 + dg + dr_dg) as u8;
                    pixel[1] = (pixel[1] as i16 + dg) as u8;
                    pixel[2] = (pixel[2] as i16 + dg + db_dg) as u8;
                }
                QOI_OP_RUN => {
                    let run = (byte & 0x3F) as usize + 1;
                    for _ in 0..run {
                        pixels.extend_from_slice(&pixel);
                    }
                    index[qoi_hash(pixel)] = pixel;
                    continue;
                }
                _ => unreachable!("all two-bit tags covered"),
            },
        }
        index[qoi_hash(pixel)] = pixel;
        pixels.extend_from_slice(&pixel);
    }
    pixels.truncate(pixel_count * 4);
    Ok(Image {
        width,
        height,
        pixels,
    })
}

// --------------------------------------------------------------------------
// PNG
// --------------------------------------------------------------------------

fn crc32(bytes: &[u8]) -> u32 {
    let mut table = [0u32; 256];
    for (index, entry) in table.iter_mut().enumerate() {
        let mut value = index as u32;
        for _ in 0..8 {
            value = if value & 1 == 1 {
                0xEDB8_8320 ^ (value >> 1)
            } else {
                value >> 1
            };
        }
        *entry = value;
    }
    let mut crc = 0xFFFF_FFFFu32;
    for byte in bytes {
        crc = table[((crc ^ *byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

fn adler32(bytes: &[u8]) -> u32 {
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    for byte in bytes {
        a = (a + *byte as u32) % 65_521;
        b = (b + a) % 65_521;
    }
    (b << 16) | a
}

fn png_chunk(out: &mut Vec<u8>, kind: &[u8; 4], payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(kind);
    out.extend_from_slice(payload);
    let mut crc_input = Vec::with_capacity(4 + payload.len());
    crc_input.extend_from_slice(kind);
    crc_input.extend_from_slice(payload);
    out.extend_from_slice(&crc32(&crc_input).to_be_bytes());
}

/// Encodes an RGBA image as a PNG file (zlib stored blocks, no filtering).
pub fn png_encode(image: &Image) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&[0x89, b'P', b'N', b'G', b'\r', b'\n', 0x1A, b'\n']);

    // IHDR
    let mut ihdr = Vec::with_capacity(13);
    ihdr.extend_from_slice(&image.width.to_be_bytes());
    ihdr.extend_from_slice(&image.height.to_be_bytes());
    ihdr.extend_from_slice(&[8, 6, 0, 0, 0]); // 8-bit RGBA
    png_chunk(&mut out, b"IHDR", &ihdr);

    // Raw scanlines: filter byte 0 + RGBA row.
    let row_bytes = image.width as usize * 4;
    let mut raw = Vec::with_capacity((row_bytes + 1) * image.height as usize);
    for row in 0..image.height as usize {
        raw.push(0);
        raw.extend_from_slice(&image.pixels[row * row_bytes..(row + 1) * row_bytes]);
    }

    // zlib stream with stored (uncompressed) deflate blocks.
    let mut idat = vec![0x78, 0x01];
    let mut offset = 0usize;
    while offset < raw.len() {
        let chunk = (raw.len() - offset).min(65_535);
        let last = offset + chunk == raw.len();
        idat.push(if last { 1 } else { 0 });
        idat.extend_from_slice(&(chunk as u16).to_le_bytes());
        idat.extend_from_slice(&(!(chunk as u16)).to_le_bytes());
        idat.extend_from_slice(&raw[offset..offset + chunk]);
        offset += chunk;
    }
    idat.extend_from_slice(&adler32(&raw).to_be_bytes());
    png_chunk(&mut out, b"IDAT", &idat);
    png_chunk(&mut out, b"IEND", &[]);
    out
}

/// Parses the dimensions out of a PNG produced by [`png_encode`].
pub fn png_dimensions(bytes: &[u8]) -> Option<(u32, u32)> {
    if bytes.len() < 33 || bytes[1..4] != *b"PNG" {
        return None;
    }
    let width = u32::from_be_bytes(bytes[16..20].try_into().ok()?);
    let height = u32::from_be_bytes(bytes[20..24].try_into().ok()?);
    Some((width, height))
}

/// The `CompressImage` compute function: QOI in, PNG out.
pub fn compress_artifact() -> FunctionArtifact {
    FunctionArtifact::new("CompressImage", &["Png"], |ctx: &mut FunctionCtx| {
        let input = ctx.single_input("Qoi")?.clone();
        let image = qoi_decode(&input.data)?;
        let png = png_encode(&image);
        ctx.push_output_bytes("Png", "image.png", png)
    })
    .with_binary_size(96 * 1024)
    .with_memory_requirement(64 * 1024 * 1024)
}

/// The image-compression composition: a single compute node.
pub fn composition() -> dandelion_dsl::CompositionGraph {
    dandelion_dsl::CompositionBuilder::new("CompressImageApp")
        .input("Qoi")
        .output("Png")
        .node("CompressImage", |node| {
            node.bind("Qoi", dandelion_dsl::Distribution::All, "Qoi")
                .publish("Png", "Png")
        })
        .build()
        .expect("static image composition")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qoi_roundtrip_preserves_pixels() {
        let image = Image::synthetic(64, 48);
        let encoded = qoi_encode(&image);
        assert!(encoded.len() < image.pixels.len());
        let decoded = qoi_decode(&encoded).unwrap();
        assert_eq!(decoded, image);
    }

    #[test]
    fn qoi_rejects_garbage() {
        assert!(qoi_decode(b"not a qoi").is_err());
        let image = Image::synthetic(8, 8);
        let encoded = qoi_encode(&image);
        assert!(qoi_decode(&encoded[..20]).is_err());
    }

    #[test]
    fn png_structure_is_valid() {
        let image = Image::synthetic(32, 16);
        let png = png_encode(&image);
        assert_eq!(
            &png[..8],
            &[0x89, b'P', b'N', b'G', b'\r', b'\n', 0x1A, b'\n']
        );
        assert_eq!(png_dimensions(&png), Some((32, 16)));
        assert!(png.windows(4).any(|window| window == b"IDAT"));
        assert!(png.ends_with(&crc32(b"IEND").to_be_bytes()));
    }

    #[test]
    fn checksums_match_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn compress_artifact_produces_png_from_qoi() {
        use dandelion_common::DataSet;
        use dandelion_isolation::SyscallPolicy;
        let image = Image::synthetic(96, 48);
        let qoi = qoi_encode(&image);
        // Paper uses an ~18 kB QOI input; the synthetic image is in range.
        assert!(qoi.len() > 4 * 1024);

        let artifact = compress_artifact();
        let mut ctx = FunctionCtx::new(
            vec![DataSet::single("Qoi", qoi)],
            artifact.output_sets.clone(),
            64 * 1024 * 1024,
            SyscallPolicy::strict(),
        )
        .unwrap();
        artifact.logic.run(&mut ctx).unwrap();
        let outputs = ctx.take_outputs();
        assert_eq!(png_dimensions(&outputs[0].items[0].data), Some((96, 48)));
    }

    #[test]
    fn compress_artifact_rejects_invalid_input() {
        use dandelion_common::DataSet;
        use dandelion_isolation::SyscallPolicy;
        let artifact = compress_artifact();
        let mut ctx = FunctionCtx::new(
            vec![DataSet::single("Qoi", b"garbage".to_vec())],
            artifact.output_sets.clone(),
            1024 * 1024,
            SyscallPolicy::strict(),
        )
        .unwrap();
        assert!(artifact.logic.run(&mut ctx).is_err());
    }
}
