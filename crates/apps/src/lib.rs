//! Application library: the compute functions and compositions used by the
//! paper's evaluation, implemented against the Dandelion public API.
//!
//! * [`matmul`] — 1×1 / 128×128 int64 matrix multiplication (the
//!   microbenchmark of Table 1 and Figures 2, 5, 6).
//! * [`phases`] — the fetch-and-compute composition microbenchmark of §7.4.
//! * [`logproc`] — the distributed log-processing application of Figure 3:
//!   `Access → HTTP → FanOut → HTTP (fan-out) → Render`.
//! * [`image`] — QOI decoding and PNG encoding, the compute-heavy
//!   image-compression application of Figure 8.
//! * [`text2sql`] — the agentic Text2SQL workflow of §7.7: prompt parsing,
//!   LLM call, SQL extraction, database call, response formatting.
//! * [`query_app`] — elastic SSB query processing (§7.7, Figure 9): plan →
//!   fetch partitions from the object store → per-partition execution →
//!   merge.
//! * [`setup`] — helpers that register the applications and their simulated
//!   services on a [`dandelion_core::WorkerNode`].

pub mod image;
pub mod logproc;
pub mod matmul;
pub mod phases;
pub mod query_app;
pub mod setup;
pub mod text2sql;
