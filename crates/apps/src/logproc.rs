//! The distributed log-processing application (paper Figure 3, Listing 1/2).
//!
//! `Access` turns the client's access token into an HTTP request to the auth
//! service; the HTTP communication function performs it; `FanOut` parses the
//! list of authorized log endpoints and emits one GET request per endpoint;
//! a second HTTP node fetches all logs in parallel; `Render` templates the
//! responses into a single HTML report.

use dandelion_dsl::builder::render_logs_composition;
use dandelion_dsl::CompositionGraph;
use dandelion_http::{HttpRequest, HttpResponse};
use dandelion_isolation::{FunctionArtifact, FunctionCtx};

/// The auth-service endpoint the Access function targets.
pub const AUTH_ENDPOINT: &str = "http://auth.internal/authorize";

/// `Access`: access token → auth-service request.
pub fn access_artifact() -> FunctionArtifact {
    FunctionArtifact::new("Access", &["HTTPRequest"], |ctx: &mut FunctionCtx| {
        let token = ctx.single_input("AccessToken")?.clone();
        let token_text = token.as_str().ok_or("access token is not UTF-8")?.trim();
        if token_text.is_empty() {
            return Err("empty access token".into());
        }
        let request = HttpRequest::post(AUTH_ENDPOINT, token_text.as_bytes().to_vec())
            .with_header("Content-Type", "text/plain");
        ctx.push_output_bytes("HTTPRequest", "auth-request", request.to_bytes())
    })
}

/// `FanOut`: auth response → one GET request per authorized log endpoint.
pub fn fanout_artifact() -> FunctionArtifact {
    FunctionArtifact::new("FanOut", &["HTTPRequests"], |ctx: &mut FunctionCtx| {
        let response_item = ctx.single_input("HTTPResponse")?.clone();
        let response = dandelion_http::parse_response_shared(&response_item.data)
            .map_err(|err| format!("malformed auth response: {err}"))?;
        if !response.status.is_success() {
            // Authorization failed: produce no requests, downstream nodes
            // skip and the composition returns an empty report (§4.4).
            return Ok(());
        }
        let body = response.body_text();
        for (index, endpoint) in body
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .enumerate()
        {
            let request = HttpRequest::get(endpoint).to_bytes();
            ctx.push_output_bytes("HTTPRequests", &format!("log-request-{index}"), request)?;
        }
        Ok(())
    })
}

/// `Render`: log responses → a single HTML report.
pub fn render_artifact() -> FunctionArtifact {
    FunctionArtifact::new("Render", &["HTMLOutput"], |ctx: &mut FunctionCtx| {
        let responses = ctx
            .input_set("HTTPResponses")
            .ok_or("missing input set `HTTPResponses`")?
            .clone();
        let mut html = String::from("<html><body><h1>Service logs</h1>\n");
        for item in &responses.items {
            let response: HttpResponse = dandelion_http::parse_response_shared(&item.data)
                .map_err(|err| format!("malformed log response: {err}"))?;
            if response.status.is_success() {
                html.push_str("<section><pre>\n");
                let body = response.body_text();
                for line in body.lines().take(200) {
                    html.push_str(line);
                    html.push('\n');
                }
                html.push_str("</pre></section>\n");
            } else {
                html.push_str(&format!(
                    "<section class=\"error\">upstream error: {}</section>\n",
                    response.status
                ));
            }
        }
        html.push_str("</body></html>\n");
        ctx.push_output_bytes("HTMLOutput", "report.html", html.into_bytes())
    })
}

/// The `RenderLogs` composition (identical to the paper's Listing 2).
pub fn composition() -> CompositionGraph {
    render_logs_composition()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dandelion_common::DataSet;
    use dandelion_isolation::SyscallPolicy;

    fn run(artifact: &FunctionArtifact, inputs: Vec<DataSet>) -> Vec<DataSet> {
        let mut ctx = FunctionCtx::new(
            inputs,
            artifact.output_sets.clone(),
            4 * 1024 * 1024,
            SyscallPolicy::permissive(),
        )
        .unwrap();
        artifact.logic.run(&mut ctx).unwrap();
        ctx.take_outputs()
    }

    #[test]
    fn access_builds_an_auth_request() {
        let outputs = run(
            &access_artifact(),
            vec![DataSet::single("AccessToken", b"demo-token".to_vec())],
        );
        let request = dandelion_http::parse_request(&outputs[0].items[0].data).unwrap();
        assert_eq!(request.target, AUTH_ENDPOINT);
        assert_eq!(request.body, b"demo-token");
    }

    #[test]
    fn fanout_emits_one_request_per_endpoint() {
        let auth_response = HttpResponse::ok(
            b"http://logs-0.internal/logs\nhttp://logs-1.internal/logs\n".to_vec(),
        )
        .to_bytes();
        let outputs = run(
            &fanout_artifact(),
            vec![DataSet::single("HTTPResponse", auth_response)],
        );
        assert_eq!(outputs[0].len(), 2);
        let request = dandelion_http::parse_request(&outputs[0].items[1].data).unwrap();
        assert_eq!(request.target, "http://logs-1.internal/logs");
    }

    #[test]
    fn fanout_produces_nothing_on_auth_failure() {
        let denied = HttpResponse::error(dandelion_http::StatusCode::UNAUTHORIZED, "no").to_bytes();
        let outputs = run(
            &fanout_artifact(),
            vec![DataSet::single("HTTPResponse", denied)],
        );
        assert!(outputs[0].is_empty());
    }

    #[test]
    fn render_includes_logs_and_errors() {
        use dandelion_common::DataItem;
        let good = HttpResponse::ok(b"line one\nline two".to_vec()).to_bytes();
        let bad =
            HttpResponse::error(dandelion_http::StatusCode::SERVICE_UNAVAILABLE, "down").to_bytes();
        let outputs = run(
            &render_artifact(),
            vec![DataSet::with_items(
                "HTTPResponses",
                vec![DataItem::new("r0", good), DataItem::new("r1", bad)],
            )],
        );
        let html = outputs[0].items[0].as_str().unwrap().to_string();
        assert!(html.contains("line one"));
        assert!(html.contains("upstream error: 503"));
        assert!(html.starts_with("<html>"));
    }

    #[test]
    fn composition_matches_paper_listing() {
        let graph = composition();
        assert_eq!(graph.name, "RenderLogs");
        assert_eq!(graph.nodes.len(), 5);
    }
}
