//! Integer matrix multiplication compute functions.
//!
//! The paper's sandbox-creation and compute microbenchmarks run 1×1 and
//! 128×128 int64 matrix multiplications. The function reads two row-major
//! int64 matrices from its `Matrices` input set (items `a` and `b`, each
//! prefixed with a u32 dimension) and writes the product to its `Product`
//! output set.

use dandelion_isolation::{FunctionArtifact, FunctionCtx};

/// Serializes a square row-major matrix with a u32 dimension prefix.
pub fn encode_matrix(dimension: usize, values: &[i64]) -> Vec<u8> {
    assert_eq!(values.len(), dimension * dimension, "matrix must be square");
    let mut out = Vec::with_capacity(4 + values.len() * 8);
    out.extend_from_slice(&(dimension as u32).to_le_bytes());
    for value in values {
        out.extend_from_slice(&value.to_le_bytes());
    }
    out
}

/// Parses a matrix encoded by [`encode_matrix`].
pub fn decode_matrix(bytes: &[u8]) -> Result<(usize, Vec<i64>), String> {
    if bytes.len() < 4 {
        return Err("matrix payload too short".to_string());
    }
    let dimension = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    let expected = 4 + dimension * dimension * 8;
    if bytes.len() != expected {
        return Err(format!(
            "matrix payload has {} bytes, expected {expected}",
            bytes.len()
        ));
    }
    let values = bytes[4..]
        .chunks_exact(8)
        .map(|chunk| i64::from_le_bytes(chunk.try_into().expect("chunk of 8 bytes")))
        .collect();
    Ok((dimension, values))
}

/// Multiplies two square row-major matrices.
pub fn multiply(dimension: usize, a: &[i64], b: &[i64]) -> Vec<i64> {
    let mut product = vec![0i64; dimension * dimension];
    for row in 0..dimension {
        for k in 0..dimension {
            let a_value = a[row * dimension + k];
            for column in 0..dimension {
                product[row * dimension + column] = product[row * dimension + column]
                    .wrapping_add(a_value.wrapping_mul(b[k * dimension + column]));
            }
        }
    }
    product
}

/// Creates the matmul compute-function artifact.
///
/// Input set `Matrices` must contain items named `a` and `b`; output set
/// `Product` receives one item `product`.
pub fn matmul_artifact() -> FunctionArtifact {
    FunctionArtifact::new("MatMul", &["Product"], |ctx: &mut FunctionCtx| {
        let matrices = ctx
            .input_set("Matrices")
            .ok_or("missing input set `Matrices`")?
            .clone();
        let find = |name: &str| {
            matrices
                .items
                .iter()
                .find(|item| item.name == name)
                .ok_or_else(|| format!("missing matrix `{name}`"))
        };
        let (dim_a, a) = decode_matrix(&find("a")?.data)?;
        let (dim_b, b) = decode_matrix(&find("b")?.data)?;
        if dim_a != dim_b {
            return Err(format!("dimension mismatch: {dim_a} vs {dim_b}").into());
        }
        let product = multiply(dim_a, &a, &b);
        ctx.push_output_bytes("Product", "product", encode_matrix(dim_a, &product))
    })
    .with_binary_size(48 * 1024)
    .with_memory_requirement(8 * 1024 * 1024)
}

/// Builds the `Matrices` input set for an n×n identity × constant workload.
pub fn matmul_inputs(dimension: usize, seed: i64) -> dandelion_common::DataSet {
    use dandelion_common::{DataItem, DataSet};
    let mut a = vec![0i64; dimension * dimension];
    let mut b = vec![0i64; dimension * dimension];
    for index in 0..dimension {
        a[index * dimension + index] = 1;
    }
    for (index, value) in b.iter_mut().enumerate() {
        *value = seed.wrapping_add(index as i64);
    }
    DataSet::with_items(
        "Matrices",
        vec![
            DataItem::new("a", encode_matrix(dimension, &a)),
            DataItem::new("b", encode_matrix(dimension, &b)),
        ],
    )
}

/// The single-node matmul composition used by benchmarks and examples.
pub fn matmul_composition() -> dandelion_dsl::CompositionGraph {
    dandelion_dsl::CompositionBuilder::new("MatMulApp")
        .input("Matrices")
        .output("Product")
        .node("MatMul", |node| {
            node.bind("Matrices", dandelion_dsl::Distribution::All, "Matrices")
                .publish("Product", "Product")
        })
        .build()
        .expect("static matmul composition")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dandelion_isolation::ExecutionTask;

    #[test]
    fn matrix_encoding_roundtrip() {
        let values = vec![1, 2, 3, 4];
        let encoded = encode_matrix(2, &values);
        let (dimension, decoded) = decode_matrix(&encoded).unwrap();
        assert_eq!(dimension, 2);
        assert_eq!(decoded, values);
        assert!(decode_matrix(&encoded[..7]).is_err());
        assert!(decode_matrix(&[0, 0, 0, 1]).is_err());
    }

    #[test]
    fn multiply_identity_preserves_matrix() {
        let dimension = 8;
        let mut identity = vec![0i64; dimension * dimension];
        for index in 0..dimension {
            identity[index * dimension + index] = 1;
        }
        let values: Vec<i64> = (0..(dimension * dimension) as i64).collect();
        assert_eq!(multiply(dimension, &identity, &values), values);
    }

    #[test]
    fn multiply_small_known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let product = multiply(2, &[1, 2, 3, 4], &[5, 6, 7, 8]);
        assert_eq!(product, vec![19, 22, 43, 50]);
    }

    #[test]
    fn artifact_executes_through_a_backend() {
        use dandelion_isolation::HardwarePlatform;
        let backend = dandelion_isolation::create_backend(
            dandelion_common::config::IsolationKind::Cheri,
            HardwarePlatform::Morello,
        );
        let artifact = std::sync::Arc::new(matmul_artifact());
        let task = ExecutionTask::new(artifact, vec![matmul_inputs(16, 3)]);
        let report = backend.execute(&task).unwrap();
        let (dimension, product) = decode_matrix(&report.outputs[0].items[0].data).unwrap();
        assert_eq!(dimension, 16);
        // Identity × B = B.
        let (_, expected) = decode_matrix(&matmul_inputs(16, 3).items[1].data).unwrap();
        assert_eq!(product, expected);
    }

    #[test]
    fn artifact_rejects_malformed_inputs() {
        use dandelion_common::{DataItem, DataSet};
        use dandelion_isolation::HardwarePlatform;
        let backend = dandelion_isolation::create_backend(
            dandelion_common::config::IsolationKind::Native,
            HardwarePlatform::Morello,
        );
        let artifact = std::sync::Arc::new(matmul_artifact());
        let task = ExecutionTask::new(
            artifact,
            vec![DataSet::with_items(
                "Matrices",
                vec![DataItem::new("a", vec![1, 2, 3])],
            )],
        );
        assert!(backend.execute(&task).is_err());
    }
}
