//! The fetch-and-compute composition microbenchmark (paper §7.4).
//!
//! Each *phase* fetches a 64 KiB array from the object store and computes
//! sum, min and max over a sample of its elements. The composition chains
//! `phases` such pairs of communication and compute functions; sweeping the
//! phase count measures the overhead of decomposing an application into many
//! short-lived sandboxes.

use dandelion_dsl::{CompositionBuilder, CompositionGraph, Distribution};
use dandelion_http::HttpRequest;
use dandelion_isolation::{FunctionArtifact, FunctionCtx};

/// Size of the fetched array in bytes.
pub const ARRAY_BYTES: usize = 64 * 1024;
/// Number of elements sampled by the compute step.
pub const SAMPLE: usize = 1024;

/// `MakeFetch`: emits the GET request for one phase's array.
///
/// The object key is taken from the `Phase` input item's contents so that
/// consecutive phases fetch different objects.
pub fn make_fetch_artifact() -> FunctionArtifact {
    FunctionArtifact::new("MakeFetch", &["Request"], |ctx: &mut FunctionCtx| {
        let phase = ctx.single_input("Phase")?.clone();
        let key = phase.as_str().unwrap_or("0").trim().to_string();
        let request = HttpRequest::get(format!("http://s3.internal/arrays/{key}")).to_bytes();
        ctx.push_output_bytes("Request", "fetch", request)
    })
}

/// `SumMinMax`: parses the fetched array and reduces a sample of it, then
/// emits the key of the next phase's object.
pub fn sum_min_max_artifact() -> FunctionArtifact {
    FunctionArtifact::new(
        "SumMinMax",
        &["Stats", "NextPhase"],
        |ctx: &mut FunctionCtx| {
            let response_item = ctx.single_input("Response")?.clone();
            let response = dandelion_http::parse_response_shared(&response_item.data)
                .map_err(|err| format!("bad response: {err}"))?;
            if !response.status.is_success() {
                return Err(format!("fetch failed: {}", response.status).into());
            }
            let values: Vec<i64> = response
                .body
                .chunks_exact(8)
                .map(|chunk| i64::from_le_bytes(chunk.try_into().expect("8-byte chunk")))
                .collect();
            if values.is_empty() {
                return Err("empty array".into());
            }
            let stride = (values.len() / SAMPLE).max(1);
            let sample: Vec<i64> = values.iter().step_by(stride).copied().collect();
            let sum: i64 = sample.iter().sum();
            let min = sample.iter().min().copied().unwrap_or(0);
            let max = sample.iter().max().copied().unwrap_or(0);
            ctx.push_output_bytes(
                "Stats",
                "stats",
                format!("sum={sum} min={min} max={max}").into_bytes(),
            )?;
            // The phase index of the next fetch is derived from this phase's key
            // (encoded in the request URL by convention: `arrays/<index>`).
            let next = (sum.unsigned_abs() % 1000).to_string();
            ctx.push_output_bytes("NextPhase", "phase", next.into_bytes())
        },
    )
}

/// Builds the N-phase fetch-and-compute composition.
pub fn composition(phases: usize) -> CompositionGraph {
    let phases = phases.max(1);
    let mut builder = CompositionBuilder::new(&format!("FetchCompute{phases}"))
        .input("Phase0")
        .output("FinalStats");
    let mut previous_phase = "Phase0".to_string();
    for phase in 0..phases {
        let request = format!("Request{phase}");
        let response = format!("Response{phase}");
        let stats = format!("Stats{phase}");
        let next_phase = format!("Phase{}", phase + 1);
        let previous = previous_phase.clone();
        builder = builder
            .node("MakeFetch", |node| {
                node.bind("Phase", Distribution::All, &previous)
                    .publish(&request, "Request")
            })
            .node("HTTP", |node| {
                node.bind("Request", Distribution::Each, &request)
                    .publish(&response, "Response")
            })
            .node("SumMinMax", |node| {
                node.bind("Response", Distribution::All, &response)
                    .publish(&stats, "Stats")
                    .publish(&next_phase, "NextPhase")
            });
        previous_phase = next_phase;
    }
    // The final stats of the last phase are the composition output.
    let last_stats = format!("Stats{}", phases - 1);
    builder = builder.node("Finalize", |node| {
        node.bind("Stats", Distribution::All, &last_stats)
            .publish("FinalStats", "Out")
    });
    builder
        .build()
        .expect("static fetch-and-compute composition")
}

/// `Finalize`: copies the last phase's stats to the composition output.
pub fn finalize_artifact() -> FunctionArtifact {
    FunctionArtifact::new("Finalize", &["Out"], |ctx: &mut FunctionCtx| {
        let stats = ctx.single_input("Stats")?.clone();
        ctx.push_output_bytes("Out", "stats", stats.data.as_slice().to_vec())
    })
}

/// Builds the 64 KiB little-endian i64 array object for key `key`.
pub fn array_object(key: u64) -> Vec<u8> {
    let mut rng = dandelion_common::rng::SplitMix64::new(key.wrapping_mul(0x9E37) + 1);
    let mut out = Vec::with_capacity(ARRAY_BYTES);
    while out.len() < ARRAY_BYTES {
        out.extend_from_slice(&(rng.next_u64() as i64 % 10_000).to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_has_three_nodes_per_phase_plus_finalize() {
        for phases in [1, 2, 8, 16] {
            let graph = composition(phases);
            assert_eq!(graph.nodes.len(), phases * 3 + 1);
            assert_eq!(graph.external_outputs, vec!["FinalStats"]);
        }
    }

    #[test]
    fn array_objects_are_full_sized_and_deterministic() {
        let a = array_object(7);
        let b = array_object(7);
        assert_eq!(a.len(), ARRAY_BYTES);
        assert_eq!(a, b);
        assert_ne!(array_object(8), a);
    }

    #[test]
    fn sum_min_max_reduces_a_fetched_array() {
        use dandelion_common::DataSet;
        use dandelion_isolation::SyscallPolicy;
        let body = array_object(3);
        let response = dandelion_http::HttpResponse::ok(body).to_bytes();
        let artifact = sum_min_max_artifact();
        let mut ctx = FunctionCtx::new(
            vec![DataSet::single("Response", response)],
            artifact.output_sets.clone(),
            8 * 1024 * 1024,
            SyscallPolicy::strict(),
        )
        .unwrap();
        artifact.logic.run(&mut ctx).unwrap();
        let outputs = ctx.take_outputs();
        let stats = outputs[0].items[0].as_str().unwrap();
        assert!(stats.contains("sum=") && stats.contains("min=") && stats.contains("max="));
        assert_eq!(outputs[1].name, "NextPhase");
    }

    #[test]
    fn make_fetch_builds_a_get_request() {
        use dandelion_common::DataSet;
        use dandelion_isolation::SyscallPolicy;
        let artifact = make_fetch_artifact();
        let mut ctx = FunctionCtx::new(
            vec![DataSet::single("Phase", b"42".to_vec())],
            artifact.output_sets.clone(),
            1024 * 1024,
            SyscallPolicy::strict(),
        )
        .unwrap();
        artifact.logic.run(&mut ctx).unwrap();
        let outputs = ctx.take_outputs();
        let request = dandelion_http::parse_request(&outputs[0].items[0].data).unwrap();
        assert_eq!(request.target, "http://s3.internal/arrays/42");
    }
}
