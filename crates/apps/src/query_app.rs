//! Elastic SSB query processing as a Dandelion composition (paper §7.7).
//!
//! The data lives in the S3-like object store as CSV partitions of the
//! lineorder fact table plus the dimension tables. The composition is:
//!
//! 1. `PlanQuery` (compute) — emits one GET request per lineorder partition
//!    and for each dimension table.
//! 2. `HTTP` (communication, `each`) — fetches all objects in parallel.
//! 3. `RunPartition` (compute, `key`) — parses one lineorder partition plus
//!    the dimensions and runs the query over that partition.
//! 4. `MergePartials` (compute) — merges the per-partition results into the
//!    final answer.

use dandelion_dsl::{CompositionBuilder, CompositionGraph, Distribution};
use dandelion_http::HttpRequest;
use dandelion_isolation::{FunctionArtifact, FunctionCtx};
use dandelion_query::ssb::{lineorder_schema, merge_partials, SsbDatabase, SsbQuery};
use dandelion_query::table::{DataType, Schema, Table};
use dandelion_services::object_store::ObjectStore;

/// The object-store host used by the query application.
pub const STORE_HOST: &str = "s3.internal";
/// The bucket holding the SSB data.
pub const BUCKET: &str = "ssb";

fn dimension_schema(table: &str) -> Schema {
    match table {
        "date" => Schema::new(&[
            ("d_datekey", DataType::Int64),
            ("d_year", DataType::Int64),
            ("d_yearmonthnum", DataType::Int64),
        ]),
        "customer" => Schema::new(&[
            ("c_custkey", DataType::Int64),
            ("c_nation", DataType::Utf8),
            ("c_region", DataType::Utf8),
        ]),
        "supplier" => Schema::new(&[
            ("s_suppkey", DataType::Int64),
            ("s_nation", DataType::Utf8),
            ("s_region", DataType::Utf8),
        ]),
        "part" => Schema::new(&[
            ("p_partkey", DataType::Int64),
            ("p_mfgr", DataType::Utf8),
            ("p_category", DataType::Utf8),
            ("p_brand1", DataType::Utf8),
        ]),
        other => panic!("unknown dimension table {other}"),
    }
}

/// Uploads an SSB database into the object store as CSV objects, splitting
/// the fact table into `partitions` objects. Returns the total bytes stored.
pub fn upload_database(store: &ObjectStore, db: &SsbDatabase, partitions: usize) -> usize {
    for (name, table) in [
        ("date", &db.date),
        ("customer", &db.customer),
        ("supplier", &db.supplier),
        ("part", &db.part),
    ] {
        store.put_object(BUCKET, &format!("{name}.csv"), table.to_csv().into_bytes());
    }
    for (index, part) in db.lineorder.partition(partitions).iter().enumerate() {
        store.put_object(
            BUCKET,
            &format!("lineorder-{index:03}.csv"),
            part.to_csv().into_bytes(),
        );
    }
    store.total_bytes()
}

fn parse_query(name: &str) -> Result<SsbQuery, String> {
    match name.trim() {
        "1.1" | "Q1.1" => Ok(SsbQuery::Q1_1),
        "2.1" | "Q2.1" => Ok(SsbQuery::Q2_1),
        "3.1" | "Q3.1" => Ok(SsbQuery::Q3_1),
        "4.1" | "Q4.1" => Ok(SsbQuery::Q4_1),
        other => Err(format!("unknown SSB query `{other}`")),
    }
}

/// `PlanQuery`: emits fetch requests for every partition and dimension.
///
/// Input `QuerySpec` is `"<query>;<partitions>"` (e.g. `"1.1;8"`). Fetch
/// requests carry a key (`partition-N` or `dimensions`) so the `key`
/// distribution routes each partition plus a copy of the dimensions to its
/// own `RunPartition` instance.
pub fn plan_query_artifact() -> FunctionArtifact {
    FunctionArtifact::new(
        "PlanQuery",
        &["Fetches", "Query"],
        |ctx: &mut FunctionCtx| {
            let spec = ctx.single_input("QuerySpec")?.clone();
            let text = spec.as_str().ok_or("query spec is not UTF-8")?;
            let (query, partitions) = text
                .split_once(';')
                .ok_or("expected `<query>;<partitions>`")?;
            parse_query(query)?;
            let partitions: usize = partitions
                .trim()
                .parse()
                .map_err(|_| "partition count is not a number".to_string())?;
            if partitions == 0 || partitions > 256 {
                return Err("partition count must be within 1..=256".into());
            }
            for partition in 0..partitions {
                for (kind, object) in [
                    ("lineorder", format!("lineorder-{partition:03}.csv")),
                    ("date", "date.csv".to_string()),
                    ("customer", "customer.csv".to_string()),
                    ("supplier", "supplier.csv".to_string()),
                    ("part", "part.csv".to_string()),
                ] {
                    let request =
                        HttpRequest::get(format!("http://{STORE_HOST}/{BUCKET}/{object}"))
                            .to_bytes();
                    let item = dandelion_common::DataItem::with_key(
                        format!("fetch-{partition:03}-{kind}"),
                        format!("partition-{partition:03}"),
                        request,
                    );
                    ctx.push_output("Fetches", item)?;
                }
            }
            ctx.push_output_bytes("Query", "query", query.trim().as_bytes().to_vec())
        },
    )
    .with_memory_requirement(16 * 1024 * 1024)
}

/// `RunPartition`: parses one partition's objects and runs the query.
pub fn run_partition_artifact() -> FunctionArtifact {
    FunctionArtifact::new("RunPartition", &["Partial"], |ctx: &mut FunctionCtx| {
        let query_name = ctx.single_input("Query")?.clone();
        let query = parse_query(query_name.as_str().ok_or("query name is not UTF-8")?)?;
        let responses = ctx
            .input_set("Responses")
            .ok_or("missing input set `Responses`")?
            .clone();
        let mut lineorder = None;
        let mut date = None;
        let mut customer = None;
        let mut supplier = None;
        let mut part = None;
        for item in &responses.items {
            let response = dandelion_http::parse_response_shared(&item.data)
                .map_err(|err| format!("bad fetch response: {err}"))?;
            if !response.status.is_success() {
                return Err(format!("object fetch failed: {}", response.status).into());
            }
            let csv = response.body_text();
            // The item name encodes which table this is:
            // `response-fetch-<partition>-<table>`.
            let table_kind = item.name.rsplit('-').next().unwrap_or_default().to_string();
            match table_kind.as_str() {
                "lineorder" => lineorder = Some(Table::from_csv(lineorder_schema(), &csv)?),
                "date" => date = Some(Table::from_csv(dimension_schema("date"), &csv)?),
                "customer" => customer = Some(Table::from_csv(dimension_schema("customer"), &csv)?),
                "supplier" => supplier = Some(Table::from_csv(dimension_schema("supplier"), &csv)?),
                "part" => part = Some(Table::from_csv(dimension_schema("part"), &csv)?),
                other => return Err(format!("unexpected object `{other}`").into()),
            }
        }
        let db = SsbDatabase {
            lineorder: lineorder.ok_or("partition is missing its lineorder object")?,
            date: date.ok_or("missing date dimension")?,
            customer: customer.ok_or("missing customer dimension")?,
            supplier: supplier.ok_or("missing supplier dimension")?,
            part: part.ok_or("missing part dimension")?,
        };
        let partial = query.run_over(&db, &db.lineorder)?;
        ctx.push_output_bytes("Partial", "partial.csv", partial.to_csv().into_bytes())
    })
    .with_memory_requirement(256 * 1024 * 1024)
}

/// `MergePartials`: merges per-partition results into the final table.
pub fn merge_partials_artifact() -> FunctionArtifact {
    FunctionArtifact::new("MergePartials", &["Result"], |ctx: &mut FunctionCtx| {
        let query_name = ctx.single_input("Query")?.clone();
        let query = parse_query(query_name.as_str().ok_or("query name is not UTF-8")?)?;
        let partials_set = ctx
            .input_set("Partials")
            .ok_or("missing input set `Partials`")?
            .clone();
        if partials_set.is_empty() {
            return Err("no partial results to merge".into());
        }
        // All partials share the schema of the first one.
        let first_csv = String::from_utf8_lossy(&partials_set.items[0].data).into_owned();
        let header = first_csv.lines().next().unwrap_or_default().to_string();
        let schema = partial_schema(query, &header);
        let partials: Vec<Table> = partials_set
            .items
            .iter()
            .map(|item| Table::from_csv(schema.clone(), &String::from_utf8_lossy(&item.data)))
            .collect::<Result<_, _>>()?;
        let merged = merge_partials(query, &partials)?;
        ctx.push_output_bytes("Result", "result.csv", merged.to_csv().into_bytes())
    })
    .with_memory_requirement(64 * 1024 * 1024)
}

fn partial_schema(query: SsbQuery, header: &str) -> Schema {
    let fields: Vec<(String, DataType)> = header
        .split(',')
        .map(|name| {
            let data_type = if query.group_columns().contains(&name) {
                // String group columns are the nation/brand columns.
                if name.ends_with("nation") || name.ends_with("brand1") {
                    DataType::Utf8
                } else {
                    DataType::Int64
                }
            } else {
                DataType::Int64
            };
            (name.to_string(), data_type)
        })
        .collect();
    Schema { fields }
}

/// The query-processing composition.
pub fn composition() -> CompositionGraph {
    CompositionBuilder::new("SsbQuery")
        .input("QuerySpec")
        .output("Result")
        .node("PlanQuery", |node| {
            node.bind("QuerySpec", Distribution::All, "QuerySpec")
                .publish("Fetches", "Fetches")
                .publish("QueryName", "Query")
        })
        .node("HTTP", |node| {
            node.bind("Request", Distribution::Each, "Fetches")
                .publish("Objects", "Response")
        })
        .node("RunPartition", |node| {
            node.bind("Responses", Distribution::Key, "Objects")
                .bind("Query", Distribution::All, "QueryName")
                .publish("Partials", "Partial")
        })
        .node("MergePartials", |node| {
            node.bind("Partials", Distribution::All, "Partials")
                .bind("Query", Distribution::All, "QueryName")
                .publish("Result", "Result")
        })
        .build()
        .expect("static SSB query composition")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dandelion_query::generate_database;

    #[test]
    fn upload_splits_the_fact_table() {
        let store = ObjectStore::new();
        let db = generate_database(0.02, 3);
        let bytes = upload_database(&store, &db, 4);
        assert!(bytes > 10_000);
        let keys = store.list_bucket(BUCKET);
        assert!(keys.contains(&"lineorder-000.csv".to_string()));
        assert!(keys.contains(&"lineorder-003.csv".to_string()));
        assert!(keys.contains(&"part.csv".to_string()));
        assert_eq!(keys.len(), 4 + 4);
    }

    #[test]
    fn plan_query_emits_keyed_fetches() {
        use dandelion_common::DataSet;
        use dandelion_isolation::SyscallPolicy;
        let artifact = plan_query_artifact();
        let mut ctx = FunctionCtx::new(
            vec![DataSet::single("QuerySpec", b"1.1;3".to_vec())],
            artifact.output_sets.clone(),
            16 * 1024 * 1024,
            SyscallPolicy::strict(),
        )
        .unwrap();
        artifact.logic.run(&mut ctx).unwrap();
        let outputs = ctx.take_outputs();
        // 3 partitions × 5 objects.
        assert_eq!(outputs[0].len(), 15);
        assert_eq!(outputs[0].items[0].key.as_deref(), Some("partition-000"));
        assert_eq!(outputs[1].items[0].as_str(), Some("1.1"));
        // Bad specs are rejected.
        let mut bad = FunctionCtx::new(
            vec![DataSet::single("QuerySpec", b"9.9;3".to_vec())],
            artifact.output_sets.clone(),
            16 * 1024 * 1024,
            SyscallPolicy::strict(),
        )
        .unwrap();
        assert!(artifact.logic.run(&mut bad).is_err());
    }

    #[test]
    fn composition_shape() {
        let graph = composition();
        assert_eq!(graph.nodes.len(), 4);
        assert_eq!(graph.nodes[2].inputs[0].distribution, Distribution::Key);
    }
}
