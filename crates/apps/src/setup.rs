//! Helpers to wire the applications and their services onto a worker node.

use std::sync::Arc;
use std::time::Duration;

use dandelion_common::DandelionResult;
use dandelion_core::WorkerNode;
use dandelion_query::generate_database;
use dandelion_services::auth::AuthService;
use dandelion_services::database::SqlDatabaseService;
use dandelion_services::latency::LatencyModel;
use dandelion_services::llm::LlmService;
use dandelion_services::logs::LogService;
use dandelion_services::object_store::ObjectStore;
use dandelion_services::ServiceRegistry;

use crate::{image, logproc, matmul, phases, query_app, text2sql};

/// How many log-service endpoints the demo environment exposes.
pub const LOG_SERVICES: usize = 5;
/// The demo access token the auth service accepts.
pub const DEMO_TOKEN: &str = "demo-token";

/// Builds the full simulated service environment used by the examples,
/// integration tests and benchmarks.
///
/// `realistic_latency` selects between the paper-calibrated service latency
/// models (examples, benchmarks) and zero latency (unit/integration tests).
pub fn demo_services(realistic_latency: bool) -> ServiceRegistry {
    let microservice = if realistic_latency {
        dandelion_services::latency::defaults::MICROSERVICE
    } else {
        LatencyModel::zero()
    };
    let object_latency = if realistic_latency {
        dandelion_services::latency::defaults::OBJECT_STORE
    } else {
        LatencyModel::zero()
    };
    let llm_latency = if realistic_latency {
        dandelion_services::latency::defaults::LLM
    } else {
        LatencyModel::zero()
    };
    let db_latency = if realistic_latency {
        dandelion_services::latency::defaults::SQL_DATABASE
    } else {
        LatencyModel::zero()
    };

    let mut registry = ServiceRegistry::new();

    // Auth + log services for the log-processing application.
    let auth = AuthService::with_latency(microservice);
    let endpoints: Vec<String> = (0..LOG_SERVICES)
        .map(|index| format!("http://logs-{index}.internal/logs"))
        .collect();
    auth.grant(
        DEMO_TOKEN,
        &endpoints.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    registry.register("auth.internal", Arc::new(auth));
    for index in 0..LOG_SERVICES {
        registry.register(
            &format!("logs-{index}.internal"),
            Arc::new(
                LogService::new(&format!("logs-{index}"), 120, index as u64)
                    .with_latency(microservice),
            ),
        );
    }

    // Object store with the fetch-and-compute arrays, the demo QOI image and
    // the SSB dataset.
    let store = ObjectStore::with_latency(object_latency);
    for key in 0..16u64 {
        store.put_object("arrays", &key.to_string(), phases::array_object(key));
    }
    // Keys produced by SumMinMax are `sum % 1000`; make sure they resolve.
    for key in 0..1000u64 {
        if store.get_object("arrays", &key.to_string()).is_none() {
            store.put_object("arrays", &key.to_string(), phases::array_object(key));
        }
    }
    let image = image::Image::synthetic(96, 64);
    store.put_object("images", "input.qoi", image::qoi_encode(&image));
    let ssb = generate_database(0.05, 42);
    query_app::upload_database(&store, &ssb, 8);
    registry.register(query_app::STORE_HOST, Arc::new(store));

    // LLM and SQL database for the Text2SQL workflow.
    registry.register(
        "llm.internal",
        Arc::new(LlmService::with_latency(llm_latency)),
    );
    registry.register(
        "db.internal",
        Arc::new(SqlDatabaseService::with_latency(db_latency).with_demo_data()),
    );

    registry
}

/// Registers every application's compute functions and compositions on a
/// worker node.
pub fn register_applications(worker: &WorkerNode) -> DandelionResult<()> {
    // Matmul microbenchmark.
    worker.register_function(matmul::matmul_artifact())?;
    worker.register_composition(matmul::matmul_composition())?;

    // Log processing.
    worker.register_function(logproc::access_artifact())?;
    worker.register_function(logproc::fanout_artifact())?;
    worker.register_function(logproc::render_artifact())?;
    worker.register_composition(logproc::composition())?;

    // Image compression.
    worker.register_function(image::compress_artifact())?;
    worker.register_composition(image::composition())?;

    // Fetch-and-compute phase chains (2, 4, 8 and 16 phases).
    worker.register_function(phases::make_fetch_artifact())?;
    worker.register_function(phases::sum_min_max_artifact())?;
    worker.register_function(phases::finalize_artifact())?;
    for count in [2usize, 4, 8, 16] {
        worker.register_composition(phases::composition(count))?;
    }

    // Text2SQL.
    worker.register_function(text2sql::parse_prompt_artifact())?;
    worker.register_function(text2sql::extract_sql_artifact())?;
    worker.register_function(text2sql::format_response_artifact())?;
    worker.register_composition(text2sql::composition())?;

    // Elastic SSB query processing.
    worker.register_function(query_app::plan_query_artifact())?;
    worker.register_function(query_app::run_partition_artifact())?;
    worker.register_function(query_app::merge_partials_artifact())?;
    worker.register_composition(query_app::composition())?;

    Ok(())
}

/// Starts a fully configured demo worker: all applications registered, all
/// simulated services wired up.
pub fn demo_worker(
    total_cores: usize,
    realistic_latency: bool,
) -> DandelionResult<Arc<WorkerNode>> {
    use dandelion_common::config::{IsolationKind, WorkerConfig};
    let config = WorkerConfig {
        total_cores: total_cores.max(2),
        initial_communication_cores: (total_cores / 4).max(1),
        isolation: IsolationKind::Native,
        function_timeout: Duration::from_secs(60),
        ..WorkerConfig::default()
    };
    let worker = WorkerNode::start_with_control(config, demo_services(realistic_latency), false)?;
    register_applications(&worker)?;
    Ok(worker)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dandelion_common::DataSet;

    #[test]
    fn demo_worker_runs_log_processing_end_to_end() {
        let worker = demo_worker(4, false).unwrap();
        let outcome = worker
            .invoke(
                "RenderLogs",
                vec![DataSet::single(
                    "AccessToken",
                    DEMO_TOKEN.as_bytes().to_vec(),
                )],
            )
            .unwrap();
        let html = outcome.outputs[0].items[0].as_str().unwrap();
        assert!(html.contains("<html>"));
        // All five log services contribute a section.
        assert_eq!(html.matches("<section><pre>").count(), LOG_SERVICES);
        // 3 compute nodes and 1 + 5 HTTP requests executed.
        assert_eq!(outcome.report.compute_tasks, 3);
        assert_eq!(outcome.report.communication_tasks, 1 + LOG_SERVICES);
        worker.shutdown();
    }

    #[test]
    fn demo_worker_runs_image_compression() {
        let worker = demo_worker(4, false).unwrap();
        let image = image::Image::synthetic(64, 32);
        let outcome = worker
            .invoke(
                "CompressImageApp",
                vec![DataSet::single("Qoi", image::qoi_encode(&image))],
            )
            .unwrap();
        assert_eq!(
            image::png_dimensions(&outcome.outputs[0].items[0].data),
            Some((64, 32))
        );
        worker.shutdown();
    }

    #[test]
    fn demo_worker_runs_text2sql() {
        let worker = demo_worker(4, false).unwrap();
        let outcome = worker
            .invoke(
                "Text2Sql",
                vec![DataSet::single(
                    "Prompt",
                    b"Which city in Switzerland has the largest population?".to_vec(),
                )],
            )
            .unwrap();
        let answer = outcome.outputs[0].items[0].as_str().unwrap();
        assert!(answer.contains("Zurich"), "answer was: {answer}");
        worker.shutdown();
    }

    #[test]
    fn demo_worker_runs_ssb_queries() {
        let worker = demo_worker(4, false).unwrap();
        // The demo environment uploads the fact table as 8 partition objects,
        // so the query spec must fan out over all 8.
        let outcome = worker
            .invoke(
                "SsbQuery",
                vec![DataSet::single("QuerySpec", b"1.1;8".to_vec())],
            )
            .unwrap();
        let csv = outcome.outputs[0].items[0].as_str().unwrap();
        assert!(csv.starts_with("revenue"));
        // The distributed result matches the single-node engine.
        let db = generate_database(0.05, 42);
        let expected = dandelion_query::SsbQuery::Q1_1.run(&db).unwrap();
        assert_eq!(csv, expected.to_csv());
        worker.shutdown();
    }

    #[test]
    fn demo_worker_runs_fetch_and_compute_chain() {
        let worker = demo_worker(4, false).unwrap();
        let outcome = worker
            .invoke(
                "FetchCompute4",
                vec![DataSet::single("Phase0", b"1".to_vec())],
            )
            .unwrap();
        let stats = outcome.outputs[0].items[0].as_str().unwrap();
        assert!(stats.contains("sum="));
        // 4 phases × (MakeFetch + SumMinMax) + Finalize compute functions.
        assert_eq!(outcome.report.compute_tasks, 9);
        assert_eq!(outcome.report.communication_tasks, 4);
        worker.shutdown();
    }
}
