//! The Text2SQL agentic workflow (paper §7.7).
//!
//! Five steps: 1) parse the natural-language prompt into an LLM request,
//! 2) call the LLM over HTTP, 3) extract the SQL query from the LLM
//! response, 4) issue the SQL to the database over HTTP, 5) format the
//! database response for the user. Steps 1, 3 and 5 are compute functions;
//! steps 2 and 4 are the platform's HTTP communication function.

use dandelion_dsl::{CompositionBuilder, CompositionGraph, Distribution};
use dandelion_http::HttpRequest;
use dandelion_isolation::{FunctionArtifact, FunctionCtx};

/// The LLM inference endpoint.
pub const LLM_ENDPOINT: &str = "http://llm.internal/v1/generate";
/// The SQL database endpoint.
pub const DB_ENDPOINT: &str = "http://db.internal/query";

/// Step 1 — `ParsePrompt`: cleans the prompt and builds the LLM request.
pub fn parse_prompt_artifact() -> FunctionArtifact {
    FunctionArtifact::new("ParsePrompt", &["LlmRequest"], |ctx: &mut FunctionCtx| {
        let prompt_item = ctx.single_input("Prompt")?.clone();
        let prompt = prompt_item
            .as_str()
            .ok_or("prompt is not UTF-8")?
            .trim()
            .to_string();
        if prompt.is_empty() {
            return Err("empty prompt".into());
        }
        // Light prompt engineering: strip control characters and add the
        // schema hint the LLM expects.
        let cleaned: String = prompt.chars().filter(|c| !c.is_control()).collect();
        let full_prompt = format!(
            "Translate the question into SQL over tables movies(title, director, year, rating) \
             and cities(name, country, population).\nQuestion: {cleaned}"
        );
        let request = HttpRequest::post(LLM_ENDPOINT, full_prompt.into_bytes())
            .with_header("Content-Type", "text/plain");
        ctx.push_output_bytes("LlmRequest", "llm-request", request.to_bytes())
    })
}

/// Extracts the SQL statement from an LLM completion (looks for a fenced
/// ```sql block, falling back to the first line starting with SELECT).
pub fn extract_sql(completion: &str) -> Option<String> {
    if let Some(start) = completion.find("```sql") {
        let rest = &completion[start + 6..];
        if let Some(end) = rest.find("```") {
            let sql = rest[..end].trim();
            if !sql.is_empty() {
                return Some(sql.to_string());
            }
        }
    }
    completion
        .lines()
        .map(str::trim)
        .find(|line| line.to_uppercase().starts_with("SELECT"))
        .map(str::to_string)
}

/// Step 3 — `ExtractSql`: LLM response → database request.
pub fn extract_sql_artifact() -> FunctionArtifact {
    FunctionArtifact::new("ExtractSql", &["DbRequest"], |ctx: &mut FunctionCtx| {
        let response_item = ctx.single_input("LlmResponse")?.clone();
        let response = dandelion_http::parse_response_shared(&response_item.data)
            .map_err(|err| format!("bad LLM response: {err}"))?;
        if !response.status.is_success() {
            return Err(format!("LLM call failed: {}", response.status).into());
        }
        let sql = extract_sql(&response.body_text())
            .ok_or("no SQL statement found in the LLM response")?;
        let request = HttpRequest::post(DB_ENDPOINT, sql.into_bytes())
            .with_header("Content-Type", "application/sql");
        ctx.push_output_bytes("DbRequest", "db-request", request.to_bytes())
    })
}

/// Step 5 — `FormatResponse`: database CSV → human-readable answer.
pub fn format_response_artifact() -> FunctionArtifact {
    FunctionArtifact::new("FormatResponse", &["Answer"], |ctx: &mut FunctionCtx| {
        let response_item = ctx.single_input("DbResponse")?.clone();
        let response = dandelion_http::parse_response_shared(&response_item.data)
            .map_err(|err| format!("bad database response: {err}"))?;
        if !response.status.is_success() {
            return Err(format!("database query failed: {}", response.status).into());
        }
        let csv = response.body_text();
        let mut lines = csv.lines();
        let header: Vec<&str> = lines.next().unwrap_or("").split(',').collect();
        let mut answer = String::new();
        let mut rows = 0usize;
        for line in lines {
            let cells: Vec<&str> = line.split(',').collect();
            let rendered: Vec<String> = header
                .iter()
                .zip(&cells)
                .map(|(name, value)| format!("{name}: {value}"))
                .collect();
            answer.push_str(&rendered.join(", "));
            answer.push('\n');
            rows += 1;
        }
        if rows == 0 {
            answer.push_str("No rows matched the query.\n");
        }
        ctx.push_output_bytes("Answer", "answer.txt", answer.into_bytes())
    })
}

/// The five-step Text2SQL composition.
pub fn composition() -> CompositionGraph {
    CompositionBuilder::new("Text2Sql")
        .input("Prompt")
        .output("Answer")
        .node("ParsePrompt", |node| {
            node.bind("Prompt", Distribution::All, "Prompt")
                .publish("LlmRequests", "LlmRequest")
        })
        .node("HTTP", |node| {
            node.bind("Request", Distribution::Each, "LlmRequests")
                .publish("LlmResponses", "Response")
        })
        .node("ExtractSql", |node| {
            node.bind("LlmResponse", Distribution::All, "LlmResponses")
                .publish("DbRequests", "DbRequest")
        })
        .node("HTTP", |node| {
            node.bind("Request", Distribution::Each, "DbRequests")
                .publish("DbResponses", "Response")
        })
        .node("FormatResponse", |node| {
            node.bind("DbResponse", Distribution::All, "DbResponses")
                .publish("Answer", "Answer")
        })
        .build()
        .expect("static Text2SQL composition")
}

/// The paper's per-step latency breakdown (measured on their deployment),
/// used by the benchmark harness to report paper-vs-reproduction numbers.
pub fn paper_step_latencies_ms() -> [(&'static str, u64); 5] {
    [
        ("parse prompt", 221),
        ("LLM request", 1238),
        ("extract SQL", 207),
        ("database query", 136),
        ("format response", 213),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dandelion_common::DataSet;
    use dandelion_isolation::SyscallPolicy;

    fn run(artifact: &FunctionArtifact, inputs: Vec<DataSet>) -> Vec<DataSet> {
        let mut ctx = FunctionCtx::new(
            inputs,
            artifact.output_sets.clone(),
            4 * 1024 * 1024,
            SyscallPolicy::strict(),
        )
        .unwrap();
        artifact.logic.run(&mut ctx).unwrap();
        ctx.take_outputs()
    }

    #[test]
    fn parse_prompt_builds_llm_request() {
        let outputs = run(
            &parse_prompt_artifact(),
            vec![DataSet::single(
                "Prompt",
                b"Which city in Switzerland has the largest population?".to_vec(),
            )],
        );
        let request = dandelion_http::parse_request(&outputs[0].items[0].data).unwrap();
        assert_eq!(request.target, LLM_ENDPOINT);
        assert!(String::from_utf8_lossy(&request.body).contains("Switzerland"));
    }

    #[test]
    fn extract_sql_handles_fences_and_fallback() {
        assert_eq!(
            extract_sql("Sure!\n```sql\nSELECT 1\n```\nDone."),
            Some("SELECT 1".to_string())
        );
        assert_eq!(
            extract_sql("select name from cities"),
            Some("select name from cities".to_string())
        );
        assert_eq!(extract_sql("no sql here"), None);
        assert_eq!(extract_sql("```sql\n\n```"), None);
    }

    #[test]
    fn extract_sql_artifact_builds_db_request() {
        let llm_response = dandelion_http::HttpResponse::ok(
            b"```sql\nSELECT name FROM cities LIMIT 1\n```".to_vec(),
        )
        .to_bytes();
        let outputs = run(
            &extract_sql_artifact(),
            vec![DataSet::single("LlmResponse", llm_response)],
        );
        let request = dandelion_http::parse_request(&outputs[0].items[0].data).unwrap();
        assert_eq!(request.target, DB_ENDPOINT);
        assert_eq!(request.body, b"SELECT name FROM cities LIMIT 1");
    }

    #[test]
    fn format_response_renders_rows_and_empty_results() {
        let csv =
            dandelion_http::HttpResponse::ok(b"name,population\nZurich,434335".to_vec()).to_bytes();
        let outputs = run(
            &format_response_artifact(),
            vec![DataSet::single("DbResponse", csv)],
        );
        let answer = outputs[0].items[0].as_str().unwrap();
        assert!(answer.contains("name: Zurich"));
        assert!(answer.contains("population: 434335"));

        let empty = dandelion_http::HttpResponse::ok(b"name".to_vec()).to_bytes();
        let outputs = run(
            &format_response_artifact(),
            vec![DataSet::single("DbResponse", empty)],
        );
        assert!(outputs[0].items[0].as_str().unwrap().contains("No rows"));
    }

    #[test]
    fn composition_has_five_steps() {
        let graph = composition();
        assert_eq!(graph.nodes.len(), 5);
        assert_eq!(graph.nodes[1].vertex, "HTTP");
        assert_eq!(graph.nodes[3].vertex, "HTTP");
        assert_eq!(paper_step_latencies_ms().len(), 5);
    }
}
