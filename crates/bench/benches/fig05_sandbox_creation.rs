//! Figure 5: sandbox creation under load for every platform model.
//!
//! Benchmarks how fast the simulator can push 1×1 matmul requests through
//! each platform model (the figure itself is produced by `reproduce fig5`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dandelion_common::config::IsolationKind;
use dandelion_isolation::{HardwarePlatform, SandboxCostModel};
use dandelion_sim::platforms::{
    DandelionConfig, DandelionSim, MicroVmKind, MicroVmSim, PlatformModel, WarmPolicy, WasmtimeSim,
};
use dandelion_sim::workloads;

fn submit_requests(model: &mut dyn PlatformModel, count: u64) {
    let spec = workloads::matmul_1x1();
    for index in 0..count {
        let arrival = Duration::from_micros(index * 200);
        model.submit(arrival, &spec);
    }
}

fn bench_platforms(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig05_sandbox_creation");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(20);
    group.bench_with_input(BenchmarkId::new("dandelion", "cheri"), &(), |bencher, _| {
        bencher.iter(|| {
            let mut model = DandelionSim::new(DandelionConfig::morello(
                SandboxCostModel::for_backend(IsolationKind::Cheri, HardwarePlatform::Morello),
            ));
            submit_requests(&mut model, 2000);
        })
    });
    group.bench_with_input(
        BenchmarkId::new("firecracker", "snapshot"),
        &(),
        |bencher, _| {
            bencher.iter(|| {
                let mut model = MicroVmSim::new(
                    MicroVmKind::FirecrackerSnapshot,
                    HardwarePlatform::Morello,
                    4,
                    WarmPolicy::FixedHotRatio { hot_ratio: 0.0 },
                    1,
                );
                submit_requests(&mut model, 2000);
            })
        },
    );
    group.bench_with_input(BenchmarkId::new("wasmtime", "spin"), &(), |bencher, _| {
        bencher.iter(|| {
            let mut model = WasmtimeSim::new(4);
            submit_requests(&mut model, 2000);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_platforms);
criterion_main!(benches);
