//! Figure 6: 128×128 matmul on the real runtime and in the simulator.
//!
//! Benchmarks the real compute path (matmul executed through the process
//! backend on this machine) and the simulated 16-core sweep step used by
//! `reproduce fig6`.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use dandelion_apps::matmul::{matmul_artifact, matmul_inputs, multiply};
use dandelion_common::config::IsolationKind;
use dandelion_isolation::{create_backend, ExecutionTask, HardwarePlatform, SandboxCostModel};
use dandelion_sim::platforms::{DandelionConfig, DandelionSim, PlatformModel};
use dandelion_sim::workloads;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig06_compute_throughput");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(20);

    // The raw kernel (what a warm native execution costs on this machine).
    let a: Vec<i64> = (0..128 * 128).map(|value| value as i64 % 97).collect();
    let b: Vec<i64> = (0..128 * 128).map(|value| value as i64 % 89).collect();
    group.bench_function("native_matmul_128", |bencher| {
        bencher.iter(|| multiply(128, &a, &b))
    });

    // The full sandboxed invocation through the process backend.
    let backend = create_backend(IsolationKind::Process, HardwarePlatform::X86Linux);
    let artifact = Arc::new(matmul_artifact());
    let inputs = vec![matmul_inputs(128, 5)];
    group.bench_function("sandboxed_matmul_128", |bencher| {
        bencher.iter(|| {
            let task = ExecutionTask::new(Arc::clone(&artifact), inputs.clone());
            backend.execute(&task).expect("matmul executes")
        })
    });

    // One sweep point of the Figure 6 simulation.
    group.bench_function("simulated_16core_sweep_point", |bencher| {
        bencher.iter(|| {
            let mut model = DandelionSim::new(DandelionConfig::xeon(
                SandboxCostModel::for_backend(IsolationKind::Kvm, HardwarePlatform::X86Linux),
            ));
            let spec = workloads::matmul_128();
            for index in 0..2000u64 {
                model.submit(Duration::from_micros(index * 300), &spec);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);
