//! Microbenchmarks of the real runtime paths that are independent of the
//! paper's figures: DSL compilation, output-descriptor parsing, HTTP request
//! validation and an end-to-end worker invocation.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use dandelion_common::{DataItem, DataSet};
use dandelion_http::validate::{validate_request_bytes, ValidationPolicy};
use dandelion_http::HttpRequest;
use dandelion_isolation::output_parser::{encode_outputs, parse_outputs};

const LOGS_DSL: &str = r#"
composition RenderLogs(AccessToken) => HTMLOutput {
    Access(AccessToken = all AccessToken) => (AuthRequest = HTTPRequest);
    HTTP(Request = each AuthRequest) => (AuthResponse = Response);
    FanOut(HTTPResponse = all AuthResponse) => (LogRequests = HTTPRequests);
    HTTP(Request = each LogRequests) => (LogResponses = Response);
    Render(HTTPResponses = all LogResponses) => (HTMLOutput = HTMLOutput);
}
"#;

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_microbench");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(30);

    group.bench_function("dsl_compile_render_logs", |bencher| {
        bencher.iter(|| dandelion_dsl::compile(LOGS_DSL).expect("valid DSL"))
    });

    let sets = vec![DataSet::with_items(
        "responses",
        (0..64)
            .map(|index| DataItem::new(format!("item-{index}"), vec![0u8; 1024]))
            .collect(),
    )];
    let descriptor = encode_outputs(&sets);
    group.bench_function("output_descriptor_parse_64x1KiB", |bencher| {
        bencher.iter(|| parse_outputs(&descriptor).expect("valid descriptor"))
    });

    let request = HttpRequest::post("http://storage.internal/bucket/key", vec![0u8; 4096])
        .with_header("Content-Type", "application/octet-stream")
        .to_bytes();
    let policy = ValidationPolicy::default();
    group.bench_function("http_request_validation", |bencher| {
        bencher.iter(|| validate_request_bytes(&request, &policy).expect("valid request"))
    });

    // End-to-end worker invocation of the log-processing composition.
    let worker = dandelion_apps::setup::demo_worker(4, false).expect("worker starts");
    group.bench_function("worker_invoke_render_logs", |bencher| {
        bencher.iter(|| {
            worker
                .invoke(
                    "RenderLogs",
                    vec![DataSet::single(
                        "AccessToken",
                        dandelion_apps::setup::DEMO_TOKEN.as_bytes().to_vec(),
                    )],
                )
                .expect("invocation succeeds")
        })
    });
    group.finish();
    worker.shutdown();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
