//! Table 1: sandbox creation cost per isolation backend.
//!
//! Measures the real (wall-clock) cost of running the 1×1 matmul through
//! each backend's staged executor on this machine, alongside the calibrated
//! model that the `reproduce table1` report prints.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dandelion_apps::matmul::{matmul_artifact, matmul_inputs};
use dandelion_common::config::IsolationKind;
use dandelion_isolation::{create_backend, ExecutionTask, HardwarePlatform};

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_sandbox_breakdown");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(30);
    let artifact = Arc::new(matmul_artifact());
    let inputs = vec![matmul_inputs(1, 1)];
    for backend in IsolationKind::PAPER_BACKENDS {
        let isolation = create_backend(backend, HardwarePlatform::Morello);
        group.bench_with_input(
            BenchmarkId::from_parameter(backend),
            &backend,
            |bencher, _| {
                bencher.iter(|| {
                    let task = ExecutionTask::new(Arc::clone(&artifact), inputs.clone())
                        .with_cold_binary(true);
                    isolation.execute(&task).expect("matmul executes")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
