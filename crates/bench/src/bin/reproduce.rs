//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! reproduce                   # run every experiment
//! reproduce fig5 table1       # run selected experiments
//! reproduce --list            # list experiment names
//! reproduce --json fig10      # additionally emit the rows as JSON
//! reproduce --save data_plane # additionally write BENCH_<name>.json
//! ```

use std::time::Instant;

use dandelion_bench::{run_experiment, ExperimentId};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|arg| arg == "--json");
    let save = args.iter().any(|arg| arg == "--save");
    let names: Vec<&String> = args.iter().filter(|arg| !arg.starts_with("--")).collect();

    if args.iter().any(|arg| arg == "--list") {
        for id in ExperimentId::ALL {
            println!("{}", id.name());
        }
        return;
    }

    let selected: Vec<ExperimentId> = if names.is_empty() {
        ExperimentId::ALL.to_vec()
    } else {
        names
            .iter()
            .map(|name| {
                ExperimentId::parse(name).unwrap_or_else(|| {
                    eprintln!("unknown experiment `{name}`; use --list to see the options");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    for id in selected {
        let start = Instant::now();
        let report = run_experiment(id);
        println!("{report}");
        if json {
            println!("json[{}] = {}", id.name(), report.rows_json());
        }
        if save {
            let path = format!("BENCH_{}.json", id.name());
            match std::fs::write(&path, format!("{}\n", report.to_json())) {
                Ok(()) => println!("  wrote {path}"),
                Err(err) => eprintln!("  failed to write {path}: {err}"),
            }
        }
        println!("  ({} finished in {:.1?})\n", id.name(), start.elapsed());
    }
}
