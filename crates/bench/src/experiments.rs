//! One function per table/figure of the paper's evaluation.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dandelion_common::config::IsolationKind;
use dandelion_common::{DataSet, MIB};
use dandelion_isolation::{
    create_backend, ExecutionTask, HardwarePlatform, SandboxCostModel, Stage,
};
use dandelion_query::{generate_database, AthenaModel, Ec2Model, SsbQuery};
use dandelion_sim::autoscaler::KnativeAutoscaler;
use dandelion_sim::platforms::{
    DHybridSim, DandelionConfig, DandelionSim, MicroVmKind, MicroVmSim, PlatformModel, WarmPolicy,
    WasmtimeSim,
};
use dandelion_sim::{run_bursty, run_open_loop, run_trace, sweep_open_loop, workloads};
use dandelion_trace::{generate_trace, TraceConfig};

use crate::report::Report;

/// The reproducible experiments, one per table/figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentId {
    /// Figure 1 — committed vs actively-used memory under Knative.
    Fig1,
    /// Figure 2 — Firecracker tail latency vs hot-request ratio.
    Fig2,
    /// Table 1 — Dandelion cold-start breakdown per backend.
    Table1,
    /// Figure 5 — sandbox creation latency vs throughput, all systems.
    Fig5,
    /// Figure 6 — 128×128 matmul latency vs throughput on 16 cores.
    Fig6,
    /// §7.4 — composition overhead vs number of phases.
    Fig7a,
    /// Figure 7 — compute/communication split vs D-hybrid.
    Fig7,
    /// Figure 8 — multiplexing a compute-heavy and an I/O-heavy app.
    Fig8,
    /// Figure 9 — SSB query latency and cost vs Athena.
    Fig9,
    /// §7.7 — Text2SQL agentic workflow step breakdown.
    Text2Sql,
    /// Figure 10 / §7.8 — Azure-trace memory and latency comparison.
    Fig10,
    /// §8 — trusted computing base and attack-surface summary.
    Security,
    /// Repo-only: synchronous vs pipelined submission throughput on a
    /// 2-node cluster through the `DandelionClient` facade.
    Concurrency,
    /// Repo-only: zero-copy data plane vs per-edge copying on a
    /// large-payload pipeline with fan-out.
    DataPlane,
    /// Repo-only: allocation-free construction path (pooled arenas, rope
    /// builders) vs the Vec-assembly reference on a high-rate 4 KiB
    /// payload pipeline.
    SmallInvocations,
    /// Repo-only: loopback throughput of the real TCP serving layer,
    /// keep-alive connection reuse vs a fresh connection per request.
    Network,
    /// Repo-only: horizontal scaling through the cluster gateway —
    /// identical load routed across 1 vs 3 member nodes behind one
    /// front door.
    Cluster,
}

impl ExperimentId {
    /// Every experiment in paper order.
    pub const ALL: [ExperimentId; 17] = [
        ExperimentId::Fig1,
        ExperimentId::Fig2,
        ExperimentId::Table1,
        ExperimentId::Fig5,
        ExperimentId::Fig6,
        ExperimentId::Fig7a,
        ExperimentId::Fig7,
        ExperimentId::Fig8,
        ExperimentId::Fig9,
        ExperimentId::Text2Sql,
        ExperimentId::Fig10,
        ExperimentId::Security,
        ExperimentId::Concurrency,
        ExperimentId::DataPlane,
        ExperimentId::SmallInvocations,
        ExperimentId::Network,
        ExperimentId::Cluster,
    ];

    /// Command-line name of the experiment.
    pub fn name(&self) -> &'static str {
        match self {
            ExperimentId::Fig1 => "fig1",
            ExperimentId::Fig2 => "fig2",
            ExperimentId::Table1 => "table1",
            ExperimentId::Fig5 => "fig5",
            ExperimentId::Fig6 => "fig6",
            ExperimentId::Fig7a => "fig7a",
            ExperimentId::Fig7 => "fig7",
            ExperimentId::Fig8 => "fig8",
            ExperimentId::Fig9 => "fig9",
            ExperimentId::Text2Sql => "text2sql",
            ExperimentId::Fig10 => "fig10",
            ExperimentId::Security => "security",
            ExperimentId::Concurrency => "concurrency",
            ExperimentId::DataPlane => "data_plane",
            ExperimentId::SmallInvocations => "small_invocations",
            ExperimentId::Network => "network",
            ExperimentId::Cluster => "cluster",
        }
    }

    /// Parses a command-line experiment name.
    pub fn parse(name: &str) -> Option<ExperimentId> {
        ExperimentId::ALL
            .into_iter()
            .find(|id| id.name() == name.to_lowercase())
    }
}

/// Runs one experiment and returns its report.
pub fn run_experiment(id: ExperimentId) -> Report {
    match id {
        ExperimentId::Fig1 => fig1_knative_memory(),
        ExperimentId::Fig2 => fig2_firecracker_hot_ratio(),
        ExperimentId::Table1 => table1_sandbox_breakdown(),
        ExperimentId::Fig5 => fig5_sandbox_creation(),
        ExperimentId::Fig6 => fig6_compute_throughput(),
        ExperimentId::Fig7a => fig7a_composition_phases(),
        ExperimentId::Fig7 => fig7_compute_comm_split(),
        ExperimentId::Fig8 => fig8_multiplexing(),
        ExperimentId::Fig9 => fig9_ssb_queries(),
        ExperimentId::Text2Sql => text2sql_breakdown(),
        ExperimentId::Fig10 => fig10_azure_memory(),
        ExperimentId::Security => security_summary(),
        ExperimentId::Concurrency => concurrency_fanout(),
        ExperimentId::DataPlane => data_plane(),
        ExperimentId::SmallInvocations => small_invocations(),
        ExperimentId::Network => network(),
        ExperimentId::Cluster => cluster(),
    }
}

fn mb(bytes: f64) -> f64 {
    bytes / (1024.0 * 1024.0)
}

fn default_trace() -> dandelion_trace::Trace {
    generate_trace(&TraceConfig {
        functions: 100,
        duration: Duration::from_secs(600),
        seed: 42,
        rate_scale: 1.0,
    })
}

fn knative_firecracker(cores: usize, seed: u64) -> MicroVmSim {
    MicroVmSim::new(
        MicroVmKind::FirecrackerSnapshot,
        HardwarePlatform::X86Linux,
        cores,
        WarmPolicy::Autoscaled {
            autoscaler: KnativeAutoscaler::knative_defaults(),
        },
        seed,
    )
}

fn dandelion_xeon(backend: IsolationKind) -> DandelionSim {
    DandelionSim::new(DandelionConfig::xeon(SandboxCostModel::for_backend(
        backend,
        HardwarePlatform::X86Linux,
    )))
}

/// Figure 1: Knative keeps idle VMs in memory; compare the committed memory
/// against the memory of VMs actively serving requests.
pub fn fig1_knative_memory() -> Report {
    let trace = default_trace();
    let mut firecracker = knative_firecracker(16, 1);
    let result = run_trace(&mut firecracker, &trace);

    // Memory of actively-serving VMs: each invocation commits its VM memory
    // only while it runs.
    let horizon = trace.duration.as_secs_f64();
    let active_avg_bytes: f64 = trace
        .events
        .iter()
        .map(|event| {
            event.duration.as_secs_f64()
                * (event.memory_mib as usize * MIB
                    + MicroVmKind::FirecrackerSnapshot.per_sandbox_overhead_bytes())
                    as f64
        })
        .sum::<f64>()
        / horizon;

    let mut report = Report::new(
        "Figure 1: committed memory with Knative autoscaling vs actively serving VMs",
        &format!(
            "Azure-like trace, 100 functions, {} invocations over {:.0} s, Firecracker MicroVMs",
            trace.len(),
            horizon
        ),
    );
    report.header(&["series", "average committed memory [MB]"]);
    report.row(vec![
        "Hot VMs with Knative autoscaling".into(),
        format!("{:.0}", mb(result.average_memory_bytes)),
    ]);
    report.row(vec![
        "VMs actively serving requests".into(),
        format!("{:.0}", mb(active_avg_bytes)),
    ]);
    let factor = result.average_memory_bytes / active_avg_bytes.max(1.0);
    report.note(&format!(
        "overprovisioning factor {factor:.1}x (paper reports ~16x on its trace sample)"
    ));
    report
}

/// Figure 2: Firecracker tail latency is extremely sensitive to the fraction
/// of requests that hit a warm MicroVM.
pub fn fig2_firecracker_hot_ratio() -> Report {
    let spec = workloads::matmul_128();
    let rps_points = [500.0, 1000.0, 2000.0, 3000.0, 4000.0];
    let mut report = Report::new(
        "Figure 2: Firecracker p99.5 latency vs offered load and hot-request ratio",
        "128x128 int64 matmul, 16-core server, open-loop Poisson load, 10 s per point",
    );
    let mut header = vec!["series".to_string()];
    header.extend(rps_points.iter().map(|rps| format!("{rps:.0} RPS [ms]")));
    report.rows.push(header);

    for (label, kind, hot) in [
        ("95% hot", MicroVmKind::Firecracker, 0.95),
        ("97% hot", MicroVmKind::Firecracker, 0.97),
        ("99% hot", MicroVmKind::Firecracker, 0.99),
        ("100% hot", MicroVmKind::Firecracker, 1.0),
        ("Snapshot 95% hot", MicroVmKind::FirecrackerSnapshot, 0.95),
        ("Snapshot 97% hot", MicroVmKind::FirecrackerSnapshot, 0.97),
        ("Snapshot 99% hot", MicroVmKind::FirecrackerSnapshot, 0.99),
    ] {
        let sweep = sweep_open_loop(
            || {
                Box::new(MicroVmSim::new(
                    kind,
                    HardwarePlatform::X86Linux,
                    16,
                    WarmPolicy::FixedHotRatio { hot_ratio: hot },
                    7,
                ))
            },
            &spec,
            &rps_points,
            Duration::from_secs(10),
            11,
        );
        let mut row = vec![label.to_string()];
        row.extend(
            sweep
                .iter()
                .map(|point| format!("{:.1}", point.latency.p995_ms())),
        );
        report.rows.push(row);
    }
    report.note("even a few percent of cold starts lifts the tail by 1-2 orders of magnitude (log scale in the paper)");
    report
}

/// Table 1: per-stage cold-start latency of each Dandelion isolation backend.
pub fn table1_sandbox_breakdown() -> Report {
    let paper_totals = [
        (IsolationKind::Cheri, 89u64),
        (IsolationKind::Rwasm, 241),
        (IsolationKind::Process, 486),
        (IsolationKind::Kvm, 889),
    ];
    let mut report = Report::new(
        "Table 1: Dandelion cold-start latency breakdown per backend (1x1 matmul, Morello)",
        "modeled per-stage microseconds; every backend also really executes the function",
    );
    report.header(&["stage", "CHERI", "rWasm", "process", "KVM"]);

    // Execute the real 1x1 matmul through every backend to confirm the
    // functional path, then report the calibrated per-stage model (the
    // function body itself adds only a few microseconds).
    let inputs = vec![dandelion_apps::matmul::matmul_inputs(1, 1)];
    let artifact = Arc::new(dandelion_apps::matmul::matmul_artifact());
    let mut totals = Vec::new();
    let mut stage_rows: Vec<Vec<String>> = Stage::ALL
        .iter()
        .map(|stage| vec![stage.label().to_string()])
        .collect();
    for (backend, _) in paper_totals {
        let isolation = create_backend(backend, HardwarePlatform::Morello);
        let task = ExecutionTask::new(Arc::clone(&artifact), inputs.clone()).with_cold_binary(true);
        let execution = isolation.execute(&task).expect("matmul executes");
        assert_eq!(execution.outputs.len(), 1, "matmul produced its output");
        let model = isolation.cost_model();
        for (row, stage) in stage_rows.iter_mut().zip(Stage::ALL.iter()) {
            row.push(format!("{}", model.stage_cost(*stage, true).as_micros()));
        }
        totals.push(model.cold_total(true).as_micros() as u64);
    }
    for row in stage_rows {
        report.rows.push(row);
    }
    let mut total_row = vec!["Total".to_string()];
    total_row.extend(totals.iter().map(|total| total.to_string()));
    report.rows.push(total_row);
    let mut paper_row = vec!["Paper total".to_string()];
    paper_row.extend(paper_totals.iter().map(|(_, total)| total.to_string()));
    report.rows.push(paper_row);
    report.note(
        "stage costs are calibrated to Table 1; the function body adds a few microseconds on top",
    );
    report
}

/// Figure 5: sandbox-creation latency vs throughput with 0% hot requests.
pub fn fig5_sandbox_creation() -> Report {
    let spec = workloads::matmul_1x1();
    let rps_points = [50.0, 500.0, 2000.0, 6000.0, 10_000.0];
    let mut report = Report::new(
        "Figure 5: p99 latency vs throughput for sandbox creation (1x1 matmul, 0% hot, 4-core Morello)",
        "open-loop Poisson load, 10 s per point; every request cold-starts a sandbox",
    );
    let mut header = vec!["system".to_string()];
    header.extend(rps_points.iter().map(|rps| format!("{rps:.0} RPS [ms]")));
    report.rows.push(header);

    let mut add_sweep = |label: &str, make: &mut dyn FnMut() -> Box<dyn PlatformModel>| {
        let sweep = sweep_open_loop(|| make(), &spec, &rps_points, Duration::from_secs(10), 13);
        let mut row = vec![label.to_string()];
        row.extend(
            sweep
                .iter()
                .map(|point| format!("{:.2}", point.latency.p99_ms())),
        );
        report.rows.push(row);
    };

    for backend in IsolationKind::PAPER_BACKENDS {
        add_sweep(&format!("Dandelion {backend}"), &mut || {
            Box::new(DandelionSim::new(DandelionConfig::morello(
                SandboxCostModel::for_backend(backend, HardwarePlatform::Morello),
            )))
        });
    }
    for (label, kind) in [
        ("Firecracker", MicroVmKind::Firecracker),
        ("Firecracker snapshot", MicroVmKind::FirecrackerSnapshot),
        ("gVisor", MicroVmKind::Gvisor),
    ] {
        add_sweep(label, &mut || {
            Box::new(MicroVmSim::new(
                kind,
                HardwarePlatform::Morello,
                4,
                WarmPolicy::FixedHotRatio { hot_ratio: 0.0 },
                17,
            ))
        });
    }
    add_sweep("Wasmtime (Spin)", &mut || Box::new(WasmtimeSim::new(4)));
    report.note("Dandelion CHERI boots in under 90 us; Firecracker with snapshots saturates around 120 RPS on this 4-core machine");
    report
}

/// Figure 6: 128×128 matmul latency vs throughput on the 16-core server.
pub fn fig6_compute_throughput() -> Report {
    let spec = workloads::matmul_128();
    let rps_points = [500.0, 1500.0, 2500.0, 3500.0, 4500.0];
    let mut report = Report::new(
        "Figure 6: 128x128 matmul median latency (p5/p95) vs throughput, 16-core server",
        "Dandelion cold-starts every request; Firecracker uses 97% hot requests",
    );
    let mut header = vec!["system".to_string()];
    header.extend(rps_points.iter().map(|rps| format!("{rps:.0} RPS")));
    report.rows.push(header);

    let mut add = |label: &str, make: &mut dyn FnMut() -> Box<dyn PlatformModel>| {
        let sweep = sweep_open_loop(|| make(), &spec, &rps_points, Duration::from_secs(10), 19);
        let mut row = vec![label.to_string()];
        row.extend(sweep.iter().map(|point| {
            format!(
                "{:.1} ({:.1}/{:.1})",
                point.latency.p50_ms(),
                point.latency.p5_us / 1000.0,
                point.latency.p95_us / 1000.0
            )
        }));
        report.rows.push(row);
    };

    for backend in [
        IsolationKind::Kvm,
        IsolationKind::Process,
        IsolationKind::Rwasm,
    ] {
        add(&format!("Dandelion {backend}"), &mut || {
            Box::new(dandelion_xeon(backend))
        });
    }
    add("Firecracker (97% hot)", &mut || {
        Box::new(MicroVmSim::new(
            MicroVmKind::Firecracker,
            HardwarePlatform::X86Linux,
            16,
            WarmPolicy::FixedHotRatio { hot_ratio: 0.97 },
            23,
        ))
    });
    add("Firecracker snapshot (97% hot)", &mut || {
        Box::new(MicroVmSim::new(
            MicroVmKind::FirecrackerSnapshot,
            HardwarePlatform::X86Linux,
            16,
            WarmPolicy::FixedHotRatio { hot_ratio: 0.97 },
            23,
        ))
    });
    add("Wasmtime (Spin)", &mut || Box::new(WasmtimeSim::new(16)));
    report.note("values are median ms with (p5/p95); Dandelion KVM sustains the highest load, Wasmtime saturates first due to slower generated code");
    report
}

/// §7.4: latency vs number of fetch-and-compute phases (unloaded).
pub fn fig7a_composition_phases() -> Report {
    let phase_counts = [2usize, 4, 8, 16];
    let mut report = Report::new(
        "Section 7.4: composition overhead vs number of fetch-and-compute phases",
        "single unloaded request; each phase fetches 64 KiB and reduces a sample of it",
    );
    let mut header = vec!["system".to_string()];
    header.extend(
        phase_counts
            .iter()
            .map(|count| format!("{count} phases [ms]")),
    );
    report.rows.push(header);

    let mut add = |label: &str, make: &mut dyn FnMut() -> Box<dyn PlatformModel>| {
        let mut row = vec![label.to_string()];
        for count in phase_counts {
            let spec = workloads::fetch_and_compute(count);
            let mut model = make();
            let result = run_open_loop(model.as_mut(), &spec, 20.0, Duration::from_secs(3), 29);
            row.push(format!("{:.1}", result.latency.p50_ms()));
        }
        report.rows.push(row);
    };

    add("Dandelion KVM (uncached binaries)", &mut || {
        let mut config = DandelionConfig::xeon(SandboxCostModel::for_backend(
            IsolationKind::Kvm,
            HardwarePlatform::X86Linux,
        ));
        config.binary_cold_load_ratio = 1.0;
        Box::new(DandelionSim::new(config))
    });
    add("Dandelion KVM (cached binaries)", &mut || {
        let mut config = DandelionConfig::xeon(SandboxCostModel::for_backend(
            IsolationKind::Kvm,
            HardwarePlatform::X86Linux,
        ));
        config.binary_cold_load_ratio = 0.0;
        Box::new(DandelionSim::new(config))
    });
    add("Firecracker hot", &mut || {
        Box::new(MicroVmSim::new(
            MicroVmKind::Firecracker,
            HardwarePlatform::X86Linux,
            16,
            WarmPolicy::FixedHotRatio { hot_ratio: 1.0 },
            31,
        ))
    });
    add("Firecracker cold (snapshot)", &mut || {
        Box::new(MicroVmSim::new(
            MicroVmKind::FirecrackerSnapshot,
            HardwarePlatform::X86Linux,
            16,
            WarmPolicy::FixedHotRatio { hot_ratio: 0.0 },
            31,
        ))
    });
    add("Wasmtime (Spin)", &mut || Box::new(WasmtimeSim::new(16)));
    report.note("all systems grow linearly with the phase count; Dandelion pays one sandbox per compute phase yet stays within a few ms of Firecracker hot");
    report
}

/// Figure 7: Dandelion vs D-hybrid for a compute-heavy and an I/O-heavy app.
pub fn fig7_compute_comm_split() -> Report {
    let mut report = Report::new(
        "Figure 7: separating compute and communication (Dandelion) vs hybrid functions (D-hybrid)",
        "p99 latency in ms at increasing offered load, 16-core server",
    );
    report.header(&["workload", "system", "1000 RPS", "2000 RPS", "3000 RPS"]);
    let rps_points = [1000.0, 2000.0, 3000.0];

    let mut add = |workload: &str,
                   spec: &dandelion_sim::RequestSpec,
                   label: &str,
                   make: &mut dyn FnMut() -> Box<dyn PlatformModel>| {
        let sweep = sweep_open_loop(|| make(), spec, &rps_points, Duration::from_secs(8), 37);
        let mut row = vec![workload.to_string(), label.to_string()];
        row.extend(
            sweep
                .iter()
                .map(|point| format!("{:.1}", point.latency.p99_ms())),
        );
        report.rows.push(row);
    };

    let kvm = || SandboxCostModel::for_backend(IsolationKind::Kvm, HardwarePlatform::X86Linux);
    for (workload, spec) in [
        ("matrix multiplication", workloads::matmul_128()),
        ("fetch and compute", workloads::fetch_and_compute(4)),
    ] {
        add(workload, &spec, "Dandelion", &mut || {
            Box::new(DandelionSim::new(DandelionConfig::xeon(kvm())))
        });
        add(workload, &spec, "D-hybrid (tpc=1, pinned)", &mut || {
            Box::new(DHybridSim::new(kvm(), 16, 1, true))
        });
        for tpc in [3usize, 4, 5] {
            add(
                workload,
                &spec,
                &format!("D-hybrid (tpc={tpc})"),
                &mut || Box::new(DHybridSim::new(kvm(), 16, tpc, false)),
            );
        }
    }
    report.note("no single D-hybrid concurrency setting wins both workloads; Dandelion's control plane matches the best configuration for each");
    report
}

/// Figure 8: multiplexing an I/O-intensive and a compute-intensive app.
pub fn fig8_multiplexing() -> Report {
    let duration = Duration::from_secs(30);
    // Rates are chosen so the 16-core node stays below saturation outside the
    // burst and well-loaded during it (the paper plots the same qualitative
    // pattern without giving absolute rates).
    let apps = vec![
        (
            workloads::image_compression(),
            vec![
                (Duration::ZERO, 100.0),
                (Duration::from_secs(10), 250.0),
                (Duration::from_secs(20), 100.0),
            ],
        ),
        (
            workloads::log_processing(),
            vec![
                (Duration::ZERO, 80.0),
                (Duration::from_secs(10), 400.0),
                (Duration::from_secs(20), 80.0),
            ],
        ),
    ];
    let mut report = Report::new(
        "Figure 8: multiplexing image compression (compute) and log processing (I/O) under bursty load",
        "30 s run with a 10 s burst; per-application average, p99 and relative variance",
    );
    report.header(&["system", "app", "avg [ms]", "p99 [ms]", "rel. variance [%]"]);

    let mut add = |label: &str, model: &mut dyn PlatformModel| {
        let results = run_bursty(model, &apps, duration, 41);
        for app in ["image-compression", "log-processing"] {
            let result = &results[app];
            report.rows.push(vec![
                label.to_string(),
                app.to_string(),
                format!("{:.1}", result.latency.mean_ms()),
                format!("{:.1}", result.latency.p99_ms()),
                format!("{:.1}", result.latency.relative_variance_percent),
            ]);
        }
    };

    let mut dandelion = dandelion_xeon(IsolationKind::Kvm);
    add("Dandelion", &mut dandelion);
    let mut firecracker = MicroVmSim::new(
        MicroVmKind::FirecrackerSnapshot,
        HardwarePlatform::X86Linux,
        16,
        WarmPolicy::FixedHotRatio { hot_ratio: 0.97 },
        43,
    );
    add("Firecracker (97% hot)", &mut firecracker);
    let mut wasmtime = WasmtimeSim::new(16).with_compute_slowdown(2.9);
    add("Wasmtime (Spin)", &mut wasmtime);

    report.note(&format!(
        "Dandelion re-allocated cores {} times during the burst (paper: scales from 1 to 4 I/O cores)",
        dandelion.core_timeline().len()
    ));
    report.note("paper averages: compression 18.2/20.4/53.3 ms and logs 27.9/25.6/28.9 ms for Dandelion/Firecracker/Wasmtime");
    report
}

/// Figure 9: SSB query latency and cost, Dandelion on EC2 vs Athena.
pub fn fig9_ssb_queries() -> Report {
    // Generate a database and measure real single-core execution per query.
    let db = generate_database(1.0, 7);
    let scanned_bytes = db.total_bytes() as u64;
    // The paper's queries scan ~700 MB; scale the cost/latency models by the
    // ratio so the reported numbers are comparable in magnitude.
    let paper_bytes: u64 = 700 * 1024 * 1024;
    let scale = paper_bytes as f64 / scanned_bytes as f64;

    let athena = AthenaModel::default();
    let ec2 = Ec2Model::default();
    let mut report = Report::new(
        "Figure 9: SSB query latency and cost, Dandelion (EC2 m7a.8xlarge) vs AWS Athena",
        &format!(
            "measured single-core engine time on a {} MB database, scaled to the paper's ~700 MB input",
            scanned_bytes / (1024 * 1024)
        ),
    );
    report.header(&[
        "query",
        "Dandelion latency [ms]",
        "Dandelion cost [c]",
        "Athena latency [ms]",
        "Athena cost [c]",
    ]);

    for query in SsbQuery::ALL {
        let start = Instant::now();
        let result = query.run(&db).expect("query executes");
        let single_core = start.elapsed().mul_f64(scale);
        assert!(result.rows() > 0 || query == SsbQuery::Q1_1);

        let fetch = Duration::from_secs_f64(paper_bytes as f64 / (2.0 * 1024.0 * 1024.0 * 1024.0));
        let latency = ec2.dandelion_latency(single_core, 32, Duration::from_millis(5), fetch);
        let dandelion_cost = ec2.query(latency);
        let athena_cost = athena.query(paper_bytes);
        report.rows.push(vec![
            query.label().to_string(),
            format!("{:.0}", dandelion_cost.latency.as_secs_f64() * 1e3),
            format!("{:.2}", dandelion_cost.cost_cents),
            format!("{:.0}", athena_cost.latency.as_secs_f64() * 1e3),
            format!("{:.2}", athena_cost.cost_cents),
        ]);
    }
    report.note("paper reports ~40% lower latency and ~67% lower cost for Dandelion on these short queries (Athena ~0.32-0.33c per query)");
    report
}

/// §7.7: Text2SQL agentic workflow, step-by-step latency.
pub fn text2sql_breakdown() -> Report {
    use dandelion_apps::text2sql;
    let mut report = Report::new(
        "Section 7.7: Text2SQL agentic workflow latency breakdown",
        "five-step workflow: parse prompt, LLM call, extract SQL, database query, format response",
    );
    report.header(&["step", "kind", "paper [ms]", "reproduction [ms]"]);

    // Compute steps: measure the real compute functions on this machine,
    // driven through the client facade like an external caller.
    let worker = dandelion_apps::setup::demo_worker(4, false).expect("demo worker starts");
    let client = dandelion_core::DandelionClient::for_worker(Arc::clone(&worker));
    let prompt = b"Which city in Switzerland has the largest population?".to_vec();
    let start = Instant::now();
    let outcome = client
        .invoke_sync("Text2Sql", vec![DataSet::single("Prompt", prompt)])
        .expect("workflow runs");
    let compute_elapsed = start.elapsed();
    worker.shutdown();
    assert!(outcome.outputs[0].items[0]
        .as_str()
        .unwrap()
        .contains("Zurich"));

    // The communication latencies come from the calibrated service models
    // (the paper's measured LLM and database latencies).
    let llm = dandelion_services::latency::defaults::LLM.base;
    let database = dandelion_services::latency::defaults::SQL_DATABASE.base;
    let paper = text2sql::paper_step_latencies_ms();
    let compute_share = compute_elapsed.as_secs_f64() * 1e3 / 3.0;
    let reproduction = [
        compute_share,
        llm.as_secs_f64() * 1e3,
        compute_share,
        database.as_secs_f64() * 1e3,
        compute_share,
    ];
    let kinds = [
        "compute",
        "communication",
        "compute",
        "communication",
        "compute",
    ];
    let mut total_paper = 0u64;
    let mut total_reproduction = 0.0;
    for ((step, paper_ms), (kind, repro_ms)) in paper.iter().zip(kinds.iter().zip(reproduction)) {
        report.rows.push(vec![
            step.to_string(),
            kind.to_string(),
            paper_ms.to_string(),
            format!("{repro_ms:.1}"),
        ]);
        total_paper += paper_ms;
        total_reproduction += repro_ms;
    }
    report.rows.push(vec![
        "total".into(),
        "".into(),
        total_paper.to_string(),
        format!("{total_reproduction:.1}"),
    ]);
    report.note("the LLM call dominates (61% in the paper); compute steps are faster here because the paper runs them through the CPython interpreter");
    report
}

/// Figure 10 / §7.8: committed memory and latency for the Azure trace.
pub fn fig10_azure_memory() -> Report {
    let trace = default_trace();
    let mut firecracker = knative_firecracker(16, 3);
    let firecracker_result = run_trace(&mut firecracker, &trace);
    let mut dandelion = DandelionSim::new(DandelionConfig::xeon(SandboxCostModel::for_backend(
        IsolationKind::Process,
        HardwarePlatform::X86Linux,
    )));
    let dandelion_result = run_trace(&mut dandelion, &trace);

    let mut report = Report::new(
        "Figure 10 / Section 7.8: Azure trace replay, Firecracker+Knative vs Dandelion",
        &format!(
            "100 functions, {} invocations over {:.0} s, Dandelion process backend",
            trace.len(),
            trace.duration.as_secs_f64()
        ),
    );
    report.header(&["metric", "Firecracker + Knative", "Dandelion"]);
    report.row(vec![
        "average committed memory [MB]".into(),
        format!("{:.0}", mb(firecracker_result.average_memory_bytes)),
        format!("{:.0}", mb(dandelion_result.average_memory_bytes)),
    ]);
    report.row(vec![
        "peak committed memory [MB]".into(),
        format!("{:.0}", mb(firecracker_result.peak_memory_bytes)),
        format!("{:.0}", mb(dandelion_result.peak_memory_bytes)),
    ]);
    report.row(vec![
        "p99 end-to-end latency [ms]".into(),
        format!("{:.1}", firecracker_result.latency.p99_ms()),
        format!("{:.1}", dandelion_result.latency.p99_ms()),
    ]);
    report.row(vec![
        "cold invocations [%]".into(),
        format!(
            "{:.1}",
            100.0 * firecracker_result.cold_starts as f64 / trace.len() as f64
        ),
        "100 (by design)".into(),
    ]);
    let saving = 100.0
        * (1.0 - dandelion_result.average_memory_bytes / firecracker_result.average_memory_bytes);
    let p99_reduction =
        100.0 * (1.0 - dandelion_result.latency.p99_ms() / firecracker_result.latency.p99_ms());
    report.note(&format!(
        "Dandelion commits {saving:.0}% less memory on average (paper: 96%) and reduces p99 latency by {p99_reduction:.0}% (paper: 46%)"
    ));
    report.note(&format!(
        "Knative serves {:.1}% of invocations cold (paper observes ~3.3%)",
        100.0 * firecracker_result.cold_starts as f64 / trace.len() as f64
    ));
    report
}

/// §8: trusted computing base and attack-surface summary.
pub fn security_summary() -> Report {
    let mut report = Report::new(
        "Section 8: attack surface and trusted computing base",
        "static summary of the reproduction's security-relevant properties",
    );
    report.header(&["property", "value"]);
    report.row(vec![
        "syscalls reachable from compute functions".into(),
        "0 (stubs return ENOSYS; strict backends terminate the function)".into(),
    ]);
    report.row(vec![
        "untrusted-output parser".into(),
        "length-prefixed descriptor, ~120 lines, fuzz/property tested".into(),
    ]);
    report.row(vec![
        "communication-function validation".into(),
        "method whitelist + host syntax check before any request is issued".into(),
    ]);
    report.row(vec![
        "isolation backends".into(),
        "CHERI, KVM, process, rWasm, native (reference)".into(),
    ]);
    report.note("the paper reports ~12k lines of Rust for Dandelion vs ~68k (Firecracker), ~65k (Spin) and ~38k Go (gVisor)");
    report
}

/// Repo-only experiment: how much throughput the non-blocking client API
/// buys when invocations spend their time waiting on an external
/// dependency. Each invocation runs a function that blocks for a fixed
/// service time (emulating a slow downstream service); a single synchronous
/// caller serializes those waits, while `DandelionClient::submit` keeps all
/// of them in flight across the cluster's engines.
pub fn concurrency_fanout() -> Report {
    use dandelion_common::config::{ClusterConfig, LoadBalancing, WorkerConfig};
    use dandelion_core::{ClusterManager, DandelionClient};
    use dandelion_isolation::{FunctionArtifact, FunctionCtx};

    const INVOCATIONS: usize = 24;
    const SERVICE_TIME: Duration = Duration::from_millis(25);

    let make_cluster = || {
        let config = ClusterConfig {
            nodes: 2,
            worker: WorkerConfig {
                total_cores: 4,
                initial_communication_cores: 1,
                isolation: IsolationKind::Native,
                ..WorkerConfig::default()
            },
            load_balancing: LoadBalancing::RoundRobin,
        };
        let cluster = Arc::new(
            ClusterManager::start(config, dandelion_apps::setup::demo_services(false))
                .expect("cluster starts"),
        );
        cluster
            .register_function_with(|| {
                FunctionArtifact::new("AwaitService", &["Out"], |ctx: &mut FunctionCtx| {
                    let payload = ctx.single_input("In")?.data.as_slice().to_vec();
                    std::thread::sleep(SERVICE_TIME);
                    ctx.push_output_bytes("Out", "echo", payload)
                })
            })
            .expect("function registers");
        cluster
            .register_composition(
                dandelion_dsl::compile(
                    "composition SlowEcho(Request) => Reply { \
                     AwaitService(In = all Request) => (Reply = Out); }",
                )
                .expect("DSL compiles"),
            )
            .expect("composition registers");
        cluster
    };

    let mut report = Report::new(
        "Concurrency: synchronous vs pipelined invocation on a 2-node cluster",
        &format!(
            "{INVOCATIONS} invocations of a {} ms blocking service call, \
             4 cores per node, DandelionClient facade",
            SERVICE_TIME.as_millis()
        ),
    );
    report.header(&["mode", "wall time [ms]", "throughput [inv/s]"]);

    let run = |pipelined: bool| {
        let cluster = make_cluster();
        let client = DandelionClient::for_cluster(Arc::clone(&cluster));
        let inputs =
            |index: usize| vec![DataSet::single("Request", format!("r{index}").into_bytes())];
        let start = Instant::now();
        if pipelined {
            // All invocations in flight before the first wait.
            let handles: Vec<_> = (0..INVOCATIONS)
                .map(|index| client.submit("SlowEcho", inputs(index)).expect("submits"))
                .collect();
            for (index, handle) in handles.iter().enumerate() {
                let outcome = handle.wait(None).expect("pipelined invocation runs");
                assert_eq!(
                    outcome.outputs[0].items[0].as_str(),
                    Some(format!("r{index}").as_str())
                );
            }
        } else {
            // One blocking caller: each invocation waits before the next.
            for index in 0..INVOCATIONS {
                let outcome = client
                    .invoke_sync("SlowEcho", inputs(index))
                    .expect("sync invocation runs");
                assert_eq!(
                    outcome.outputs[0].items[0].as_str(),
                    Some(format!("r{index}").as_str())
                );
            }
        }
        let elapsed = start.elapsed();
        cluster.shutdown();
        elapsed
    };

    let sync_elapsed = run(false);
    let pipelined_elapsed = run(true);

    for (mode, elapsed) in [
        ("synchronous", sync_elapsed),
        ("pipelined", pipelined_elapsed),
    ] {
        report.row(vec![
            mode.into(),
            format!("{:.1}", elapsed.as_secs_f64() * 1e3),
            format!(
                "{:.0}",
                INVOCATIONS as f64 / elapsed.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    report.note(&format!(
        "pipelined speedup {:.1}x: a synchronous caller pays one service time per \
         invocation, the submit/poll API overlaps them across the cluster's 6 compute engines",
        sync_elapsed.as_secs_f64() / pipelined_elapsed.as_secs_f64().max(1e-9)
    ));
    report
}

/// Repo-only experiment: how much the zero-copy data plane buys on a
/// payload-heavy composition. A three-stage pipeline (relay → `each` fan-out
/// relay → relay) moves large items through two composition edges plus the
/// client boundary. The *zero-copy* functions pass their input items through
/// by reference (`SharedBytes` clones), so no payload byte is copied on any
/// edge; the *copy* functions re-materialize every payload with `to_vec`,
/// reproducing the per-edge copying the platform did before `SharedBytes`
/// (every boundary re-allocated and memcpy'd each item).
pub fn data_plane() -> Report {
    use dandelion_common::config::{IsolationKind, WorkerConfig};
    use dandelion_core::worker::{default_test_services, WorkerNode};
    use dandelion_isolation::{FunctionArtifact, FunctionCtx};

    const PAYLOAD_BYTES: usize = 4 * MIB;
    const ITEMS: usize = 8;
    const HOPS: usize = 3;
    const RUNS: usize = 5;

    let worker = WorkerNode::start_with_control(
        WorkerConfig {
            total_cores: 4,
            initial_communication_cores: 1,
            isolation: IsolationKind::Native,
            ..WorkerConfig::default()
        },
        default_test_services(),
        false,
    )
    .expect("worker starts");

    let relay = |name: &str, copy: bool| {
        FunctionArtifact::new(name, &["Out"], move |ctx: &mut FunctionCtx| {
            let items = ctx.input_set("Items").ok_or("missing Items")?.clone();
            for item in &items.items {
                let data = if copy {
                    // The pre-change behaviour: one fresh allocation and
                    // memcpy per item per edge.
                    dandelion_common::SharedBytes::from_vec(item.data.as_slice().to_vec())
                } else {
                    // Zero-copy: stage a view of the incoming buffer.
                    item.data.clone()
                };
                ctx.push_output(
                    "Out",
                    dandelion_common::DataItem::new(item.name.clone(), data),
                )?;
            }
            Ok(())
        })
        .with_memory_requirement(512 * MIB)
    };
    for (suffix, copy) in [("ZeroCopy", false), ("Copy", true)] {
        for stage in 1..=HOPS {
            worker
                .register_function(relay(&format!("Relay{stage}{suffix}"), copy))
                .expect("relay registers");
        }
        worker
            .register_composition_dsl(&format!(
                "composition Pipeline{suffix}(In) => Out {{ \
                 Relay1{suffix}(Items = all In) => (S1 = Out); \
                 Relay2{suffix}(Items = each S1) => (S2 = Out); \
                 Relay3{suffix}(Items = all S2) => (Out = Out); }}"
            ))
            .expect("pipeline registers");
    }

    let inputs = || {
        dandelion_common::DataSet::with_items(
            "In",
            (0..ITEMS)
                .map(|index| {
                    dandelion_common::DataItem::new(
                        format!("item-{index}"),
                        vec![index as u8; PAYLOAD_BYTES],
                    )
                })
                .collect(),
        )
    };
    let run = |composition: &str| {
        // Warm-up run, then the timed runs.
        for _ in 0..1 {
            worker
                .invoke(composition, vec![inputs()])
                .expect("pipeline runs");
        }
        let start = Instant::now();
        for _ in 0..RUNS {
            let outcome = worker
                .invoke(composition, vec![inputs()])
                .expect("pipeline runs");
            assert_eq!(outcome.outputs[0].items.len(), ITEMS);
            assert_eq!(outcome.outputs[0].items[0].data.len(), PAYLOAD_BYTES);
        }
        start.elapsed() / RUNS as u32
    };

    let copy_elapsed = run("PipelineCopy");
    let zero_copy_elapsed = run("PipelineZeroCopy");
    worker.shutdown();

    // Payload bytes crossing the data plane per invocation: each of the
    // HOPS relay stages forwards every item across one composition edge.
    let moved_bytes = (PAYLOAD_BYTES * ITEMS * HOPS) as f64;
    let throughput = |elapsed: Duration| moved_bytes / MIB as f64 / elapsed.as_secs_f64();

    let mut report = Report::new(
        "Data plane: zero-copy SharedBytes edges vs per-edge payload copies",
        &format!(
            "{ITEMS} x {} items through a {HOPS}-stage pipeline with `each` fan-out, \
             {RUNS} runs, 4-core worker, native isolation",
            dandelion_common::format_bytes(PAYLOAD_BYTES)
        ),
    );
    report.header(&["mode", "per-invocation [ms]", "throughput [MiB/s]"]);
    for (mode, elapsed) in [("copy", copy_elapsed), ("zero-copy", zero_copy_elapsed)] {
        report.row(vec![
            mode.into(),
            format!("{:.1}", elapsed.as_secs_f64() * 1e3),
            format!("{:.0}", throughput(elapsed)),
        ]);
    }
    report.note(&format!(
        "zero-copy speedup {:.1}x: composition edges, `each` fan-out and the client \
         boundary hand out views of the producer's buffer instead of copying \
         {} per invocation",
        copy_elapsed.as_secs_f64() / zero_copy_elapsed.as_secs_f64().max(1e-9),
        dandelion_common::format_bytes(moved_bytes as usize),
    ));
    report
}

/// Repo-only experiment: what the allocation-free steady-state path buys on
/// small invocations, where per-request overhead — not payload volume — is
/// the bottleneck. Each "invocation" performs the construction work of one
/// 4 KiB request/response cycle exactly as the platform does it: serialize
/// the client request, run a memory-context lifecycle (import the input,
/// build + attach + parse the output frame), and serialize the response.
///
/// The *pooled/rope* mode is the current code: pooled context arenas,
/// `SharedBytesMut` frame/header builders frozen without copy, bodies
/// attached by reference, vectored rope delivery. The *vec-assembly* mode
/// re-creates the pre-pooling behaviour byte-for-byte: `format!`-assembled
/// heads, incrementally grown descriptor `Vec`s appended into the context
/// and exported back out, and a fresh arena from the global allocator per
/// invocation.
pub fn small_invocations() -> Report {
    use std::io::Write;

    use dandelion_common::{DataItem, SharedBytes};
    use dandelion_http::{HttpRequest, HttpResponse};
    use dandelion_isolation::output_parser::{encode_frame_shared, parse_frame, FRAME_MAGIC};
    use dandelion_isolation::MemoryContext;

    use dandelion_common::KIB;

    const PAYLOAD_BYTES: usize = 4 * KIB;
    const CONTEXT_CAPACITY: usize = 64 * KIB;
    /// Backend requests fanned out per invocation (the FetchConcat shape:
    /// one inbound request, FANOUT service calls, one outbound response).
    const FANOUT: usize = 4;
    const WARMUP: usize = 2_000;
    const INVOCATIONS: usize = 40_000;

    let payload = SharedBytes::from_vec(vec![0xA5; PAYLOAD_BYTES]);
    // The request and response *objects* are prepared once (both modes pay
    // the same construction cost); the per-invocation work under test is
    // serialization, delivery and the context lifecycle.
    let request = HttpRequest::post("http://svc.internal/invoke", payload.clone())
        .with_header("Content-Type", "application/octet-stream")
        .with_header("X-Invocation", "small");
    let response = HttpResponse::ok(payload.clone());
    // The staged output sets (what the function leaves behind) — also
    // prepared once; item payload attachment is by reference in both modes.
    let sets = vec![dandelion_common::DataSet::with_items(
        "Out",
        vec![DataItem::new("response", payload.clone())],
    )];

    // The pre-pooling reference implementations, re-created verbatim so the
    // comparison is old code vs new code on identical work.
    let vec_assembly_request = |request: &HttpRequest| -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + request.body.len());
        out.extend_from_slice(
            format!(
                "{} {} {}\r\n",
                request.method, request.target, request.version
            )
            .as_bytes(),
        );
        for (name, value) in request.headers.iter() {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        if !request.body.is_empty() && request.headers.content_length().is_none() {
            out.extend_from_slice(format!("Content-Length: {}\r\n", request.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&request.body);
        out
    };
    let vec_assembly_response = |response: &HttpResponse| -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + response.body.len());
        out.extend_from_slice(
            format!(
                "{} {} {}\r\n",
                response.version,
                response.status.0,
                response.status.reason()
            )
            .as_bytes(),
        );
        for (name, value) in response.headers.iter() {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        if response.headers.content_length().is_none() {
            out.extend_from_slice(
                format!("Content-Length: {}\r\n", response.body.len()).as_bytes(),
            );
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&response.body);
        out
    };
    let vec_assembly_frame = |sets: &[dandelion_common::DataSet]| -> Vec<u8> {
        let push_chunk = |out: &mut Vec<u8>, data: &[u8]| {
            out.extend_from_slice(&(data.len() as u32).to_le_bytes());
            out.extend_from_slice(data);
        };
        let mut out = Vec::new();
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.extend_from_slice(&(sets.len() as u32).to_le_bytes());
        for set in sets {
            push_chunk(&mut out, set.name.as_bytes());
            out.extend_from_slice(&(set.items.len() as u32).to_le_bytes());
            for item in &set.items {
                push_chunk(&mut out, item.name.as_bytes());
                push_chunk(&mut out, item.key.as_deref().unwrap_or("").as_bytes());
                out.extend_from_slice(&(item.data.len() as u32).to_le_bytes());
            }
        }
        out
    };

    // One steady-state invocation on the pooled/rope path: inbound request,
    // FANOUT backend request/response pairs (the communication engine's
    // serialization work), one context/frame cycle, outbound response.
    let pooled_invocation = |sink: &mut std::io::Sink| {
        request.to_rope().write_to(sink).expect("sink never fails");
        for _ in 0..FANOUT {
            request.to_rope().write_to(sink).expect("sink never fails");
            response.to_rope().write_to(sink).expect("sink never fails");
        }
        let mut context = MemoryContext::new(CONTEXT_CAPACITY);
        context.import(&payload).expect("input attaches");
        let frame = encode_frame_shared(&sets);
        context.import(&frame).expect("frame attaches");
        let parsed = parse_frame(&frame).expect("frame parses");
        assert_eq!(parsed[0].items[0].data_len, PAYLOAD_BYTES);
        context.clear();
        response.to_rope().write_to(sink).expect("sink never fails");
    };
    // The same invocation on the Vec-assembly reference path.
    let vec_invocation = |sink: &mut std::io::Sink| {
        sink.write_all(&vec_assembly_request(&request))
            .expect("sink never fails");
        for _ in 0..FANOUT {
            sink.write_all(&vec_assembly_request(&request))
                .expect("sink never fails");
            sink.write_all(&vec_assembly_response(&response))
                .expect("sink never fails");
        }
        let mut context = MemoryContext::new_unpooled(CONTEXT_CAPACITY);
        context.import(&payload).expect("input attaches");
        let frame = vec_assembly_frame(&sets);
        let frame_offset = context.append(&frame).expect("frame appends");
        let exported = context
            .export(frame_offset, frame.len())
            .expect("frame exports");
        let parsed = parse_frame(&exported).expect("frame parses");
        assert_eq!(parsed[0].items[0].data_len, PAYLOAD_BYTES);
        context.clear();
        sink.write_all(&vec_assembly_response(&response))
            .expect("sink never fails");
    };

    let measure = |invocation: &dyn Fn(&mut std::io::Sink)| -> Duration {
        let mut sink = std::io::sink();
        for _ in 0..WARMUP {
            invocation(&mut sink);
        }
        let start = Instant::now();
        for _ in 0..INVOCATIONS {
            invocation(&mut sink);
        }
        start.elapsed()
    };

    let vec_elapsed = measure(&vec_invocation);
    let pooled_elapsed = measure(&pooled_invocation);

    let mut report = Report::new(
        "Small invocations: pooled arenas + rope builders vs Vec-assembly reference",
        &format!(
            "{INVOCATIONS} invocations of a {} payload cycle (request in, {FANOUT} backend \
             request/response pairs, output-frame context cycle, response out), \
             after {WARMUP} warm-up, single thread",
            dandelion_common::format_bytes(PAYLOAD_BYTES)
        ),
    );
    report.header(&["mode", "wall time [ms]", "throughput [RPS]"]);
    for (mode, elapsed) in [
        ("vec-assembly", vec_elapsed),
        ("pooled-rope", pooled_elapsed),
    ] {
        report.row(vec![
            mode.into(),
            format!("{:.1}", elapsed.as_secs_f64() * 1e3),
            format!(
                "{:.0}",
                INVOCATIONS as f64 / elapsed.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    report.note(&format!(
        "pooled/rope speedup {:.1}x: context arenas recycle through the buffer pool, \
         descriptor frames and HTTP heads are built once in pooled builders, and \
         payloads attach to ropes by reference instead of being flattened per message",
        vec_elapsed.as_secs_f64() / pooled_elapsed.as_secs_f64().max(1e-9)
    ));
    report
}

/// Repo-only experiment: end-to-end throughput of the real network serving
/// layer on loopback TCP. A 4-core worker serves a tiny echo composition
/// through `dandelion-server` bound with **two epoll event loops**; the
/// in-repo load generator drives it with client threads issuing synchronous
/// `/v1/invoke` requests. The *keep-alive* mode reuses one connection per
/// client (the steady state of a real deployment); the *reconnect* mode
/// opens a fresh TCP connection per request, paying the handshake and a
/// cold receive buffer each time; the *high-connection* mode holds 2000
/// additional idle keep-alive connections open while 64 active clients
/// issue requests — the headline of the readiness-driven rewrite is that
/// the mostly-idle thousands cost the two loops almost nothing, where the
/// old thread-per-connection pool would have refused or thrashed.
///
/// The *scaling* modes measure the sharded-accept rewrite: ~10,000
/// **active** keep-alive connections all issue `GET /healthz` (answered on
/// the serving layer itself, so the worker is not the bottleneck) in
/// batched write-then-read rounds, against a 1-loop server and a 4-loop
/// server. With per-loop `SO_REUSEPORT` listeners, edge-triggered
/// registrations and lock-free inboxes, loops share no admission funnel
/// and no inbox lock — on a multi-core machine 4 loops should approach 4x
/// the single-loop RPS (the release guard demands >= 2x on >= 6 cores).
pub fn network() -> Report {
    use dandelion_common::config::{IsolationKind, WorkerConfig};
    use dandelion_core::worker::{default_test_services, WorkerNode};
    use dandelion_core::Frontend;
    use dandelion_http::HttpRequest;
    use dandelion_isolation::{FunctionArtifact, FunctionCtx};
    use dandelion_server::{HttpClientConnection, Server, ServerConfig};

    const EVENT_LOOPS: usize = 2;
    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 1_500;
    const IDLE_CONNECTIONS: usize = 2_000;
    const ACTIVE_CLIENTS: usize = 64;
    const REQUESTS_PER_ACTIVE: usize = 120;
    const PAYLOAD_BYTES: usize = 512;
    const WARMUP_PER_CLIENT: usize = 50;
    const SCALING_CONNECTIONS: usize = 10_000;
    const SCALING_THREADS: usize = 8;
    const SCALING_ROUNDS: usize = 5;

    // Every socket exists twice in this process (client and server end);
    // the scaling modes alone need ~2x 10k descriptors. Running as root
    // (CI containers) the hard limit is raised too; otherwise the scenario
    // adapts its connection count to the budget actually granted.
    let fd_budget =
        dandelion_server::sys::raise_nofile_limit(24 * 1024).expect("open-file limit raised");
    let scaling_connections =
        SCALING_CONNECTIONS.min((fd_budget.saturating_sub(1024) / 2) as usize) / SCALING_THREADS
            * SCALING_THREADS;

    let worker = WorkerNode::start_with_control(
        WorkerConfig {
            total_cores: 4,
            initial_communication_cores: 1,
            isolation: IsolationKind::Native,
            ..WorkerConfig::default()
        },
        default_test_services(),
        false,
    )
    .expect("worker starts");
    worker
        .register_function(FunctionArtifact::new(
            "Echo",
            &["Out"],
            |ctx: &mut FunctionCtx| {
                let data = ctx.single_input("In")?.data.clone();
                ctx.push_output("Out", dandelion_common::DataItem::new("echo", data))
            },
        ))
        .expect("function registers");
    worker
        .register_composition_dsl(
            "composition Echoed(Input) => Output { Echo(In = all Input) => (Output = Out); }",
        )
        .expect("composition registers");
    let server = Server::start(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            event_loops: EVENT_LOOPS,
            max_connections: IDLE_CONNECTIONS + ACTIVE_CLIENTS + 64,
            // The idle herd must survive the whole measurement.
            read_timeout: Duration::from_secs(120),
            ..ServerConfig::default()
        },
        Arc::new(Frontend::new(Arc::clone(&worker))),
    )
    .expect("server binds");
    let addr = server.local_addr();

    let request = || {
        HttpRequest::post("/v1/invoke/Echoed", vec![0x5A; PAYLOAD_BYTES])
            .with_header("Content-Type", "application/octet-stream")
    };
    let check = |response: &dandelion_http::HttpResponse| {
        assert_eq!(response.status.0, 200, "{}", response.body_text());
        assert_eq!(response.body.len(), PAYLOAD_BYTES);
    };

    let run = |clients: usize, per_client: usize, keep_alive: bool| -> Duration {
        let start = Instant::now();
        let clients: Vec<_> = (0..clients)
            .map(|_| {
                std::thread::spawn(move || {
                    let connect =
                        || HttpClientConnection::connect(addr, Duration::from_secs(30)).unwrap();
                    if keep_alive {
                        let mut connection = connect();
                        for _ in 0..per_client {
                            check(&connection.request(&request()).unwrap());
                        }
                    } else {
                        for _ in 0..per_client {
                            let mut connection = connect();
                            check(
                                &connection
                                    .request(&request().with_header("Connection", "close"))
                                    .unwrap(),
                            );
                        }
                    }
                })
            })
            .collect();
        for client in clients {
            client.join().expect("load generator succeeds");
        }
        start.elapsed()
    };

    // Warm up the worker, the pools and the page cache.
    {
        let mut connection = HttpClientConnection::connect(addr, Duration::from_secs(30)).unwrap();
        for _ in 0..WARMUP_PER_CLIENT * CLIENTS {
            check(&connection.request(&request()).unwrap());
        }
    }
    let reconnect_elapsed = run(CLIENTS, REQUESTS_PER_CLIENT, false);
    let keep_alive_elapsed = run(CLIENTS, REQUESTS_PER_CLIENT, true);

    // High-connection scenario: park an idle herd, then measure active
    // throughput on top of it.
    let idle_herd: Vec<std::net::TcpStream> = (0..IDLE_CONNECTIONS)
        .map(|index| {
            std::net::TcpStream::connect(addr)
                .unwrap_or_else(|error| panic!("idle connection {index} refused: {error}"))
        })
        .collect();
    // Wait until every idle connection is adopted by a loop.
    let deadline = Instant::now() + Duration::from_secs(60);
    while (server.stats().open_connections as usize) < IDLE_CONNECTIONS {
        assert!(Instant::now() < deadline, "idle herd not adopted in time");
        std::thread::sleep(Duration::from_millis(5));
    }
    let high_conn_elapsed = run(ACTIVE_CLIENTS, REQUESTS_PER_ACTIVE, true);
    assert!(
        server.stats().open_connections as usize >= IDLE_CONNECTIONS,
        "the idle herd must survive the measurement"
    );
    drop(idle_herd);

    let few_requests = (CLIENTS * REQUESTS_PER_CLIENT) as f64;
    let high_requests = (ACTIVE_CLIENTS * REQUESTS_PER_ACTIVE) as f64;
    let served = server.stats().requests;
    assert!(
        served as f64 >= 2.0 * few_requests + high_requests,
        "all requests counted"
    );
    server.shutdown();

    // Scaling modes: the same ~10k-connection herd, but every connection
    // is *active*, hammering `/healthz` — answered by the serving layer
    // itself, so RPS measures epoll loops, accept sharding and inboxes,
    // not worker dispatch. Each mode gets a fresh server (fresh port) so
    // lingering TIME_WAIT tuples from the previous one cannot interfere.
    let scale_run = |loops: usize| -> Duration {
        let server = Server::start(
            ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                event_loops: loops,
                max_connections: scaling_connections + 64,
                read_timeout: Duration::from_secs(120),
                ..ServerConfig::default()
            },
            Arc::new(Frontend::new(Arc::clone(&worker))),
        )
        .expect("scaling server binds");
        let addr = server.local_addr();
        let per_thread = scaling_connections / SCALING_THREADS;
        // Connect the herd in parallel; each socket is its own flow, which
        // is what spreads them across the reuseport listeners.
        let connectors: Vec<_> = (0..SCALING_THREADS)
            .map(|_| {
                std::thread::spawn(move || {
                    (0..per_thread)
                        .map(|index| {
                            let stream =
                                std::net::TcpStream::connect(addr).unwrap_or_else(|error| {
                                    panic!("scaling connection {index} refused: {error}")
                                });
                            stream
                                .set_read_timeout(Some(Duration::from_secs(120)))
                                .unwrap();
                            stream.set_nodelay(true).unwrap();
                            stream
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let slices: Vec<Vec<std::net::TcpStream>> = connectors
            .into_iter()
            .map(|thread| thread.join().expect("connector succeeds"))
            .collect();
        let deadline = Instant::now() + Duration::from_secs(120);
        while (server.stats().open_connections as usize) < scaling_connections {
            assert!(
                Instant::now() < deadline,
                "scaling herd not adopted in time"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let start = Instant::now();
        let drivers: Vec<_> = slices
            .into_iter()
            .map(|mut conns| {
                std::thread::spawn(move || {
                    use std::io::Write;
                    let mut decoders: Vec<_> = conns
                        .iter()
                        .map(|_| {
                            dandelion_http::ResponseDecoder::new(
                                dandelion_http::ParseLimits::default(),
                            )
                        })
                        .collect();
                    for _round in 0..SCALING_ROUNDS {
                        // Batched round: put one request on every
                        // connection, then collect every response — all
                        // connections are mid-flight at once.
                        for conn in &mut conns {
                            conn.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
                        }
                        for (conn, decoder) in conns.iter_mut().zip(&mut decoders) {
                            let response = loop {
                                if let Some(response) = decoder.next_response().unwrap() {
                                    break response;
                                }
                                let read = decoder.read_from(conn, 4096).unwrap();
                                assert!(read > 0, "server closed an active connection");
                            };
                            assert_eq!(response.status.0, 200);
                        }
                    }
                })
            })
            .collect();
        for driver in drivers {
            driver.join().expect("scaling driver succeeds");
        }
        let elapsed = start.elapsed();
        server.shutdown();
        elapsed
    };
    let one_loop_elapsed = scale_run(1);
    let four_loop_elapsed = scale_run(4);
    worker.shutdown();

    let scaling_requests = (scaling_connections * SCALING_ROUNDS) as f64;
    let mut report = Report::new(
        "Network: loopback TCP serving throughput on epoll event loops",
        &format!(
            "sync /v1/invoke echoes of {PAYLOAD_BYTES} B over 127.0.0.1, {EVENT_LOOPS} event \
             loops, 4-core worker, native isolation; few-connection modes: {CLIENTS} clients x \
             {REQUESTS_PER_CLIENT}; high-connection mode: {IDLE_CONNECTIONS} idle keep-alive \
             connections held open while {ACTIVE_CLIENTS} clients x {REQUESTS_PER_ACTIVE} drive \
             load; scaling modes: {scaling_connections} active keep-alive connections each \
             issuing {SCALING_ROUNDS} batched /healthz rounds against 1 and 4 event loops \
             (sharded SO_REUSEPORT accept, edge-triggered registrations, lock-free inboxes)"
        ),
    );
    report.header(&["mode", "wall time [ms]", "throughput [RPS]"]);
    for (mode, requests, elapsed) in [
        ("reconnect", few_requests, reconnect_elapsed),
        ("keep-alive", few_requests, keep_alive_elapsed),
        ("keep-alive + 2000 idle", high_requests, high_conn_elapsed),
        ("10k active, 1 loop", scaling_requests, one_loop_elapsed),
        ("10k active, 4 loops", scaling_requests, four_loop_elapsed),
    ] {
        report.row(vec![
            mode.into(),
            format!("{:.1}", elapsed.as_secs_f64() * 1e3),
            format!("{:.0}", requests / elapsed.as_secs_f64().max(1e-9)),
        ]);
    }
    report.note(&format!(
        "keep-alive is {:.2}x reconnect; with {IDLE_CONNECTIONS} idle connections parked on \
         the same {EVENT_LOOPS} loops, active throughput stays at {:.2}x the few-connection \
         case — idle keep-alives cost memory, not threads; under {scaling_connections} active \
         connections, 4 loops serve {:.2}x the single-loop RPS on {} available cores (loop \
         scaling needs cores to scale onto)",
        reconnect_elapsed.as_secs_f64() / keep_alive_elapsed.as_secs_f64().max(1e-9),
        (high_requests / high_conn_elapsed.as_secs_f64().max(1e-9))
            / (few_requests / keep_alive_elapsed.as_secs_f64()).max(1e-9),
        one_loop_elapsed.as_secs_f64() / four_loop_elapsed.as_secs_f64().max(1e-9),
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    ));
    report
}

/// Repo-only experiment: horizontal scaling through the cluster gateway.
/// The same closed-loop workload — 24 keep-alive clients issuing
/// synchronous `/v1/invoke` requests spread over several shard
/// compositions — is pushed through one gateway twice: first with a single
/// member node behind it, then with three. Every member is deliberately
/// small (one compute core) and every invocation burns ~1 ms of service
/// time, so a member saturates quickly and the only way to serve the load
/// faster is to route it across more nodes. The multiple composition names
/// exercise the router's per-composition affinity (each shard sticks to a
/// stable member, spreading the set across the table) and the load-spill
/// path when a shard's preferred member runs hot.
pub fn cluster() -> Report {
    use dandelion_common::config::{IsolationKind, WorkerConfig};
    use dandelion_core::worker::{default_test_services, WorkerNode};
    use dandelion_core::Frontend;
    use dandelion_http::HttpRequest;
    use dandelion_isolation::{FunctionArtifact, FunctionCtx};
    use dandelion_server::{GatewayConfig, HttpClientConnection, Router, Server, ServerConfig};

    const EVENT_LOOPS: usize = 2;
    const CLIENTS: usize = 24;
    const REQUESTS_PER_CLIENT: usize = 120;
    const SHARDS: usize = 12;
    const PAYLOAD_BYTES: usize = 256;
    const SERVICE_TIME: Duration = Duration::from_millis(1);
    const WARMUP_PER_SHARD: usize = 5;

    // Client, gateway and member sockets all live in this one process.
    dandelion_server::sys::raise_nofile_limit(4 * 1024).expect("open-file limit raised");

    let start_member = || -> (Server, Arc<WorkerNode>) {
        let worker = WorkerNode::start_with_control(
            WorkerConfig {
                total_cores: 2,
                initial_communication_cores: 1,
                isolation: IsolationKind::Native,
                ..WorkerConfig::default()
            },
            default_test_services(),
            false,
        )
        .expect("member worker starts");
        worker
            .register_function(FunctionArtifact::new(
                "ClusterEcho",
                &["Out"],
                |ctx: &mut FunctionCtx| {
                    // ~1 ms of service time makes each single-compute-core
                    // member the bottleneck, not the serving layer.
                    std::thread::sleep(SERVICE_TIME);
                    let data = ctx.single_input("In")?.data.clone();
                    ctx.push_output("Out", dandelion_common::DataItem::new("echo", data))
                },
            ))
            .expect("function registers");
        for shard in 0..SHARDS {
            worker
                .register_composition_dsl(&format!(
                    "composition Shard{shard}(Input) => Output \
                     {{ ClusterEcho(In = all Input) => (Output = Out); }}"
                ))
                .expect("composition registers");
        }
        let server = Server::start(
            ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                event_loops: EVENT_LOOPS,
                read_timeout: Duration::from_secs(120),
                ..ServerConfig::default()
            },
            Arc::new(Frontend::new(Arc::clone(&worker))),
        )
        .expect("member server binds");
        (server, worker)
    };

    let measure = |member_count: usize| -> Duration {
        let members: Vec<_> = (0..member_count).map(|_| start_member()).collect();
        let router = Router::start(GatewayConfig::default());
        for (server, _) in &members {
            router.join(server.local_addr()).expect("member joins");
        }
        let gateway = Server::start_gateway(
            ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                event_loops: EVENT_LOOPS,
                max_connections: CLIENTS + 64,
                read_timeout: Duration::from_secs(120),
                ..ServerConfig::default()
            },
            Arc::clone(&router),
        )
        .expect("gateway binds");
        let addr = gateway.local_addr();

        let check = |response: &dandelion_http::HttpResponse| {
            assert_eq!(response.status.0, 200, "{}", response.body_text());
            assert_eq!(response.body.len(), PAYLOAD_BYTES);
        };

        // Warm every shard's route, the upstream pools and the members.
        {
            let mut connection =
                HttpClientConnection::connect(addr, Duration::from_secs(30)).unwrap();
            for _ in 0..WARMUP_PER_SHARD {
                for shard in 0..SHARDS {
                    let target = format!("/v1/invoke/Shard{shard}");
                    check(
                        &connection
                            .request(&HttpRequest::post(target, vec![0x5A; PAYLOAD_BYTES]))
                            .unwrap(),
                    );
                }
            }
        }

        let start = Instant::now();
        let clients: Vec<_> = (0..CLIENTS)
            .map(|client| {
                std::thread::spawn(move || {
                    let mut connection =
                        HttpClientConnection::connect(addr, Duration::from_secs(30)).unwrap();
                    let target = format!("/v1/invoke/Shard{}", client % SHARDS);
                    for _ in 0..REQUESTS_PER_CLIENT {
                        let response = connection
                            .request(&HttpRequest::post(
                                target.clone(),
                                vec![0x5A; PAYLOAD_BYTES],
                            ))
                            .unwrap();
                        check(&response);
                    }
                })
            })
            .collect();
        for client in clients {
            client.join().expect("load generator succeeds");
        }
        let elapsed = start.elapsed();

        let served = gateway.stats().requests;
        assert!(
            served as usize >= CLIENTS * REQUESTS_PER_CLIENT,
            "every measured request went through the gateway (got {served})"
        );
        assert!(gateway.shutdown(), "gateway drains cleanly");
        router.shutdown();
        for (server, worker) in members {
            server.shutdown();
            worker.shutdown();
        }
        elapsed
    };

    let single = measure(1);
    let triple = measure(3);
    let requests = (CLIENTS * REQUESTS_PER_CLIENT) as f64;

    let mut report = Report::new(
        "Cluster: gateway throughput scaling across member nodes",
        &format!(
            "sync /v1/invoke echoes of {PAYLOAD_BYTES} B with ~{} ms service time through one \
             gateway ({EVENT_LOOPS} event loops) over 127.0.0.1; {CLIENTS} keep-alive clients x \
             {REQUESTS_PER_CLIENT} requests spread over {SHARDS} shard compositions; members are \
             2-core workers (one compute core), native isolation",
            SERVICE_TIME.as_millis()
        ),
    );
    report.header(&["mode", "wall time [ms]", "throughput [RPS]"]);
    for (mode, elapsed) in [("1 member", single), ("3 members", triple)] {
        report.row(vec![
            mode.into(),
            format!("{:.1}", elapsed.as_secs_f64() * 1e3),
            format!("{:.0}", requests / elapsed.as_secs_f64().max(1e-9)),
        ]);
    }
    report.note(&format!(
        "3 members serve the same load {:.2}x faster than 1 — the gateway turns extra nodes \
         into throughput without clients changing a single URL",
        single.as_secs_f64() / triple.as_secs_f64().max(1e-9)
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_parse_roundtrip() {
        for id in ExperimentId::ALL {
            assert_eq!(ExperimentId::parse(id.name()), Some(id));
        }
        assert_eq!(ExperimentId::parse("nope"), None);
    }

    #[test]
    fn table1_report_matches_paper_totals() {
        let report = table1_sandbox_breakdown();
        let totals = report
            .rows
            .iter()
            .find(|row| row[0] == "Total")
            .expect("total row");
        let paper = report
            .rows
            .iter()
            .find(|row| row[0] == "Paper total")
            .expect("paper row");
        for (ours, theirs) in totals[1..].iter().zip(&paper[1..]) {
            let ours: f64 = ours.parse().unwrap();
            let theirs: f64 = theirs.parse().unwrap();
            assert!(
                (ours - theirs).abs() / theirs < 0.02,
                "modeled total {ours} deviates from paper {theirs}"
            );
        }
    }

    #[test]
    fn fig10_shows_large_memory_savings() {
        let report = fig10_azure_memory();
        let memory = report
            .rows
            .iter()
            .find(|row| row[0].starts_with("average committed"))
            .unwrap();
        let firecracker: f64 = memory[1].parse().unwrap();
        let dandelion: f64 = memory[2].parse().unwrap();
        assert!(
            dandelion < firecracker * 0.25,
            "expected >75% memory savings, got {dandelion} vs {firecracker}"
        );
    }

    #[test]
    fn data_plane_zero_copy_is_at_least_twice_as_fast() {
        let report = data_plane();
        let per_invocation_ms = |mode: &str| -> f64 {
            report
                .rows
                .iter()
                .find(|row| row[0] == mode)
                .expect("mode row present")[1]
                .parse()
                .unwrap()
        };
        let copy = per_invocation_ms("copy");
        let zero_copy = per_invocation_ms("zero-copy");
        assert!(
            copy >= 2.0 * zero_copy,
            "expected >=2x on >=1 MiB payloads, got copy {copy} ms vs zero-copy {zero_copy} ms"
        );
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "allocation-level speedups are only meaningful with optimizations; \
                  run with `cargo test --release -p dandelion-bench` (CI does)"
    )]
    fn small_invocations_pooled_path_is_at_least_twice_as_fast() {
        // Wall-clock microbenchmarks on shared runners are noisy; the
        // speedup is ~2.7x in steady state, so one retry absorbs a
        // noisy-neighbor measurement without weakening the >=2x contract.
        let mut last = (0.0, 0.0);
        for _attempt in 0..2 {
            let report = small_invocations();
            let rps = |mode: &str| -> f64 {
                report
                    .rows
                    .iter()
                    .find(|row| row[0] == mode)
                    .expect("mode row present")[2]
                    .parse()
                    .unwrap()
            };
            last = (rps("pooled-rope"), rps("vec-assembly"));
            if last.0 >= 2.0 * last.1 {
                return;
            }
        }
        let (pooled, vec_assembly) = last;
        panic!("expected >=2x RPS for the pooled/rope path, got {pooled} vs {vec_assembly}");
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "loopback RPS is only meaningful with optimizations; \
                  run with `cargo test --release -p dandelion-bench` (CI does)"
    )]
    fn network_keep_alive_sustains_loopback_throughput() {
        // The guard is deliberately far below steady-state loopback numbers
        // (tens of thousands of RPS on a laptop): it exists to catch the
        // serving layer falling off a cliff — per-request allocation storms,
        // accidental connection churn — not to benchmark the runner.
        const MIN_KEEP_ALIVE_RPS: f64 = 2_000.0;
        let mut last = 0.0;
        for _attempt in 0..2 {
            let report = network();
            let rps: f64 = report
                .rows
                .iter()
                .find(|row| row[0] == "keep-alive")
                .expect("keep-alive row present")[2]
                .parse()
                .unwrap();
            last = rps;
            if rps >= MIN_KEEP_ALIVE_RPS {
                return;
            }
        }
        panic!("expected >= {MIN_KEEP_ALIVE_RPS} RPS over loopback keep-alive, got {last}");
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "loopback RPS is only meaningful with optimizations; \
                  run with `cargo test --release -p dandelion-bench` (CI does)"
    )]
    fn network_throughput_survives_thousands_of_idle_connections() {
        // The scaling contract of the event-loop rewrite: parking 2000 idle
        // keep-alive connections must leave active throughput within 2x of
        // the few-connection case. A thread-per-connection regression fails
        // this immediately (the idle herd would pin every handler or be
        // refused outright). One retry absorbs noisy-neighbor runs.
        let mut last = (0.0, 0.0);
        for _attempt in 0..2 {
            let report = network();
            let rps = |mode: &str| -> f64 {
                report
                    .rows
                    .iter()
                    .find(|row| row[0] == mode)
                    .expect("mode row present")[2]
                    .parse()
                    .unwrap()
            };
            last = (rps("keep-alive + 2000 idle"), rps("keep-alive"));
            if last.0 * 2.0 >= last.1 {
                return;
            }
        }
        let (high, few) = last;
        panic!(
            "expected the 2000-idle-connection scenario within 2x of the few-connection \
             RPS, got {high} vs {few}"
        );
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "loop-scaling RPS is only meaningful with optimizations; \
                  run with `cargo test --release -p dandelion-bench` (CI does)"
    )]
    fn network_scaling_four_loops_outscale_one() {
        // The contract of the sharded-accept rewrite: with ~10k active
        // connections, 4 event loops (each with its own SO_REUSEPORT
        // listener, edge-triggered registrations and lock-free inbox) must
        // deliver >= 2x the RPS of a single loop. Loop scaling needs cores
        // to scale onto: below 6 (4 loops + client threads + kernel) the
        // full contract is physically unreachable, so small machines only
        // sanity-check that 4 loops do not *collapse* — the 2x guard runs
        // on CI-sized runners. One retry absorbs noisy neighbors.
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let mut last = (0.0, 0.0);
        for _attempt in 0..2 {
            let report = network();
            let rps = |mode: &str| -> f64 {
                report
                    .rows
                    .iter()
                    .find(|row| row[0] == mode)
                    .expect("mode row present")[2]
                    .parse()
                    .unwrap()
            };
            last = (rps("10k active, 4 loops"), rps("10k active, 1 loop"));
            if cores >= 6 && last.0 >= 2.0 * last.1 {
                return;
            }
            if cores < 6 && last.0 >= 0.4 * last.1 {
                println!(
                    "note: only {cores} cores available — loop-scaling contract (>= 2x) \
                     skipped, sanity floor (>= 0.4x) passed with {:.0} vs {:.0} RPS",
                    last.0, last.1
                );
                return;
            }
        }
        let (four, one) = last;
        if cores >= 6 {
            panic!("expected >= 2x RPS with 4 event loops under 10k active connections, got {four} vs {one}");
        }
        panic!(
            "4 event loops collapsed under 10k active connections on a {cores}-core machine: \
             {four} vs {one} RPS"
        );
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "cluster scaling RPS is only meaningful with optimizations; \
                  run with `cargo test --release -p dandelion-bench` (CI does)"
    )]
    fn cluster_three_members_outscale_one() {
        // The scaling contract of the gateway: with compute-bound members,
        // three nodes behind one front door must serve the same closed-loop
        // workload at >= 1.5x the single-member throughput. Perfect scaling
        // is ~3x; the margin leaves room for affinity imbalance across the
        // shard compositions and noisy shared runners, while still failing
        // hard if routing collapses onto one member. One retry absorbs a
        // noisy-neighbor measurement.
        let mut last = (0.0, 0.0);
        for _attempt in 0..2 {
            let report = cluster();
            let rps = |mode: &str| -> f64 {
                report
                    .rows
                    .iter()
                    .find(|row| row[0] == mode)
                    .expect("mode row present")[2]
                    .parse()
                    .unwrap()
            };
            last = (rps("3 members"), rps("1 member"));
            if last.0 >= 1.5 * last.1 {
                return;
            }
        }
        let (triple, single) = last;
        panic!("expected >= 1.5x RPS with 3 members behind the gateway, got {triple} vs {single}");
    }

    #[test]
    fn fig9_dandelion_is_cheaper_than_athena() {
        let report = fig9_ssb_queries();
        for row in &report.rows[1..] {
            let dandelion_cost: f64 = row[2].parse().unwrap();
            let athena_cost: f64 = row[4].parse().unwrap();
            assert!(dandelion_cost < athena_cost, "row {row:?}");
        }
    }
}
