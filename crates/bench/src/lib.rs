//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation.
//!
//! Each function in [`experiments`] reproduces one experiment and returns a
//! plain-text report (plus machine-readable series where useful). The
//! `reproduce` binary runs them individually or all together; the Criterion
//! benches under `benches/` wrap the latency-critical paths of the same
//! experiments.
//!
//! Absolute numbers are not expected to match the paper — the baselines are
//! calibrated queueing models and the hardware differs — but the *shape* of
//! every result (orderings, crossovers, relative factors) is asserted in the
//! workspace test suites and summarized in `EXPERIMENTS.md`.

pub mod experiments;
pub mod report;

pub use experiments::{run_experiment, ExperimentId};
pub use report::Report;
