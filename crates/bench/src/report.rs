//! Report formatting for the experiment harness.

use std::fmt;

/// A plain-text experiment report with optional machine-readable series.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment title (e.g. `"Figure 5: sandbox creation"`).
    pub title: String,
    /// Free-form description of workload and parameters.
    pub setup: String,
    /// Table rows: the first row is treated as the header.
    pub rows: Vec<Vec<String>>,
    /// Comparison notes against the paper's reported numbers.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report with a title and setup description.
    pub fn new(title: &str, setup: &str) -> Self {
        Self {
            title: title.to_string(),
            setup: setup.to_string(),
            ..Self::default()
        }
    }

    /// Adds the header row.
    pub fn header(&mut self, columns: &[&str]) -> &mut Self {
        self.rows
            .insert(0, columns.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Adds a data row.
    pub fn row(&mut self, columns: Vec<String>) -> &mut Self {
        self.rows.push(columns);
        self
    }

    /// Adds a paper-comparison note.
    pub fn note(&mut self, note: &str) -> &mut Self {
        self.notes.push(note.to_string());
        self
    }

    /// Serializes the rows as a JSON array of arrays (used by `reproduce
    /// --json`).
    pub fn rows_json(&self) -> dandelion_common::JsonValue {
        dandelion_common::JsonValue::array(self.rows.iter().map(|row| {
            dandelion_common::JsonValue::array(
                row.iter()
                    .map(|cell| dandelion_common::JsonValue::string(cell.clone())),
            )
        }))
    }

    /// Serializes the whole report (title, setup, rows, notes) as a JSON
    /// document — the format of the `BENCH_<experiment>.json` baselines
    /// written by `reproduce --save`.
    pub fn to_json(&self) -> dandelion_common::JsonValue {
        dandelion_common::JsonValue::object([
            (
                "title",
                dandelion_common::JsonValue::string(self.title.clone()),
            ),
            (
                "setup",
                dandelion_common::JsonValue::string(self.setup.clone()),
            ),
            ("rows", self.rows_json()),
            (
                "notes",
                dandelion_common::JsonValue::array(
                    self.notes
                        .iter()
                        .map(|note| dandelion_common::JsonValue::string(note.clone())),
                ),
            ),
        ])
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} ===", self.title)?;
        writeln!(f, "{}", self.setup)?;
        if !self.rows.is_empty() {
            // Compute column widths for alignment.
            let columns = self.rows.iter().map(Vec::len).max().unwrap_or(0);
            let mut widths = vec![0usize; columns];
            for row in &self.rows {
                for (index, cell) in row.iter().enumerate() {
                    widths[index] = widths[index].max(cell.len());
                }
            }
            for (row_index, row) in self.rows.iter().enumerate() {
                let line: Vec<String> = row
                    .iter()
                    .enumerate()
                    .map(|(index, cell)| format!("{cell:>width$}", width = widths[index]))
                    .collect();
                writeln!(f, "  {}", line.join("  "))?;
                if row_index == 0 {
                    let divider: Vec<String> =
                        widths.iter().map(|width| "-".repeat(*width)).collect();
                    writeln!(f, "  {}", divider.join("  "))?;
                }
            }
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_aligned_table() {
        let mut report = Report::new("Table X", "demo");
        report.header(&["backend", "latency"]);
        report.row(vec!["cheri".into(), "89".into()]);
        report.row(vec!["kvm".into(), "889".into()]);
        report.note("matches Table 1");
        let text = report.to_string();
        assert!(text.contains("=== Table X ==="));
        assert!(text.contains("backend"));
        assert!(text.contains("note: matches Table 1"));
        assert_eq!(report.rows_json().as_array().unwrap().len(), 3);
    }
}
