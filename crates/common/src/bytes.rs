//! `SharedBytes`: a cheaply cloneable, sliceable view of immutable bytes.
//!
//! The zero-copy data plane threads one type through every layer that moves
//! payloads: a reference-counted buffer plus an `(offset, len)` window, in
//! the style of the `bytes` crate (vendored crates only — so implemented
//! here). Cloning and slicing never copy; the underlying allocation is freed
//! when the last view drops. Composition edges, HTTP bodies and the memory
//! contexts of the isolation layer all hand out `SharedBytes` views of the
//! producer's buffer instead of copying payloads at each boundary.
//!
//! The type dereferences to `[u8]`, so read-only call sites written against
//! byte slices keep working unchanged.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::{Arc, OnceLock};

/// An immutable, reference-counted byte buffer view.
///
/// `clone` is an `Arc` bump; [`SharedBytes::slice`] produces a narrower view
/// of the same allocation. Equality and hashing are by content, so the type
/// is a drop-in replacement for `Vec<u8>` payload fields.
#[derive(Clone)]
pub struct SharedBytes {
    buf: Arc<Vec<u8>>,
    offset: usize,
    len: usize,
}

/// The process-wide buffer behind every empty view, so constructing empty
/// messages and items stays allocation-free.
fn empty_buf() -> Arc<Vec<u8>> {
    static EMPTY: OnceLock<Arc<Vec<u8>>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::new())))
}

impl SharedBytes {
    /// An empty view (no allocation; all empty views share one static
    /// buffer).
    pub fn new() -> Self {
        Self {
            buf: empty_buf(),
            offset: 0,
            len: 0,
        }
    }

    /// Wraps an owned vector without copying it.
    pub fn from_vec(data: Vec<u8>) -> Self {
        if data.is_empty() {
            return Self::new();
        }
        let len = data.len();
        Self {
            buf: Arc::new(data),
            offset: 0,
            len,
        }
    }

    /// Copies a slice into a fresh buffer (the one constructor that copies).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from_vec(data.to_vec())
    }

    /// Number of visible bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The visible bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.offset..self.offset + self.len]
    }

    /// A zero-copy sub-view of this view.
    ///
    /// The range is interpreted relative to this view (not the underlying
    /// buffer) and must lie within it.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds, mirroring slice indexing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> SharedBytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice range {start}..{end} out of bounds for SharedBytes of length {}",
            self.len
        );
        SharedBytes {
            buf: Arc::clone(&self.buf),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// Splits the view in two at `at`, both halves sharing the buffer.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_at(&self, at: usize) -> (SharedBytes, SharedBytes) {
        (self.slice(..at), self.slice(at..))
    }

    /// Returns `true` when both views share the same underlying allocation
    /// (regardless of their windows). This is the observable "no copy
    /// happened" invariant the integration tests assert across composition
    /// edges.
    pub fn same_buffer(a: &SharedBytes, b: &SharedBytes) -> bool {
        Arc::ptr_eq(&a.buf, &b.buf)
    }

    /// Zero-copy merge of two adjacent views of the same buffer.
    ///
    /// Returns `None` when the views come from different allocations or are
    /// not contiguous (`self` must end exactly where `other` starts); callers
    /// fall back to copying in that case.
    pub fn try_merge(&self, other: &SharedBytes) -> Option<SharedBytes> {
        if !SharedBytes::same_buffer(self, other) || self.offset + self.len != other.offset {
            return None;
        }
        Some(SharedBytes {
            buf: Arc::clone(&self.buf),
            offset: self.offset,
            len: self.len + other.len,
        })
    }

    /// The view's start offset within the underlying buffer (diagnostics and
    /// tests).
    pub fn offset_in_buffer(&self) -> usize {
        self.offset
    }

    /// Length of the underlying buffer this view references. Equal to
    /// [`SharedBytes::len`] only when the view covers its whole allocation —
    /// a larger value means holding this view pins extra bytes.
    pub fn backing_len(&self) -> usize {
        self.buf.len()
    }

    /// Returns a view that does not pin bytes outside its window: the view
    /// itself when it already covers its whole allocation, otherwise a
    /// fresh copy of the visible bytes.
    ///
    /// Long-lived stores (e.g. the object store) compact before retaining
    /// so that a small slice of a large producer buffer does not keep the
    /// whole allocation alive indefinitely.
    pub fn compact(&self) -> SharedBytes {
        if self.len == self.buf.len() {
            self.clone()
        } else {
            SharedBytes::copy_from_slice(self.as_slice())
        }
    }

    /// Extracts an owned vector.
    ///
    /// When this view is the sole reference to the buffer and covers it
    /// entirely the vector is moved out without copying; otherwise the
    /// visible bytes are copied.
    pub fn into_vec(self) -> Vec<u8> {
        self.try_unwrap_whole()
            .unwrap_or_else(|shared| shared.as_slice().to_vec())
    }

    /// Hands back the underlying allocation for adoption by another owner
    /// (e.g. a memory context unfreezing after an export), if this view is
    /// the sole reference and covers the whole buffer. Returns the view
    /// unchanged otherwise, so callers can fall back to copying.
    pub fn try_unwrap_whole(mut self) -> Result<Vec<u8>, SharedBytes> {
        if self.offset != 0 || self.len != self.buf.len() {
            return Err(self);
        }
        // Detach the buffer before `self` drops, so the drop glue sees the
        // (shared, empty) sentinel instead of double-handling the
        // allocation.
        let buf = std::mem::replace(&mut self.buf, empty_buf());
        match Arc::try_unwrap(buf) {
            Ok(vec) => Ok(vec),
            Err(buf) => {
                let offset = self.offset;
                let len = self.len;
                // Restore the original buffer into a fresh view (`self`
                // still drops its sentinel harmlessly).
                Err(SharedBytes { buf, offset, len })
            }
        }
    }
}

impl Drop for SharedBytes {
    /// The last view of a buffer recycles the allocation into the global
    /// [`BufferPool`](crate::pool::BufferPool) instead of freeing it.
    ///
    /// This closes the pooling loop for frozen builders and exported
    /// context regions: a descriptor frame or HTTP head built in a pooled
    /// buffer, frozen, shipped through the data plane and finally dropped
    /// flows back to the pool for the next invocation. Buffers whose
    /// capacity matches no pool class (or whose class is full) are freed
    /// normally.
    fn drop(&mut self) {
        // `get_mut` succeeds only for the sole remaining reference, so at
        // most one view ever reclaims a given buffer.
        if let Some(vec) = Arc::get_mut(&mut self.buf) {
            if vec.capacity() > 0 {
                crate::pool::BufferPool::global().recycle_vec(std::mem::take(vec));
            }
        }
    }
}

impl Default for SharedBytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for SharedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for SharedBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for SharedBytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedBytes({} bytes)", self.len)
    }
}

impl PartialEq for SharedBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SharedBytes {}

impl Hash for SharedBytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for SharedBytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for SharedBytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for SharedBytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for SharedBytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for SharedBytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<SharedBytes> for Vec<u8> {
    fn eq(&self, other: &SharedBytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<u8>> for SharedBytes {
    fn from(data: Vec<u8>) -> Self {
        Self::from_vec(data)
    }
}

impl From<&[u8]> for SharedBytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

impl<const N: usize> From<[u8; N]> for SharedBytes {
    fn from(data: [u8; N]) -> Self {
        Self::from_vec(data.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for SharedBytes {
    fn from(data: &[u8; N]) -> Self {
        Self::copy_from_slice(data)
    }
}

impl From<String> for SharedBytes {
    fn from(text: String) -> Self {
        Self::from_vec(text.into_bytes())
    }
}

impl From<&str> for SharedBytes {
    fn from(text: &str) -> Self {
        Self::copy_from_slice(text.as_bytes())
    }
}

impl FromIterator<u8> for SharedBytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from_vec(iter.into_iter().collect())
    }
}

/// An append-only builder that freezes into a [`SharedBytes`] without
/// copying.
///
/// This is the write side of the zero-copy data plane: hot-path
/// serializers (HTTP heads, output-descriptor frames) assemble their bytes
/// here and [`freeze`](SharedBytesMut::freeze) the result — the heap
/// allocation moves into the `SharedBytes` unchanged, so building a payload
/// costs exactly one buffer for its whole lifetime. Builders created with
/// [`SharedBytesMut::with_capacity`] draw that buffer from the global
/// [`BufferPool`](crate::pool::BufferPool), and a builder dropped without
/// freezing returns it there, so steady-state construction does not touch
/// the global allocator at all.
///
/// The builder implements [`std::fmt::Write`], so `write!` formats numbers
/// and the like straight into the buffer with no intermediate `String`.
#[derive(Debug, Default)]
pub struct SharedBytesMut {
    buf: Vec<u8>,
}

impl SharedBytesMut {
    /// Creates an empty builder with no buffer yet.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Creates a builder whose buffer comes from the global buffer pool
    /// (falling back to a plain allocation for oversized capacities).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: crate::pool::BufferPool::global().acquire_vec(capacity),
        }
    }

    /// Wraps an existing vector, keeping its contents.
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Self { buf }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Capacity of the underlying buffer.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// The written bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Appends a byte slice.
    pub fn put_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, byte: u8) {
        self.buf.push(byte);
    }

    /// Appends a `u32` in little-endian order (the descriptor wire order).
    pub fn put_u32_le(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends the decimal representation of `value` without allocating.
    pub fn put_decimal(&mut self, value: usize) {
        let mut digits = [0u8; 20];
        let mut cursor = digits.len();
        let mut rest = value;
        loop {
            cursor -= 1;
            digits[cursor] = b'0' + (rest % 10) as u8;
            rest /= 10;
            if rest == 0 {
                break;
            }
        }
        self.buf.extend_from_slice(&digits[cursor..]);
    }

    /// Appends UTF-8 text.
    pub fn put_str(&mut self, text: &str) {
        self.buf.extend_from_slice(text.as_bytes());
    }

    /// Discards the contents, keeping the buffer for reuse.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Reads up to `max_bytes` from `reader` straight into this builder's
    /// buffer, appending after the bytes already written. Returns the number
    /// of bytes read (`0` at end of stream).
    ///
    /// This is the socket receive path of the network server: the connection
    /// handler reads into a pooled builder, freezes it once a request is
    /// complete, and the parsed request's body is a zero-copy view of the
    /// very buffer the kernel copied into.
    pub fn read_from<R: std::io::Read>(
        &mut self,
        reader: &mut R,
        max_bytes: usize,
    ) -> std::io::Result<usize> {
        let len = self.buf.len();
        // Zero-fill the landing area (no unsafe set_len); the cost is one
        // memset per read, dwarfed by the syscall it precedes.
        self.buf.resize(len + max_bytes, 0);
        let result = reader.read(&mut self.buf[len..]);
        self.buf
            .truncate(len + result.as_ref().copied().unwrap_or(0));
        result
    }

    /// Freezes the builder into an immutable [`SharedBytes`].
    ///
    /// The heap allocation is moved, not copied: the frozen view's bytes
    /// live at the same address the builder wrote them to (the freeze
    /// identity the property tests assert).
    pub fn freeze(mut self) -> SharedBytes {
        SharedBytes::from_vec(std::mem::take(&mut self.buf))
    }
}

impl Clone for SharedBytesMut {
    /// Cloning copies the written bytes into a fresh pooled buffer (the
    /// builder is the mutable stage of a payload; sharing starts at
    /// [`SharedBytesMut::freeze`]).
    fn clone(&self) -> Self {
        let mut copy = SharedBytesMut::with_capacity(self.len());
        copy.put_slice(self.as_slice());
        copy
    }
}

impl Drop for SharedBytesMut {
    fn drop(&mut self) {
        // A builder dropped without freezing returns its buffer to the pool
        // (freeze leaves a zero-capacity vec behind, which recycle ignores).
        crate::pool::BufferPool::global().recycle_vec(std::mem::take(&mut self.buf));
    }
}

impl std::fmt::Write for SharedBytesMut {
    fn write_str(&mut self, text: &str) -> std::fmt::Result {
        self.put_str(text);
        Ok(())
    }
}

impl std::ops::Deref for SharedBytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_views() {
        let bytes = SharedBytes::from_vec(b"hello world".to_vec());
        assert_eq!(bytes.len(), 11);
        assert_eq!(&bytes[..5], b"hello");
        let world = bytes.slice(6..);
        assert_eq!(world.as_slice(), b"world");
        assert_eq!(world.offset_in_buffer(), 6);
        assert!(SharedBytes::same_buffer(&bytes, &world));
    }

    #[test]
    fn clone_is_zero_copy() {
        let a = SharedBytes::from_vec(vec![7u8; 1024]);
        let b = a.clone();
        assert!(SharedBytes::same_buffer(&a, &b));
        assert_eq!(a, b);
    }

    #[test]
    fn slice_of_slice_composes() {
        let bytes = SharedBytes::from_vec((0u8..=99).collect());
        let mid = bytes.slice(10..90);
        let inner = mid.slice(5..10);
        assert_eq!(inner.as_slice(), &[15, 16, 17, 18, 19]);
        assert!(SharedBytes::same_buffer(&bytes, &inner));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        SharedBytes::from_vec(vec![1, 2, 3]).slice(1..5);
    }

    #[test]
    fn split_and_merge_roundtrip() {
        let bytes = SharedBytes::from_vec(b"abcdef".to_vec());
        let (left, right) = bytes.split_at(2);
        assert_eq!(left.as_slice(), b"ab");
        assert_eq!(right.as_slice(), b"cdef");
        let merged = left.try_merge(&right).expect("adjacent views merge");
        assert_eq!(merged, bytes);
        assert!(SharedBytes::same_buffer(&merged, &bytes));
        // Non-adjacent and cross-buffer merges are refused.
        assert!(right.try_merge(&left).is_none());
        let other = SharedBytes::from_vec(b"ab".to_vec());
        assert!(other.try_merge(&right).is_none());
    }

    #[test]
    fn compact_drops_the_parent_buffer() {
        let big = SharedBytes::from_vec(vec![9u8; 4096]);
        let slice = big.slice(10..20);
        assert_eq!(slice.backing_len(), 4096);
        let compacted = slice.compact();
        assert_eq!(compacted, slice);
        assert_eq!(compacted.backing_len(), 10);
        assert!(!SharedBytes::same_buffer(&compacted, &big));
        // A whole-buffer view compacts to itself without copying.
        let whole = big.compact();
        assert!(SharedBytes::same_buffer(&whole, &big));
    }

    #[test]
    fn into_vec_moves_when_unique() {
        let bytes = SharedBytes::from_vec(b"payload".to_vec());
        assert_eq!(bytes.into_vec(), b"payload");
        let shared = SharedBytes::from_vec(b"payload".to_vec());
        let view = shared.slice(1..4);
        assert_eq!(view.into_vec(), b"ayl");
    }

    #[test]
    fn equality_against_slices_and_vecs() {
        let bytes = SharedBytes::from(b"xyz");
        assert_eq!(bytes, b"xyz");
        assert_eq!(bytes, *b"xyz");
        assert_eq!(bytes, b"xyz".to_vec());
        assert_eq!(bytes, &b"xyz"[..]);
        assert_ne!(bytes, b"xy");
    }

    #[test]
    fn conversions() {
        assert_eq!(SharedBytes::from("text").as_slice(), b"text");
        assert_eq!(SharedBytes::from("text".to_string()).as_slice(), b"text");
        assert_eq!(SharedBytes::from(vec![1u8, 2]).as_slice(), &[1, 2]);
        let collected: SharedBytes = (1u8..=3).collect();
        assert_eq!(collected.as_slice(), &[1, 2, 3]);
        assert!(SharedBytes::default().is_empty());
    }

    #[test]
    fn builder_freeze_moves_the_allocation() {
        let mut builder = SharedBytesMut::with_capacity(64);
        builder.put_str("head ");
        builder.put_decimal(12345);
        builder.put_u8(b'!');
        builder.put_u32_le(0xDEAD_BEEF);
        let written_ptr = builder.as_slice().as_ptr();
        let frozen = builder.freeze();
        assert_eq!(&frozen[..11], b"head 12345!");
        assert_eq!(&frozen[11..], &0xDEAD_BEEFu32.to_le_bytes());
        // Freeze identity: the bytes were not copied.
        assert_eq!(frozen.as_slice().as_ptr(), written_ptr);
    }

    #[test]
    fn builder_formats_without_allocating_strings() {
        use std::fmt::Write;
        let mut builder = SharedBytesMut::new();
        write!(builder, "Content-Length: {}\r\n", 42).unwrap();
        assert_eq!(builder.as_slice(), b"Content-Length: 42\r\n");
        builder.clear();
        assert!(builder.is_empty());
        builder.put_decimal(0);
        assert_eq!(builder.freeze(), b"0");
    }

    #[test]
    fn read_from_appends_and_reports_eof() {
        let mut builder = SharedBytesMut::with_capacity(32);
        builder.put_str("head:");
        let mut source: &[u8] = b"socket payload";
        assert_eq!(builder.read_from(&mut source, 6).unwrap(), 6);
        assert_eq!(builder.as_slice(), b"head:socket");
        assert_eq!(builder.read_from(&mut source, 64).unwrap(), 8);
        assert_eq!(builder.as_slice(), b"head:socket payload");
        // End of stream reads zero bytes and leaves the buffer untouched.
        assert_eq!(builder.read_from(&mut source, 64).unwrap(), 0);
        assert_eq!(builder.len(), 19);
    }

    #[test]
    fn empty_views_share_one_static_buffer() {
        let a = SharedBytes::new();
        let b = SharedBytes::from_vec(Vec::new());
        let c = SharedBytes::default();
        assert!(SharedBytes::same_buffer(&a, &b));
        assert!(SharedBytes::same_buffer(&a, &c));
        assert!(a.is_empty());
    }
}
