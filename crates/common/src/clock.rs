//! Clock abstraction shared by the runtime and the simulator.
//!
//! All latency-bearing platform code takes a [`Clock`] so that the same
//! control logic (PI controller, autoscalers, sandbox lifecycles) can run
//! against the monotonic [`RealClock`] in the threaded runtime and against a
//! manually advanced [`VirtualClock`] in the discrete-event simulator.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source of monotonic time measured from an arbitrary epoch.
pub trait Clock: Send + Sync {
    /// Returns the time elapsed since the clock's epoch.
    fn now(&self) -> Duration;

    /// Returns the current time in whole nanoseconds since the epoch.
    fn now_nanos(&self) -> u64 {
        self.now().as_nanos() as u64
    }
}

/// Monotonic wall-clock time based on [`Instant`].
#[derive(Debug, Clone)]
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    /// Creates a clock whose epoch is the moment of construction.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }
}

/// A manually advanced clock used for deterministic simulation.
///
/// Cloning a `VirtualClock` yields a handle onto the same underlying time
/// value, so a simulator can advance time while model components observe it.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    nanos: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a virtual clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `delta`.
    pub fn advance(&self, delta: Duration) {
        self.nanos
            .fetch_add(delta.as_nanos() as u64, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute time since the epoch.
    ///
    /// The new time must not be earlier than the current time; moving
    /// backwards would break the monotonicity contract of [`Clock`].
    pub fn set(&self, now: Duration) {
        let target = now.as_nanos() as u64;
        let mut current = self.nanos.load(Ordering::SeqCst);
        loop {
            if target < current {
                // Never move backwards; keep the larger value.
                return;
            }
            match self
                .nanos
                .compare_exchange(current, target, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

/// A clock handle that can be either real or virtual.
///
/// This avoids trait objects in hot paths while still letting components be
/// constructed for either execution mode.
#[derive(Debug, Clone)]
pub enum SharedClock {
    /// Monotonic wall-clock time.
    Real(Arc<RealClock>),
    /// Simulated, manually advanced time.
    Virtual(VirtualClock),
}

impl SharedClock {
    /// Creates a real-time clock handle.
    pub fn real() -> Self {
        SharedClock::Real(Arc::new(RealClock::new()))
    }

    /// Creates a virtual clock handle starting at time zero.
    pub fn virtual_clock() -> Self {
        SharedClock::Virtual(VirtualClock::new())
    }

    /// Returns the underlying virtual clock if this handle is virtual.
    pub fn as_virtual(&self) -> Option<&VirtualClock> {
        match self {
            SharedClock::Virtual(clock) => Some(clock),
            SharedClock::Real(_) => None,
        }
    }
}

impl Clock for SharedClock {
    fn now(&self) -> Duration {
        match self {
            SharedClock::Real(clock) => clock.now(),
            SharedClock::Virtual(clock) => clock.now(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        let clock = RealClock::new();
        let first = clock.now();
        let second = clock.now();
        assert!(second >= first);
    }

    #[test]
    fn virtual_clock_advances_manually() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance(Duration::from_millis(5));
        assert_eq!(clock.now(), Duration::from_millis(5));
        clock.advance(Duration::from_micros(250));
        assert_eq!(clock.now(), Duration::from_micros(5250));
    }

    #[test]
    fn virtual_clock_set_never_moves_backwards() {
        let clock = VirtualClock::new();
        clock.set(Duration::from_secs(10));
        clock.set(Duration::from_secs(5));
        assert_eq!(clock.now(), Duration::from_secs(10));
        clock.set(Duration::from_secs(12));
        assert_eq!(clock.now(), Duration::from_secs(12));
    }

    #[test]
    fn cloned_virtual_clock_shares_time() {
        let clock = VirtualClock::new();
        let handle = clock.clone();
        clock.advance(Duration::from_secs(1));
        assert_eq!(handle.now(), Duration::from_secs(1));
    }

    #[test]
    fn shared_clock_dispatches() {
        let shared = SharedClock::virtual_clock();
        shared.as_virtual().unwrap().advance(Duration::from_secs(2));
        assert_eq!(shared.now(), Duration::from_secs(2));
        let real = SharedClock::real();
        assert!(real.as_virtual().is_none());
        let _ = real.now();
    }
}
