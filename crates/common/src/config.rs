//! Platform configuration shared by the runtime and the simulator.

use std::time::Duration;

use crate::MIB;

/// Which memory isolation mechanism a compute engine uses.
///
/// The paper implements four backends and shows that the platform design is
/// not tied to any particular one (§6.2). `Native` is a fifth, repo-only
/// backend that executes the function directly and is used as the functional
/// reference in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsolationKind {
    /// CHERI hybrid-capability isolation within a single address space.
    Cheri,
    /// Lightweight KVM virtual machine without a guest kernel.
    Kvm,
    /// Separate OS process with ptrace-based syscall interception.
    Process,
    /// rWasm: Wasm transpiled to safe Rust, isolation by the Rust compiler.
    Rwasm,
    /// Direct in-process execution (reference backend, not in the paper).
    Native,
}

impl IsolationKind {
    /// All backends evaluated in the paper.
    pub const PAPER_BACKENDS: [IsolationKind; 4] = [
        IsolationKind::Cheri,
        IsolationKind::Rwasm,
        IsolationKind::Process,
        IsolationKind::Kvm,
    ];

    /// Short lowercase name used in reports and plots.
    pub fn name(&self) -> &'static str {
        match self {
            IsolationKind::Cheri => "cheri",
            IsolationKind::Kvm => "kvm",
            IsolationKind::Process => "process",
            IsolationKind::Rwasm => "rwasm",
            IsolationKind::Native => "native",
        }
    }
}

impl std::fmt::Display for IsolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Engine type: compute engines run untrusted code, communication engines run
/// trusted I/O functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Executes untrusted compute functions in sandboxes, run-to-completion.
    Compute,
    /// Executes trusted communication functions cooperatively.
    Communication,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineKind::Compute => f.write_str("compute"),
            EngineKind::Communication => f.write_str("communication"),
        }
    }
}

/// Configuration of the PI controller that re-balances CPU cores between
/// compute and communication engines (paper §5, "Control plane").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Control interval; the paper uses 30 ms.
    pub interval: Duration,
    /// Proportional gain applied to the queue-growth error signal.
    pub proportional_gain: f64,
    /// Integral gain applied to the accumulated error.
    pub integral_gain: f64,
    /// Magnitude the control signal must exceed before a core moves.
    pub actuation_threshold: f64,
    /// Minimum number of cores that must remain assigned to each engine type.
    pub min_cores_per_kind: usize,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(30),
            proportional_gain: 0.6,
            integral_gain: 0.2,
            actuation_threshold: 1.0,
            min_cores_per_kind: 1,
        }
    }
}

/// Worker-node configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerConfig {
    /// Total CPU cores available to engines on this node.
    pub total_cores: usize,
    /// Cores initially assigned to communication engines.
    pub initial_communication_cores: usize,
    /// Isolation backend used by compute engines.
    pub isolation: IsolationKind,
    /// Default memory-context size when a function does not specify one.
    pub default_context_bytes: usize,
    /// Default compute-function timeout before preemption.
    pub function_timeout: Duration,
    /// Upper bound on queued tasks per engine type before back-pressure.
    pub queue_capacity: usize,
    /// PI controller parameters.
    pub controller: ControllerConfig,
    /// Fraction of invocations whose function binary must be loaded from
    /// disk rather than the in-memory cache (the paper uses 3%).
    pub binary_cold_load_ratio: f64,
    /// How many finished invocations the in-flight table retains for result
    /// polling before the oldest are expired.
    pub completed_retention: usize,
    /// Extra wall-clock beyond `function_timeout` an invocation may go
    /// without any instance completing before the dispatcher fails it
    /// (safety net against lost engine replies).
    pub engine_stall_grace: Duration,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self {
            total_cores: 16,
            initial_communication_cores: 2,
            isolation: IsolationKind::Process,
            default_context_bytes: 64 * MIB,
            function_timeout: Duration::from_secs(30),
            queue_capacity: 65_536,
            controller: ControllerConfig::default(),
            binary_cold_load_ratio: 0.03,
            completed_retention: 1024,
            engine_stall_grace: Duration::from_secs(30),
        }
    }
}

impl WorkerConfig {
    /// Validates the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.total_cores < 2 {
            return Err("a worker needs at least 2 cores (1 compute + 1 communication)".into());
        }
        if self.initial_communication_cores == 0
            || self.initial_communication_cores >= self.total_cores
        {
            return Err(format!(
                "initial_communication_cores must be in 1..{}",
                self.total_cores
            ));
        }
        if self.default_context_bytes == 0 {
            return Err("default_context_bytes must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.binary_cold_load_ratio) {
            return Err("binary_cold_load_ratio must be within [0, 1]".into());
        }
        if self.controller.min_cores_per_kind == 0 {
            return Err("controller.min_cores_per_kind must be at least 1".into());
        }
        if self.completed_retention == 0 {
            return Err("completed_retention must be at least 1".into());
        }
        Ok(())
    }

    /// Cores initially assigned to compute engines.
    pub fn initial_compute_cores(&self) -> usize {
        self.total_cores - self.initial_communication_cores
    }
}

/// Cluster-level configuration (multiple worker nodes, Dirigent-style).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Per-node configuration template.
    pub worker: WorkerConfig,
    /// Load balancing policy across nodes.
    pub load_balancing: LoadBalancing,
}

/// Load balancing policy used by the cluster manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadBalancing {
    /// Rotate through nodes in order.
    RoundRobin,
    /// Pick the node with the fewest in-flight invocations.
    LeastLoaded,
    /// Hash the composition name to a node (improves binary cache locality).
    CompositionAffinity,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            nodes: 1,
            worker: WorkerConfig::default(),
            load_balancing: LoadBalancing::LeastLoaded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_worker_config_is_valid() {
        let config = WorkerConfig::default();
        assert!(config.validate().is_ok());
        assert_eq!(config.initial_compute_cores(), 14);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut config = WorkerConfig {
            total_cores: 1,
            ..WorkerConfig::default()
        };
        assert!(config.validate().is_err());

        config.total_cores = 8;
        config.initial_communication_cores = 8;
        assert!(config.validate().is_err());

        config.initial_communication_cores = 2;
        config.binary_cold_load_ratio = 1.5;
        assert!(config.validate().is_err());

        config.binary_cold_load_ratio = 0.03;
        config.default_context_bytes = 0;
        assert!(config.validate().is_err());
    }

    #[test]
    fn isolation_kind_names_are_stable() {
        assert_eq!(IsolationKind::Cheri.name(), "cheri");
        assert_eq!(IsolationKind::Kvm.to_string(), "kvm");
        assert_eq!(IsolationKind::PAPER_BACKENDS.len(), 4);
    }

    #[test]
    fn controller_defaults_match_paper() {
        let controller = ControllerConfig::default();
        assert_eq!(controller.interval, Duration::from_millis(30));
        assert!(controller.min_cores_per_kind >= 1);
    }

    #[test]
    fn engine_kind_display() {
        assert_eq!(EngineKind::Compute.to_string(), "compute");
        assert_eq!(EngineKind::Communication.to_string(), "communication");
    }
}
