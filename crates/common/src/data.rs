//! The value model passed between Dandelion functions.
//!
//! A function consumes a list of named *input sets* and produces a list of
//! named *output sets*. Each set contains zero or more [`DataItem`]s. Items
//! carry an optional string key that is only used by the `key` distribution
//! keyword of the composition DSL to group items onto function instances.

use std::collections::BTreeMap;
use std::fmt;

use crate::bytes::SharedBytes;

/// A single immutable data item inside a [`DataSet`].
///
/// Item payloads are [`SharedBytes`] views, so fan-out edges (`each`), `key`
/// grouping and composition edges hand the same underlying buffer to many
/// function instances without copying; cloning an item never copies payload
/// bytes.
#[derive(Clone, PartialEq, Eq)]
pub struct DataItem {
    /// Optional grouping key, set by the producing function.
    pub key: Option<String>,
    /// Item name (the "file name" inside the set "folder").
    pub name: String,
    /// The payload bytes (a zero-copy view).
    pub data: SharedBytes,
}

impl DataItem {
    /// Creates an item with a name and payload and no key.
    pub fn new(name: impl Into<String>, data: impl Into<SharedBytes>) -> Self {
        Self {
            key: None,
            name: name.into(),
            data: data.into(),
        }
    }

    /// Creates an item carrying a grouping key.
    pub fn with_key(
        name: impl Into<String>,
        key: impl Into<String>,
        data: impl Into<SharedBytes>,
    ) -> Self {
        Self {
            key: Some(key.into()),
            name: name.into(),
            data: data.into(),
        }
    }

    /// Returns the payload as a UTF-8 string if it is valid UTF-8.
    pub fn as_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.data).ok()
    }

    /// Returns the payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl fmt::Debug for DataItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DataItem")
            .field("name", &self.name)
            .field("key", &self.key)
            .field("len", &self.data.len())
            .finish()
    }
}

/// A named collection of [`DataItem`]s.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DataSet {
    /// The set name as declared by the function signature.
    pub name: String,
    /// The items in the set, in production order.
    pub items: Vec<DataItem>,
}

impl DataSet {
    /// Creates an empty set with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            items: Vec::new(),
        }
    }

    /// Creates a set from existing items.
    pub fn with_items(name: impl Into<String>, items: Vec<DataItem>) -> Self {
        Self {
            name: name.into(),
            items,
        }
    }

    /// Creates a set holding a single unnamed item containing `data`.
    pub fn single(name: impl Into<String>, data: impl Into<SharedBytes>) -> Self {
        let name = name.into();
        let item = DataItem::new(format!("{name}.0"), data);
        Self {
            name,
            items: vec![item],
        }
    }

    /// Adds an item to the set.
    pub fn push(&mut self, item: DataItem) {
        self.items.push(item);
    }

    /// Returns the number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the set contains no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total payload bytes across all items.
    pub fn total_bytes(&self) -> usize {
        self.items.iter().map(DataItem::len).sum()
    }

    /// Returns the first item, if any. Convenient for single-item sets.
    pub fn first(&self) -> Option<&DataItem> {
        self.items.first()
    }

    /// Groups the items by their key.
    ///
    /// Items without a key are grouped under the empty string. The result is
    /// ordered by key so that scheduling is deterministic.
    pub fn group_by_key(&self) -> BTreeMap<String, Vec<DataItem>> {
        let mut groups: BTreeMap<String, Vec<DataItem>> = BTreeMap::new();
        for item in &self.items {
            let key = item.key.clone().unwrap_or_default();
            groups.entry(key).or_default().push(item.clone());
        }
        groups
    }
}

/// A list of data sets, the unit of function input and output.
pub type SetList = Vec<DataSet>;

/// Looks up a set by name in a [`SetList`].
pub fn find_set<'a>(sets: &'a [DataSet], name: &str) -> Option<&'a DataSet> {
    sets.iter().find(|set| set.name == name)
}

/// Total number of payload bytes across a [`SetList`].
pub fn total_bytes(sets: &[DataSet]) -> usize {
    sets.iter().map(DataSet::total_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_constructors() {
        let item = DataItem::new("logs.txt", b"hello".to_vec());
        assert_eq!(item.name, "logs.txt");
        assert_eq!(item.as_str(), Some("hello"));
        assert_eq!(item.len(), 5);
        assert!(!item.is_empty());

        let keyed = DataItem::with_key("part", "eu-west", vec![0xFF, 0xFE, 0xFD]);
        assert_eq!(keyed.key.as_deref(), Some("eu-west"));
        assert_eq!(keyed.as_str(), None);
    }

    #[test]
    fn set_accumulates_items() {
        let mut set = DataSet::new("responses");
        assert!(set.is_empty());
        set.push(DataItem::new("a", b"xx".to_vec()));
        set.push(DataItem::new("b", b"yyy".to_vec()));
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_bytes(), 5);
        assert_eq!(set.first().unwrap().name, "a");
    }

    #[test]
    fn single_creates_one_item() {
        let set = DataSet::single("request", b"GET /".to_vec());
        assert_eq!(set.len(), 1);
        assert_eq!(set.items[0].name, "request.0");
    }

    #[test]
    fn group_by_key_orders_groups() {
        let set = DataSet::with_items(
            "parts",
            vec![
                DataItem::with_key("a", "k2", vec![1]),
                DataItem::with_key("b", "k1", vec![2]),
                DataItem::with_key("c", "k1", vec![3]),
                DataItem::new("d", vec![4]),
            ],
        );
        let groups = set.group_by_key();
        let keys: Vec<&String> = groups.keys().collect();
        assert_eq!(keys, ["", "k1", "k2"]);
        assert_eq!(groups["k1"].len(), 2);
    }

    #[test]
    fn set_list_helpers() {
        let sets = vec![
            DataSet::single("a", vec![0u8; 10]),
            DataSet::single("b", vec![0u8; 20]),
        ];
        assert_eq!(total_bytes(&sets), 30);
        assert!(find_set(&sets, "b").is_some());
        assert!(find_set(&sets, "missing").is_none());
    }
}
