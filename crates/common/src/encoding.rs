//! Base64 encoding for binary payloads in JSON documents.
//!
//! The v1 HTTP API returns invocation outputs inside JSON status documents;
//! output items are arbitrary bytes, so they are carried as standard base64
//! (RFC 4648, with padding). Implemented here because the workspace builds
//! fully offline.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// How many input bytes each streaming write covers. 48 input bytes encode
/// to a 64-character stack buffer, keeping the formatter call count low
/// without any heap allocation.
const STREAM_CHUNK_BYTES: usize = 48;

/// Encodes bytes as standard base64 with padding.
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    base64_encode_into(&mut out, data).expect("writing to a String cannot fail");
    out
}

/// Streams base64 straight into a [`std::fmt::Write`] sink.
///
/// This is the allocation-free path the JSON encoder uses to serialize
/// binary payloads: output items stream from their [`crate::SharedBytes`]
/// slices into the response body without an intermediate `String` per item.
pub fn base64_encode_into(out: &mut impl std::fmt::Write, data: &[u8]) -> std::fmt::Result {
    let mut encoded = [0u8; STREAM_CHUNK_BYTES / 3 * 4];
    for chunk in data.chunks(STREAM_CHUNK_BYTES) {
        let mut filled = 0;
        for triple_chunk in chunk.chunks(3) {
            let b0 = triple_chunk[0] as u32;
            let b1 = triple_chunk.get(1).copied().unwrap_or(0) as u32;
            let b2 = triple_chunk.get(2).copied().unwrap_or(0) as u32;
            let triple = (b0 << 16) | (b1 << 8) | b2;
            encoded[filled] = ALPHABET[(triple >> 18) as usize & 0x3F];
            encoded[filled + 1] = ALPHABET[(triple >> 12) as usize & 0x3F];
            encoded[filled + 2] = if triple_chunk.len() > 1 {
                ALPHABET[(triple >> 6) as usize & 0x3F]
            } else {
                b'='
            };
            encoded[filled + 3] = if triple_chunk.len() > 2 {
                ALPHABET[triple as usize & 0x3F]
            } else {
                b'='
            };
            filled += 4;
        }
        out.write_str(std::str::from_utf8(&encoded[..filled]).expect("base64 is ASCII"))?;
    }
    Ok(())
}

/// Decodes standard base64 (padding required, no whitespace).
pub fn base64_decode(text: &str) -> Result<Vec<u8>, String> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err("base64 length must be a multiple of 4".to_string());
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (index, chunk) in bytes.chunks(4).enumerate() {
        let last = index + 1 == bytes.len() / 4;
        let mut triple = 0u32;
        let mut padding = 0usize;
        for (position, &byte) in chunk.iter().enumerate() {
            let value = match byte {
                b'A'..=b'Z' => (byte - b'A') as u32,
                b'a'..=b'z' => (byte - b'a' + 26) as u32,
                b'0'..=b'9' => (byte - b'0' + 52) as u32,
                b'+' => 62,
                b'/' => 63,
                b'=' if last && position >= 2 => {
                    padding += 1;
                    0
                }
                _ => return Err(format!("invalid base64 character `{}`", byte as char)),
            };
            if padding > 0 && byte != b'=' {
                return Err("base64 data after padding".to_string());
            }
            triple = (triple << 6) | value;
        }
        out.push((triple >> 16) as u8);
        if padding < 2 {
            out.push((triple >> 8) as u8);
        }
        if padding < 1 {
            out.push(triple as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(base64_decode("Zm9vYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn roundtrips_all_byte_values() {
        let data: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        for len in [0, 1, 2, 3, 61, 255, 256] {
            let slice = &data[..len];
            assert_eq!(base64_decode(&base64_encode(slice)).unwrap(), slice);
        }
    }

    /// A naive unchunked reference encoder, kept independent of the
    /// streaming implementation so chunk-boundary bugs cannot cancel out.
    fn reference_encode(data: &[u8]) -> String {
        let mut out = String::new();
        for chunk in data.chunks(3) {
            let b0 = chunk[0] as u32;
            let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
            let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
            let triple = (b0 << 16) | (b1 << 8) | b2;
            out.push(ALPHABET[(triple >> 18) as usize & 0x3F] as char);
            out.push(ALPHABET[(triple >> 12) as usize & 0x3F] as char);
            out.push(if chunk.len() > 1 {
                ALPHABET[(triple >> 6) as usize & 0x3F] as char
            } else {
                '='
            });
            out.push(if chunk.len() > 2 {
                ALPHABET[triple as usize & 0x3F] as char
            } else {
                '='
            });
        }
        out
    }

    #[test]
    fn streaming_encoder_matches_across_chunk_boundaries() {
        let data: Vec<u8> = (0..STREAM_CHUNK_BYTES * 3 + 5)
            .map(|i| (i * 31) as u8)
            .collect();
        for len in [
            0,
            1,
            STREAM_CHUNK_BYTES - 1,
            STREAM_CHUNK_BYTES,
            STREAM_CHUNK_BYTES + 1,
            data.len(),
        ] {
            let mut streamed = String::new();
            base64_encode_into(&mut streamed, &data[..len]).unwrap();
            assert_eq!(streamed, reference_encode(&data[..len]), "length {len}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(base64_decode("abc").is_err());
        assert!(base64_decode("ab=c").is_err());
        assert!(base64_decode("====").is_err());
        assert!(base64_decode("a#bc").is_err());
    }
}
