//! Error types shared across the Dandelion workspace.

use std::fmt;

/// Convenient result alias using [`DandelionError`].
pub type DandelionResult<T> = Result<T, DandelionError>;

/// The error type returned by Dandelion platform operations.
///
/// The variants are grouped by subsystem so that callers can match on the
/// broad category (registration, dispatch, sandbox, communication, ...)
/// without needing to know the precise failure site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DandelionError {
    /// A function, composition or service name was not found in a registry.
    NotFound {
        /// The kind of entity that was looked up (e.g. `"function"`).
        kind: &'static str,
        /// The name or identifier that failed to resolve.
        name: String,
    },
    /// An entity with the same name is already registered.
    AlreadyRegistered {
        /// The kind of entity that was registered (e.g. `"composition"`).
        kind: &'static str,
        /// The conflicting name.
        name: String,
    },
    /// The composition DSL failed to parse.
    Parse {
        /// Line number (1-based) where the error was detected.
        line: usize,
        /// Column number (1-based) where the error was detected.
        column: usize,
        /// Human readable description of the problem.
        message: String,
    },
    /// The composition parsed but failed semantic validation.
    Validation(String),
    /// A memory context operation went out of bounds or exceeded its budget.
    ContextError(String),
    /// A compute function misbehaved (trapped, timed out, attempted a syscall).
    FunctionFault {
        /// The name of the faulting function.
        function: String,
        /// Description of the fault.
        reason: String,
    },
    /// A communication function received an invalid or unsafe request.
    InvalidRequest(String),
    /// A remote service returned an error response.
    ServiceError {
        /// HTTP-like status code returned by the service.
        status: u16,
        /// Service supplied message.
        message: String,
    },
    /// The dispatcher detected an internal inconsistency.
    Dispatch(String),
    /// An engine thread died (panicked) while executing the task, and the
    /// restart budget did not allow a retry.
    EngineFault {
        /// Description of what killed the engine.
        reason: String,
    },
    /// The platform ran out of a resource (cores, memory, queue capacity).
    ResourceExhausted(String),
    /// The invocation was cancelled (e.g. client disconnected, shutdown).
    Cancelled,
    /// Execution exceeded the user-specified timeout.
    Timeout {
        /// The function that was preempted.
        function: String,
        /// The configured limit in milliseconds.
        limit_ms: u64,
    },
    /// A configuration value was invalid.
    Config(String),
    /// Input/output data did not match the declared sets.
    DataLayout(String),
    /// Catch-all for internal errors that should not occur.
    Internal(String),
}

impl DandelionError {
    /// Returns `true` if the error is attributable to the user (bad program,
    /// bad request, faulting function) rather than to the platform.
    pub fn is_user_error(&self) -> bool {
        matches!(
            self,
            DandelionError::Parse { .. }
                | DandelionError::Validation(_)
                | DandelionError::FunctionFault { .. }
                | DandelionError::InvalidRequest(_)
                | DandelionError::DataLayout(_)
                | DandelionError::Timeout { .. }
        )
    }

    /// Returns `true` if retrying the operation may succeed.
    pub fn is_retryable(&self) -> bool {
        match self {
            DandelionError::ResourceExhausted(_) => true,
            DandelionError::ServiceError { status, .. } => *status >= 500,
            // The fault killed one engine, not the pool: a fresh engine may
            // well execute the same task cleanly.
            DandelionError::EngineFault { .. } => true,
            _ => false,
        }
    }

    /// Stable machine-readable error code for the v1 HTTP API.
    ///
    /// These strings are part of the public API contract: clients match on
    /// them, so variants may be added but existing codes must not change.
    pub fn code(&self) -> &'static str {
        match self {
            DandelionError::NotFound { .. } => "not_found",
            DandelionError::AlreadyRegistered { .. } => "already_registered",
            DandelionError::Parse { .. } => "parse_error",
            DandelionError::Validation(_) => "validation_error",
            DandelionError::ContextError(_) => "context_error",
            DandelionError::FunctionFault { .. } => "function_fault",
            DandelionError::InvalidRequest(_) => "invalid_request",
            DandelionError::ServiceError { .. } => "service_error",
            DandelionError::Dispatch(_) => "dispatch_error",
            DandelionError::EngineFault { .. } => "engine_fault",
            DandelionError::ResourceExhausted(_) => "resource_exhausted",
            DandelionError::Cancelled => "cancelled",
            DandelionError::Timeout { .. } => "timeout",
            DandelionError::Config(_) => "config_error",
            DandelionError::DataLayout(_) => "data_layout_error",
            DandelionError::Internal(_) => "internal_error",
        }
    }

    /// Reconstructs an error from a machine-readable code and message, the
    /// inverse of [`DandelionError::code`] as far as the wire format allows
    /// (structured fields are collapsed into the message by `Display`).
    pub fn from_code(code: &str, message: &str) -> DandelionError {
        let message = message.to_string();
        match code {
            "not_found" => DandelionError::NotFound {
                kind: "entity",
                name: message,
            },
            "already_registered" => DandelionError::AlreadyRegistered {
                kind: "entity",
                name: message,
            },
            "parse_error" => DandelionError::Parse {
                line: 0,
                column: 0,
                message,
            },
            "validation_error" => DandelionError::Validation(message),
            "context_error" => DandelionError::ContextError(message),
            "function_fault" => DandelionError::FunctionFault {
                function: String::new(),
                reason: message,
            },
            "invalid_request" => DandelionError::InvalidRequest(message),
            "service_error" => DandelionError::ServiceError {
                status: 502,
                message,
            },
            "dispatch_error" => DandelionError::Dispatch(message),
            "engine_fault" => DandelionError::EngineFault { reason: message },
            "resource_exhausted" => DandelionError::ResourceExhausted(message),
            "cancelled" => DandelionError::Cancelled,
            "timeout" => DandelionError::Timeout {
                function: message,
                limit_ms: 0,
            },
            "config_error" => DandelionError::Config(message),
            "data_layout_error" => DandelionError::DataLayout(message),
            _ => DandelionError::Internal(message),
        }
    }

    /// Maps the error onto the HTTP status code the frontend reports.
    pub fn status_code(&self) -> u16 {
        match self {
            DandelionError::NotFound { .. } => 404,
            DandelionError::AlreadyRegistered { .. } => 409,
            DandelionError::Parse { .. }
            | DandelionError::Validation(_)
            | DandelionError::InvalidRequest(_)
            | DandelionError::DataLayout(_)
            | DandelionError::Config(_) => 400,
            DandelionError::FunctionFault { .. } => 422,
            DandelionError::Timeout { .. } => 408,
            DandelionError::ServiceError { status, .. } => *status,
            DandelionError::ResourceExhausted(_) => 429,
            DandelionError::Cancelled => 499,
            DandelionError::ContextError(_)
            | DandelionError::Dispatch(_)
            | DandelionError::EngineFault { .. }
            | DandelionError::Internal(_) => 500,
        }
    }
}

impl fmt::Display for DandelionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DandelionError::NotFound { kind, name } => write!(f, "{kind} not found: {name}"),
            DandelionError::AlreadyRegistered { kind, name } => {
                write!(f, "{kind} already registered: {name}")
            }
            DandelionError::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at {line}:{column}: {message}"),
            DandelionError::Validation(msg) => write!(f, "validation error: {msg}"),
            DandelionError::ContextError(msg) => write!(f, "memory context error: {msg}"),
            DandelionError::FunctionFault { function, reason } => {
                write!(f, "function `{function}` faulted: {reason}")
            }
            DandelionError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            DandelionError::ServiceError { status, message } => {
                write!(f, "service error {status}: {message}")
            }
            DandelionError::Dispatch(msg) => write!(f, "dispatch error: {msg}"),
            DandelionError::EngineFault { reason } => write!(f, "engine fault: {reason}"),
            DandelionError::ResourceExhausted(msg) => write!(f, "resource exhausted: {msg}"),
            DandelionError::Cancelled => write!(f, "invocation cancelled"),
            DandelionError::Timeout { function, limit_ms } => {
                write!(f, "function `{function}` exceeded timeout of {limit_ms} ms")
            }
            DandelionError::Config(msg) => write!(f, "configuration error: {msg}"),
            DandelionError::DataLayout(msg) => write!(f, "data layout error: {msg}"),
            DandelionError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for DandelionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = DandelionError::NotFound {
            kind: "function",
            name: "matmul".to_string(),
        };
        assert_eq!(err.to_string(), "function not found: matmul");
        let err = DandelionError::Timeout {
            function: "spin".into(),
            limit_ms: 250,
        };
        assert!(err.to_string().contains("250 ms"));
    }

    #[test]
    fn status_codes_follow_http_semantics() {
        assert_eq!(
            DandelionError::NotFound {
                kind: "function",
                name: "x".into()
            }
            .status_code(),
            404
        );
        assert_eq!(DandelionError::Validation("bad".into()).status_code(), 400);
        assert_eq!(DandelionError::Internal("oops".into()).status_code(), 500);
        assert_eq!(
            DandelionError::ServiceError {
                status: 503,
                message: "busy".into()
            }
            .status_code(),
            503
        );
    }

    #[test]
    fn user_error_classification() {
        assert!(DandelionError::Validation("x".into()).is_user_error());
        assert!(DandelionError::FunctionFault {
            function: "f".into(),
            reason: "trap".into()
        }
        .is_user_error());
        assert!(!DandelionError::Internal("x".into()).is_user_error());
        assert!(!DandelionError::Dispatch("x".into()).is_user_error());
    }

    #[test]
    fn codes_are_stable_and_roundtrip() {
        let samples = [
            DandelionError::NotFound {
                kind: "function",
                name: "f".into(),
            },
            DandelionError::Validation("v".into()),
            DandelionError::FunctionFault {
                function: "f".into(),
                reason: "r".into(),
            },
            DandelionError::ResourceExhausted("q".into()),
            DandelionError::Cancelled,
            DandelionError::Internal("i".into()),
        ];
        for error in samples {
            let rebuilt = DandelionError::from_code(error.code(), &error.to_string());
            assert_eq!(rebuilt.code(), error.code(), "{error:?}");
            assert_eq!(rebuilt.status_code() >= 400, error.status_code() >= 400);
        }
        assert_eq!(
            DandelionError::from_code("no_such_code", "m").code(),
            "internal_error"
        );
    }

    #[test]
    fn retryable_classification() {
        assert!(DandelionError::ResourceExhausted("queue full".into()).is_retryable());
        assert!(!DandelionError::Validation("x".into()).is_retryable());
    }
}
