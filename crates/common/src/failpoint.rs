//! Deterministic fault injection: named failpoints threaded through the
//! runtime's fracture surfaces.
//!
//! A failpoint is a named site in the code (`"upstream/write"`,
//! `"engine/execute"`, …) where a fault can be injected on demand: an
//! error return, a delay, a partial I/O cap, or a panic. Faults fire with
//! a configured probability drawn from a seeded [`SplitMix64`], so a chaos
//! run is reproducible bit-for-bit given the same seed.
//!
//! The design constraint is the disabled cost: production binaries ship
//! with every failpoint compiled in, so an unconfigured site must cost one
//! relaxed atomic load and a predictable branch — nothing else. Only when
//! at least one point is configured does [`check`] take the registry lock.
//!
//! Configuration is programmatic ([`configure`]) or environmental:
//!
//! ```text
//! DANDELION_FAILPOINTS="upstream/write=error%0.05,engine/execute=panic%0.01"
//! DANDELION_FAILPOINT_SEED=42
//! ```
//!
//! Actions: `error`, `panic`, `delay:<ms>`, `partial:<bytes>`, `off`. The
//! `%p` suffix is the trigger probability (default `1`; values above `1`
//! are read as percentages, so `%5` means 5%). Every point keeps hit and
//! evaluation counters, surfaced by [`stats_json`] under `failpoints` in
//! `/v1/stats`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Duration;

use crate::json::JsonValue;
use crate::rng::SplitMix64;

/// What a configured failpoint does when it triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// The site reports an injected failure (an `Err` return, a doomed
    /// connection — whatever "failed" means locally).
    Error,
    /// The site panics, exercising `catch_unwind` supervision and thread
    /// teardown paths.
    Panic,
    /// The calling thread sleeps before proceeding normally.
    Delay(Duration),
    /// The site caps the I/O it performs to this many bytes (sites that
    /// cannot honor a cap treat this as a no-op).
    Partial(usize),
}

/// The fault a triggered failpoint hands back to its site. `Delay` and
/// `Panic` never reach the caller — [`check`] sleeps or panics itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the operation.
    Error,
    /// Cap the operation to this many bytes.
    Partial(usize),
}

/// One configured point: its action, trigger probability, deterministic
/// per-point RNG and counters.
struct Point {
    action: FailAction,
    probability: f64,
    rng: SplitMix64,
    evals: u64,
    hits: u64,
}

/// Number of configured points; `0` keeps [`check`] to one relaxed load.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);
/// Base seed; each point derives its own stream as `seed ^ fnv1a(name)`.
static SEED: AtomicU64 = AtomicU64::new(0x5EED_DA4D_E110_4EAF);
static REGISTRY: OnceLock<Mutex<HashMap<String, Point>>> = OnceLock::new();
static ENV_INIT: Once = Once::new();

fn registry() -> &'static Mutex<HashMap<String, Point>> {
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Whether any failpoint is configured at all. This is the entire cost of
/// a disabled failpoint on the hot path.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Evaluates the failpoint `name`: draws its probability, bumps its
/// counters, and returns the fault the site must apply, if any. `Delay`
/// sleeps here (off-lock) and returns `None`; `Panic` panics here.
///
/// Sites guard the call with [`enabled`] (the [`fail_point!`] macro does)
/// so the unconfigured cost stays one relaxed load.
pub fn check(name: &str) -> Option<Fault> {
    if !enabled() {
        return None;
    }
    let triggered = {
        let mut points = registry().lock().expect("failpoint registry poisoned");
        let point = points.get_mut(name)?;
        point.evals += 1;
        if !point.rng.bernoulli(point.probability) {
            return None;
        }
        point.hits += 1;
        point.action
    };
    // The registry lock is dropped: a delay must not serialize every other
    // failpoint in the process, and a panic must not poison the registry.
    match triggered {
        FailAction::Error => Some(Fault::Error),
        FailAction::Partial(bytes) => Some(Fault::Partial(bytes)),
        FailAction::Delay(pause) => {
            std::thread::sleep(pause);
            None
        }
        FailAction::Panic => panic!("failpoint {name} injected panic"),
    }
}

/// The `std::io::Error` an injected I/O fault surfaces as.
pub fn io_error(name: &str) -> std::io::Error {
    std::io::Error::other(format!("failpoint {name} injected error"))
}

/// Configures (or reconfigures) the failpoint `name`. `probability` is
/// clamped to `[0, 1]`. The point's RNG restarts from its deterministic
/// per-name stream, so reconfiguring mid-test stays reproducible.
pub fn configure(name: &str, action: FailAction, probability: f64) {
    let mut points = registry().lock().expect("failpoint registry poisoned");
    let seed = SEED.load(Ordering::Relaxed) ^ fnv1a(name);
    points.insert(
        name.to_string(),
        Point {
            action,
            probability: probability.clamp(0.0, 1.0),
            rng: SplitMix64::new(seed),
            evals: 0,
            hits: 0,
        },
    );
    ACTIVE.store(points.len(), Ordering::Relaxed);
}

/// Removes the failpoint `name`; the site reverts to one relaxed load
/// once no points remain.
pub fn remove(name: &str) {
    let mut points = registry().lock().expect("failpoint registry poisoned");
    points.remove(name);
    ACTIVE.store(points.len(), Ordering::Relaxed);
}

/// Removes every configured failpoint.
pub fn clear() {
    let mut points = registry().lock().expect("failpoint registry poisoned");
    points.clear();
    ACTIVE.store(0, Ordering::Relaxed);
}

/// Sets the base seed future [`configure`] calls derive per-point streams
/// from (existing points keep their streams).
pub fn set_seed(seed: u64) {
    SEED.store(seed, Ordering::Relaxed);
}

/// Parses one `name=action[%p]` clause.
fn parse_clause(clause: &str) -> Result<(String, Option<(FailAction, f64)>), String> {
    let (name, spec) = clause
        .split_once('=')
        .ok_or_else(|| format!("failpoint clause {clause:?} is missing '='"))?;
    let name = name.trim();
    if name.is_empty() {
        return Err(format!("failpoint clause {clause:?} has an empty name"));
    }
    let (action_text, probability) = match spec.split_once('%') {
        Some((action, percent)) => {
            let value: f64 = percent
                .trim()
                .parse()
                .map_err(|_| format!("failpoint {name}: bad probability {percent:?}"))?;
            // `%0.05` is a probability, `%5` is a percentage.
            let probability = if value > 1.0 { value / 100.0 } else { value };
            (action.trim(), probability)
        }
        None => (spec.trim(), 1.0),
    };
    let action = if action_text.eq_ignore_ascii_case("off") {
        return Ok((name.to_string(), None));
    } else if action_text.eq_ignore_ascii_case("error") {
        FailAction::Error
    } else if action_text.eq_ignore_ascii_case("panic") {
        FailAction::Panic
    } else if let Some(ms) = action_text.strip_prefix("delay:") {
        let ms: u64 = ms
            .trim()
            .parse()
            .map_err(|_| format!("failpoint {name}: bad delay {ms:?}"))?;
        FailAction::Delay(Duration::from_millis(ms))
    } else if let Some(bytes) = action_text.strip_prefix("partial:") {
        let bytes: usize = bytes
            .trim()
            .parse()
            .map_err(|_| format!("failpoint {name}: bad partial size {bytes:?}"))?;
        FailAction::Partial(bytes)
    } else {
        return Err(format!(
            "failpoint {name}: unknown action {action_text:?} \
             (expected error, panic, delay:<ms>, partial:<bytes> or off)"
        ));
    };
    Ok((name.to_string(), Some((action, probability))))
}

/// Applies a comma-separated `name=action%p` specification (the
/// `DANDELION_FAILPOINTS` format). Clauses apply left to right; `off`
/// removes a point.
pub fn configure_str(spec: &str) -> Result<(), String> {
    for clause in spec.split(',') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        match parse_clause(clause)? {
            (name, Some((action, probability))) => configure(&name, action, probability),
            (name, None) => remove(&name),
        }
    }
    Ok(())
}

/// Reads `DANDELION_FAILPOINT_SEED` and `DANDELION_FAILPOINTS` once per
/// process. Called from every entry point that can host failpoints
/// (worker start, server start, gateway start) — whichever runs first
/// wins, the rest are no-ops. A malformed spec panics: a chaos run that
/// silently ignores its configuration would report false confidence.
pub fn init_from_env() {
    ENV_INIT.call_once(|| {
        if let Ok(seed) = std::env::var("DANDELION_FAILPOINT_SEED") {
            match seed.trim().parse::<u64>() {
                Ok(seed) => set_seed(seed),
                Err(_) => panic!("DANDELION_FAILPOINT_SEED is not a u64: {seed:?}"),
            }
        }
        if let Ok(spec) = std::env::var("DANDELION_FAILPOINTS") {
            if let Err(problem) = configure_str(&spec) {
                panic!("DANDELION_FAILPOINTS: {problem}");
            }
        }
    });
}

fn action_label(action: FailAction) -> String {
    match action {
        FailAction::Error => "error".to_string(),
        FailAction::Panic => "panic".to_string(),
        FailAction::Delay(pause) => format!("delay:{}", pause.as_millis()),
        FailAction::Partial(bytes) => format!("partial:{bytes}"),
    }
}

/// The `failpoints` stats document: one entry per configured point with
/// its action, probability and counters. `None` when nothing is
/// configured, so `/v1/stats` stays unchanged in production.
pub fn stats_json() -> Option<JsonValue> {
    if !enabled() {
        return None;
    }
    let points = registry().lock().expect("failpoint registry poisoned");
    if points.is_empty() {
        return None;
    }
    let mut entries: Vec<(String, JsonValue)> = points
        .iter()
        .map(|(name, point)| {
            (
                name.clone(),
                JsonValue::object([
                    ("action", JsonValue::string(action_label(point.action))),
                    ("probability", JsonValue::from(point.probability)),
                    ("evals", JsonValue::from(point.evals)),
                    ("hits", JsonValue::from(point.hits)),
                ]),
            )
        })
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    Some(JsonValue::object(entries))
}

/// Hits recorded for the failpoint `name` (testing aid).
pub fn hits(name: &str) -> u64 {
    let points = registry().lock().expect("failpoint registry poisoned");
    points.get(name).map_or(0, |point| point.hits)
}

/// Injects a failpoint into a function.
///
/// The bare form evaluates side-effect actions (delay, panic) and ignores
/// `Error`/`Partial` faults — use it at sites that have no failure path of
/// their own. The two-argument form maps a triggered [`Fault`] to the
/// enclosing function's return value and `return`s it:
///
/// ```
/// use dandelion_common::{fail_point, failpoint};
///
/// fn send() -> std::io::Result<()> {
///     fail_point!("doc/send", |_| Err(failpoint::io_error("doc/send")));
///     Ok(())
/// }
///
/// failpoint::configure("doc/send", failpoint::FailAction::Error, 1.0);
/// assert!(send().is_err());
/// failpoint::remove("doc/send");
/// assert!(send().is_ok());
/// ```
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        if $crate::failpoint::enabled() {
            let _ = $crate::failpoint::check($name);
        }
    };
    ($name:expr, $on_fault:expr) => {
        if $crate::failpoint::enabled() {
            if let Some(fault) = $crate::failpoint::check($name) {
                #[allow(clippy::redundant_closure_call)]
                return ($on_fault)(fault);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test uses its own point names: the registry is process-global
    // and the test harness runs these in parallel.

    #[test]
    fn disabled_points_cost_nothing_and_fire_nothing() {
        assert_eq!(check("test/unconfigured"), None);
    }

    #[test]
    fn error_fault_fires_and_counts() {
        configure("test/error", FailAction::Error, 1.0);
        assert_eq!(check("test/error"), Some(Fault::Error));
        assert_eq!(check("test/error"), Some(Fault::Error));
        assert_eq!(hits("test/error"), 2);
        remove("test/error");
        assert_eq!(check("test/error"), None);
    }

    #[test]
    fn partial_fault_carries_its_cap() {
        configure("test/partial", FailAction::Partial(3), 1.0);
        assert_eq!(check("test/partial"), Some(Fault::Partial(3)));
        remove("test/partial");
    }

    #[test]
    fn probability_is_deterministic_for_a_seed() {
        // The per-point stream restarts on configure, so two identical
        // configurations produce identical trigger sequences.
        let sequence = |_: ()| {
            configure("test/prob", FailAction::Error, 0.5);
            let fired: Vec<bool> = (0..64).map(|_| check("test/prob").is_some()).collect();
            remove("test/prob");
            fired
        };
        let first = sequence(());
        let second = sequence(());
        assert_eq!(first, second);
        assert!(first.iter().any(|fired| *fired));
        assert!(first.iter().any(|fired| !*fired));
    }

    #[test]
    fn delay_sleeps_and_returns_no_fault() {
        configure(
            "test/delay",
            FailAction::Delay(Duration::from_millis(20)),
            1.0,
        );
        let started = std::time::Instant::now();
        assert_eq!(check("test/delay"), None);
        assert!(started.elapsed() >= Duration::from_millis(20));
        remove("test/delay");
    }

    #[test]
    fn panic_action_panics_with_the_point_name() {
        configure("test/panic", FailAction::Panic, 1.0);
        let result = std::panic::catch_unwind(|| check("test/panic"));
        remove("test/panic");
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("test/panic"));
    }

    #[test]
    fn spec_strings_parse_every_action() {
        configure_str(
            "test/spec-a=error%0.25, test/spec-b=panic, \
             test/spec-c=delay:5%50, test/spec-d=partial:7",
        )
        .unwrap();
        let points = registry().lock().unwrap();
        assert_eq!(points["test/spec-a"].action, FailAction::Error);
        assert!((points["test/spec-a"].probability - 0.25).abs() < 1e-9);
        assert_eq!(points["test/spec-b"].action, FailAction::Panic);
        assert_eq!(
            points["test/spec-c"].action,
            FailAction::Delay(Duration::from_millis(5))
        );
        assert!((points["test/spec-c"].probability - 0.5).abs() < 1e-9);
        assert_eq!(points["test/spec-d"].action, FailAction::Partial(7));
        drop(points);
        configure_str("test/spec-a=off,test/spec-b=off,test/spec-c=off,test/spec-d=off").unwrap();
        assert_eq!(check("test/spec-a"), None);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(configure_str("no-equals-sign").is_err());
        assert!(configure_str("=error").is_err());
        assert!(configure_str("x=explode").is_err());
        assert!(configure_str("x=delay:abc").is_err());
        assert!(configure_str("x=partial:-1").is_err());
        assert!(configure_str("x=error%many").is_err());
    }

    #[test]
    fn stats_document_reports_counters() {
        configure("test/stats", FailAction::Error, 1.0);
        let _ = check("test/stats");
        let json = stats_json().expect("a configured point produces stats");
        let text = json.to_json_string();
        assert!(text.contains("\"test/stats\""));
        assert!(text.contains("\"action\":\"error\""));
        remove("test/stats");
    }

    #[test]
    fn macro_forms_return_and_pass_through() {
        fn guarded() -> Result<u32, String> {
            fail_point!("test/macro", |_| Err("injected".to_string()));
            Ok(7)
        }
        assert_eq!(guarded(), Ok(7));
        configure("test/macro", FailAction::Error, 1.0);
        assert_eq!(guarded(), Err("injected".to_string()));
        remove("test/macro");
        assert_eq!(guarded(), Ok(7));
    }
}
