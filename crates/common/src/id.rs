//! Strongly typed identifiers used across the platform.
//!
//! Each identifier wraps a `u64` and provides a process-wide monotonic
//! generator. Using distinct types prevents mixing up, say, a function id and
//! an invocation id in dispatcher bookkeeping.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u64);

        impl $name {
            /// Creates an identifier from a raw value.
            pub const fn from_raw(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric value.
            pub const fn as_u64(self) -> u64 {
                self.0
            }

            /// Allocates the next identifier from a process-wide counter.
            pub fn next() -> Self {
                static COUNTER: AtomicU64 = AtomicU64::new(1);
                Self(COUNTER.fetch_add(1, Ordering::Relaxed))
            }

            /// Parses the `Display` wire format (`prefix-N`) or a bare
            /// numeric value; the inverse of `to_string`.
            pub fn parse(text: &str) -> Option<Self> {
                let raw = text.strip_prefix($prefix).unwrap_or(text);
                raw.parse::<u64>().ok().map(Self)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

define_id!(
    /// Identifies a registered compute or communication function.
    FunctionId,
    "fn-"
);
define_id!(
    /// Identifies a registered composition (application DAG).
    CompositionId,
    "comp-"
);
define_id!(
    /// Identifies a single client invocation of a composition or function.
    InvocationId,
    "inv-"
);
define_id!(
    /// Identifies a worker node in a cluster.
    NodeId,
    "node-"
);
define_id!(
    /// Identifies a compute or communication engine on a worker node.
    EngineId,
    "eng-"
);
define_id!(
    /// Identifies a memory context managed by the dispatcher.
    ContextId,
    "ctx-"
);

/// Allocates sequential identifiers scoped to one owner (e.g. one dispatcher).
///
/// Unlike the `next()` constructors this generator is deterministic per
/// instance, which keeps simulation runs reproducible.
#[derive(Debug)]
pub struct IdGenerator {
    next: AtomicU64,
}

impl IdGenerator {
    /// Creates a generator that starts at `1`.
    pub const fn new() -> Self {
        Self {
            next: AtomicU64::new(1),
        }
    }

    /// Returns the next raw identifier value.
    pub fn next_raw(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns the next identifier converted into the requested type.
    pub fn next_id<T: From<u64>>(&self) -> T {
        T::from(self.next_raw())
    }
}

impl Default for IdGenerator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_unique_and_monotonic() {
        let a = InvocationId::next();
        let b = InvocationId::next();
        assert!(b.as_u64() > a.as_u64());
    }

    #[test]
    fn display_includes_prefix() {
        assert_eq!(FunctionId::from_raw(7).to_string(), "fn-7");
        assert_eq!(format!("{:?}", NodeId::from_raw(3)), "node-3");
    }

    #[test]
    fn parse_is_the_inverse_of_display() {
        let id = InvocationId::from_raw(42);
        assert_eq!(InvocationId::parse(&id.to_string()), Some(id));
        assert_eq!(InvocationId::parse("42"), Some(id));
        assert_eq!(FunctionId::parse("fn-7"), Some(FunctionId::from_raw(7)));
        assert_eq!(InvocationId::parse("inv-"), None);
        assert_eq!(InvocationId::parse("zzz"), None);
        assert_eq!(InvocationId::parse("node-3"), None);
    }

    #[test]
    fn generator_is_deterministic_per_instance() {
        let generator = IdGenerator::new();
        let ids: Vec<u64> = (0..5).map(|_| generator.next_raw()).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn generator_produces_distinct_typed_ids() {
        let generator = IdGenerator::new();
        let mut seen = HashSet::new();
        for _ in 0..100 {
            let id: ContextId = generator.next_id();
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(ContextId::from_raw(1) < ContextId::from_raw(2));
        assert_eq!(EngineId::from_raw(9), EngineId::from(9u64));
    }
}
