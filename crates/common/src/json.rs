//! A small, dependency-free JSON value model with a writer and parser.
//!
//! The workspace builds fully offline, so instead of `serde_json` this
//! module provides the minimal JSON support the platform needs: the v1 HTTP
//! API (structured error bodies, invocation status documents, stats), the
//! client facade that parses those documents back, and the benchmark
//! harness's machine-readable report rows.
//!
//! The model is deliberately simple: an enum, `Display` for compact
//! serialization, and a recursive-descent parser that rejects anything
//! malformed. Object keys keep insertion order so emitted documents are
//! deterministic.

use std::fmt;

use crate::bytes::SharedBytes;
use crate::encoding::base64_encode_into;

/// A JSON document or fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// Binary payload serialized as a base64 JSON string.
    ///
    /// A write-side optimization: the payload is held as a zero-copy
    /// [`SharedBytes`] view and base64 is streamed directly into the output
    /// during `Display`, with no intermediate `String`. Parsing produces
    /// [`JsonValue::String`] (the parser cannot know a string is base64), so
    /// documents containing `Bytes` round-trip as their string encoding.
    Bytes(SharedBytes),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from key/value pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(values: impl IntoIterator<Item = JsonValue>) -> JsonValue {
        JsonValue::Array(values.into_iter().collect())
    }

    /// Builds a string value.
    pub fn string(value: impl Into<String>) -> JsonValue {
        JsonValue::String(value.into())
    }

    /// Builds a binary value serialized as base64, holding a zero-copy view
    /// of the payload until serialization.
    pub fn bytes(value: impl Into<SharedBytes>) -> JsonValue {
        JsonValue::Bytes(value.into())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(text) => Some(text),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(value) => Some(*value),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(value) if *value >= 0.0 && value.fract() == 0.0 => {
                Some(*value as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(value) => Some(*value),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(values) => Some(values),
            _ => None,
        }
    }

    /// Exact number of bytes the compact serialization of this value
    /// occupies, computed without allocating.
    ///
    /// Used by [`JsonValue::to_json_string`] to size the output buffer
    /// exactly instead of growing a `String` incrementally. Binary payloads
    /// are sized arithmetically (base64 length is a closed formula), so
    /// counting never encodes them; the other variants stream through a
    /// counting writer, which for numbers and escaped strings is cheap
    /// relative to the payload bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            JsonValue::Null | JsonValue::Bool(true) => 4,
            JsonValue::Bool(false) => 5,
            // Quotes + padded base64: no second encoding pass.
            JsonValue::Bytes(data) => 2 + data.len().div_ceil(3) * 4,
            JsonValue::Number(_) | JsonValue::String(_) => {
                let mut counter = CountWriter(0);
                write_value(&mut counter, self).expect("counting cannot fail");
                counter.0
            }
            JsonValue::Array(values) => {
                let separators = values.len().saturating_sub(1);
                2 + separators + values.iter().map(JsonValue::encoded_len).sum::<usize>()
            }
            JsonValue::Object(pairs) => {
                let separators = pairs.len().saturating_sub(1);
                let keys: usize = pairs
                    .iter()
                    .map(|(key, _)| {
                        let mut counter = CountWriter(0);
                        write_escaped(&mut counter, key).expect("counting cannot fail");
                        counter.0 + 1 // plus the `:`
                    })
                    .sum();
                let values: usize = pairs
                    .iter()
                    .map(|(_, value)| value.encoded_len())
                    .sum::<usize>();
                2 + separators + keys + values
            }
        }
    }

    /// Serializes the value into a `String` preallocated to the exact
    /// output size: one allocation, no incremental growth, regardless of
    /// document shape or payload size.
    pub fn to_json_string(&self) -> String {
        let encoded_len = self.encoded_len();
        let mut out = String::with_capacity(encoded_len);
        write_value(&mut out, self).expect("writing to a String cannot fail");
        // The allocator may round the capacity up, but the sizing itself
        // must be exact: nothing was reserved beyond the request and the
        // request was fully used.
        debug_assert_eq!(out.len(), encoded_len);
        out
    }

    /// Parses a JSON document. The whole input must be consumed.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            position: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.position != parser.bytes.len() {
            return Err(format!("trailing characters at offset {}", parser.position));
        }
        Ok(value)
    }
}

impl From<u64> for JsonValue {
    fn from(value: u64) -> Self {
        JsonValue::Number(value as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(value: usize) -> Self {
        JsonValue::Number(value as f64)
    }
}

impl From<f64> for JsonValue {
    fn from(value: f64) -> Self {
        JsonValue::Number(value)
    }
}

impl From<bool> for JsonValue {
    fn from(value: bool) -> Self {
        JsonValue::Bool(value)
    }
}

impl From<&str> for JsonValue {
    fn from(value: &str) -> Self {
        JsonValue::String(value.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(value: String) -> Self {
        JsonValue::String(value)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(f, self)
    }
}

/// A `fmt::Write` sink that only counts bytes, for exact-capacity sizing.
struct CountWriter(usize);

impl fmt::Write for CountWriter {
    fn write_str(&mut self, text: &str) -> fmt::Result {
        self.0 += text.len();
        Ok(())
    }
}

/// Serializes a value into any `fmt::Write` sink (the single implementation
/// behind `Display`, `encoded_len` and `to_json_string`).
fn write_value<W: fmt::Write>(f: &mut W, value: &JsonValue) -> fmt::Result {
    match value {
        JsonValue::Null => f.write_str("null"),
        JsonValue::Bool(true) => f.write_str("true"),
        JsonValue::Bool(false) => f.write_str("false"),
        JsonValue::Number(value) => write_number(f, *value),
        JsonValue::String(text) => write_escaped(f, text),
        JsonValue::Bytes(data) => {
            // Base64 contains no characters that need JSON escaping, so
            // it streams straight between the quotes.
            f.write_str("\"")?;
            base64_encode_into(f, data)?;
            f.write_str("\"")
        }
        JsonValue::Array(values) => {
            f.write_str("[")?;
            for (index, value) in values.iter().enumerate() {
                if index > 0 {
                    f.write_str(",")?;
                }
                write_value(f, value)?;
            }
            f.write_str("]")
        }
        JsonValue::Object(pairs) => {
            f.write_str("{")?;
            for (index, (key, value)) in pairs.iter().enumerate() {
                if index > 0 {
                    f.write_str(",")?;
                }
                write_escaped(f, key)?;
                f.write_str(":")?;
                write_value(f, value)?;
            }
            f.write_str("}")
        }
    }
}

fn write_number<W: fmt::Write>(f: &mut W, value: f64) -> fmt::Result {
    if !value.is_finite() {
        // JSON has no NaN/Infinity; fall back to null like serde_json does
        // for lossy serializers.
        return f.write_str("null");
    }
    if value.fract() == 0.0 && value.abs() < 9_007_199_254_740_992.0 {
        write!(f, "{}", value as i64)
    } else {
        write!(f, "{value}")
    }
}

fn write_escaped<W: fmt::Write>(f: &mut W, text: &str) -> fmt::Result {
    f.write_str("\"")?;
    for ch in text.chars() {
        match ch {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            ch if (ch as u32) < 0x20 => write!(f, "\\u{:04x}", ch as u32)?,
            ch => f.write_fmt(format_args!("{ch}"))?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    position: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.position).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let byte = self.peek()?;
        self.position += 1;
        Some(byte)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.position += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.bump() == Some(byte) {
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at offset {}",
                byte as char,
                self.position.saturating_sub(1)
            ))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.position..].starts_with(text.as_bytes()) {
            self.position += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.position))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at offset {}", self.position)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut values = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.position += 1;
            return Ok(JsonValue::Array(values));
        }
        loop {
            values.push(self.value()?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(values)),
                _ => return Err(format!("expected `,` or `]` at offset {}", self.position)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.position += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(pairs)),
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.position)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut text = String::new();
        loop {
            let start = self.position;
            // Consume a run of plain UTF-8.
            while let Some(byte) = self.peek() {
                if byte == b'"' || byte == b'\\' || byte < 0x20 {
                    break;
                }
                self.position += 1;
            }
            text.push_str(
                std::str::from_utf8(&self.bytes[start..self.position])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.bump() {
                Some(b'"') => return Ok(text),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => text.push('"'),
                    Some(b'\\') => text.push('\\'),
                    Some(b'/') => text.push('/'),
                    Some(b'n') => text.push('\n'),
                    Some(b'r') => text.push('\r'),
                    Some(b't') => text.push('\t'),
                    Some(b'b') => text.push('\u{0008}'),
                    Some(b'f') => text.push('\u{000C}'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pairs for characters outside the BMP.
                        let ch = if (0xD800..0xDC00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("invalid low surrogate".to_string());
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        text.push(ch.ok_or_else(|| "invalid unicode escape".to_string())?);
                    }
                    _ => return Err("invalid escape sequence".to_string()),
                },
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(byte @ b'0'..=b'9') => (byte - b'0') as u32,
                Some(byte @ b'a'..=b'f') => (byte - b'a' + 10) as u32,
                Some(byte @ b'A'..=b'F') => (byte - b'A' + 10) as u32,
                _ => return Err("invalid hex escape".to_string()),
            };
            value = value * 16 + digit;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.position;
        if self.peek() == Some(b'-') {
            self.position += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.position += 1;
        }
        if self.peek() == Some(b'.') {
            self.position += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.position += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.position += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.position += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.position += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.position])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_documents() {
        let document = JsonValue::object([
            ("name", JsonValue::string("inv-7")),
            ("count", JsonValue::from(3u64)),
            ("ratio", JsonValue::from(0.5)),
            ("ok", JsonValue::from(true)),
            ("none", JsonValue::Null),
            (
                "items",
                JsonValue::array([JsonValue::string("a"), JsonValue::string("b")]),
            ),
        ]);
        let text = document.to_string();
        assert_eq!(
            text,
            r#"{"name":"inv-7","count":3,"ratio":0.5,"ok":true,"none":null,"items":["a","b"]}"#
        );
        assert_eq!(JsonValue::parse(&text).unwrap(), document);
    }

    #[test]
    fn bytes_serialize_as_streamed_base64() {
        let payload: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        let document = JsonValue::object([("data", JsonValue::bytes(payload.clone()))]);
        let text = document.to_string();
        let expected = crate::encoding::base64_encode(&payload);
        assert_eq!(text, format!("{{\"data\":\"{expected}\"}}"));
        // Parsing yields the string form; decoding recovers the payload.
        let parsed = JsonValue::parse(&text).unwrap();
        let encoded = parsed.get("data").and_then(JsonValue::as_str).unwrap();
        assert_eq!(crate::encoding::base64_decode(encoded).unwrap(), payload);
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let value = JsonValue::string("line\nquote\" tab\t back\\slash \u{0001}");
        let text = value.to_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), value);
        assert_eq!(
            JsonValue::parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap(),
            JsonValue::string("Aé😀")
        );
    }

    #[test]
    fn accessors_navigate_objects() {
        let parsed = JsonValue::parse(r#"{"a":{"b":[1,2,3]},"flag":false}"#).unwrap();
        assert_eq!(
            parsed
                .get("a")
                .and_then(|a| a.get("b"))
                .and_then(|b| b.as_array())
                .map(<[JsonValue]>::len),
            Some(3)
        );
        assert_eq!(parsed.get("flag").and_then(JsonValue::as_bool), Some(false));
        assert!(parsed.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "[1 2]",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn encoded_len_is_exact_and_to_json_string_preallocates() {
        let documents = [
            JsonValue::Null,
            JsonValue::from(true),
            JsonValue::from(-12.5),
            JsonValue::from(9_007_199_254_740_991.0),
            JsonValue::Number(f64::NAN),
            JsonValue::string("line\nquote\" tab\t \u{0001} é😀"),
            JsonValue::bytes(vec![0u8, 1, 2, 3, 4]),
            JsonValue::object([
                (
                    "outputs",
                    JsonValue::array([JsonValue::bytes(vec![7u8; 100])]),
                ),
                ("status", JsonValue::string("completed")),
                ("count", JsonValue::from(3u64)),
            ]),
        ];
        for document in documents {
            let via_display = document.to_string();
            assert_eq!(document.encoded_len(), via_display.len());
            let exact = document.to_json_string();
            assert_eq!(exact, via_display);
            // The capacity request is exactly the serialized length (the
            // allocator is allowed to round up, so compare lengths, not
            // capacity).
            assert!(exact.capacity() >= exact.len());
        }
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(JsonValue::parse("-12.5e2").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(JsonValue::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(JsonValue::parse("-1").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("1.5").unwrap().as_u64(), None);
    }
}
