//! Common foundation types shared by every Dandelion crate.
//!
//! This crate deliberately has no dependency on the rest of the workspace. It
//! provides:
//!
//! * [`error`] — the shared [`DandelionError`] type and [`DandelionResult`].
//! * [`failpoint`] — deterministic fault injection: named failpoints with
//!   seeded probabilities, zero-cost when disabled (one relaxed load).
//! * [`id`] — strongly typed identifiers for functions, compositions,
//!   invocations, engines, nodes and memory contexts.
//! * [`data`] — the value model passed between functions: [`data::DataItem`]
//!   and [`data::DataSet`].
//! * [`clock`] — the [`clock::Clock`] abstraction with a monotonic real clock
//!   and a manually advanced virtual clock used by the simulator.
//! * [`stats`] — latency recorders, percentile summaries and time series used
//!   by the benchmark harness.
//! * [`rng`] — a small deterministic RNG and the statistical distributions
//!   used to generate synthetic workloads.
//! * [`config`] — platform configuration structs shared by the runtime and
//!   the simulator.
//! * [`json`] — a dependency-free JSON value model (writer + parser) used by
//!   the v1 HTTP API and the benchmark reports.
//! * [`encoding`] — base64 for binary payloads inside JSON documents.
//! * [`bytes`] — [`bytes::SharedBytes`], the zero-copy payload view threaded
//!   through the data plane, and [`bytes::SharedBytesMut`], the append-only
//!   builder that freezes into it without copying.
//! * [`rope`] — [`rope::Rope`], multi-part payloads as lists of zero-copy
//!   segments with vectored delivery.
//! * [`mpsc`] — [`mpsc::MpscQueue`], the lock-free multi-producer inbox
//!   the server's event loops drain in batches.
//! * [`pool`] — [`pool::BufferPool`], the fixed-class slab of reusable
//!   buffers behind builders and memory-context arenas.

pub mod bytes;
pub mod clock;
pub mod config;
pub mod data;
pub mod encoding;
pub mod error;
pub mod failpoint;
pub mod id;
pub mod json;
pub mod mpsc;
pub mod pool;
pub mod rng;
pub mod rope;
pub mod stats;

pub use bytes::{SharedBytes, SharedBytesMut};
pub use clock::{Clock, RealClock, SharedClock, VirtualClock};
pub use data::{DataItem, DataSet};
pub use error::{DandelionError, DandelionResult};
pub use id::{CompositionId, ContextId, EngineId, FunctionId, InvocationId, NodeId};
pub use json::JsonValue;
pub use mpsc::MpscQueue;
pub use pool::BufferPool;
pub use rope::{Rope, RopeWriter};

/// Number of bytes in a kibibyte.
pub const KIB: usize = 1024;
/// Number of bytes in a mebibyte.
pub const MIB: usize = 1024 * KIB;
/// Number of bytes in a gibibyte.
pub const GIB: usize = 1024 * MIB;

/// Formats a byte count using binary units with one decimal digit.
///
/// # Examples
///
/// ```
/// assert_eq!(dandelion_common::format_bytes(512), "512 B");
/// assert_eq!(dandelion_common::format_bytes(2048), "2.0 KiB");
/// ```
pub fn format_bytes(bytes: usize) -> String {
    if bytes >= GIB {
        format!("{:.1} GiB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.1} MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.1} KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_bytes_covers_all_units() {
        assert_eq!(format_bytes(0), "0 B");
        assert_eq!(format_bytes(1023), "1023 B");
        assert_eq!(format_bytes(1024), "1.0 KiB");
        assert_eq!(format_bytes(1536), "1.5 KiB");
        assert_eq!(format_bytes(3 * MIB), "3.0 MiB");
        assert_eq!(format_bytes(2 * GIB), "2.0 GiB");
    }
}
