//! A lock-free multi-producer/single-consumer queue.
//!
//! [`MpscQueue`] is the inbox of every server event loop: many threads (the
//! accept path, dispatcher completion callbacks, the gateway control thread)
//! push messages concurrently, and exactly one consumer — the loop thread —
//! drains them in batches between `epoll_wait`s. The previous
//! `Mutex<VecDeque>` inbox made every completion storm a lock convoy; this
//! queue makes a push one compare-and-swap and the drain one atomic swap,
//! with no lock for producers to convoy on.
//!
//! The structure is a Treiber stack consumed in whole batches: producers
//! push nodes onto an atomic head, and the consumer takes the entire chain
//! with a single `swap(null)`, then reverses it once so iteration yields
//! messages in push order per producer (a producer's messages never
//! reorder; messages of different producers interleave arbitrarily, as
//! they already did under the lock). Take-all consumption is what makes
//! the simple stack safe: the consumer never pops individual nodes, so the
//! classic ABA hazard of concurrent `pop` cannot arise.
//!
//! [`MpscQueue::push`] reports whether the queue was empty, and
//! [`MpscQueue::len`] is a monotonic gauge producers and observers may read
//! — both exist so callers can coalesce wakeups (signal an eventfd only on
//! the empty→sleeping transition) and export inbox depth as a statistic.

use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

struct Node<T> {
    value: T,
    next: *mut Node<T>,
}

/// A lock-free unbounded MPSC queue consumed in whole batches.
///
/// Any number of threads may call [`push`](MpscQueue::push) concurrently.
/// [`take_all`](MpscQueue::take_all) is safe to call from any thread too,
/// but the intended shape is a single consumer draining between waits.
pub struct MpscQueue<T> {
    /// Top of the Treiber stack (most recent push), or null when empty.
    head: AtomicPtr<Node<T>>,
    /// Approximate occupancy: incremented after a push lands, decremented
    /// in bulk by the drain. Reads are a gauge, never control flow.
    depth: AtomicUsize,
}

impl<T> MpscQueue<T> {
    pub fn new() -> MpscQueue<T> {
        MpscQueue {
            head: AtomicPtr::new(ptr::null_mut()),
            depth: AtomicUsize::new(0),
        }
    }

    /// Pushes `value`, returning `true` when the queue was observed empty —
    /// the transition a waker-coalescing caller cares about.
    pub fn push(&self, value: T) -> bool {
        let node = Box::into_raw(Box::new(Node {
            value,
            next: ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // Safe to write: the node is not yet visible to any other thread.
            unsafe { (*node).next = head };
            // SeqCst so a producer's push and a consumer's pre-sleep
            // emptiness check order against the sleeping flag they bracket.
            match self
                .head
                .compare_exchange(head, node, Ordering::SeqCst, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.depth.fetch_add(1, Ordering::Relaxed);
                    return head.is_null();
                }
                Err(current) => head = current,
            }
        }
    }

    /// Whether the queue currently has no messages.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::SeqCst).is_null()
    }

    /// Approximate number of queued messages (a statistics gauge: pushes
    /// and drains race the counter, so transient over/under-counts of a
    /// few messages are expected).
    pub fn len(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Detaches every queued message in one atomic swap and returns them in
    /// push order per producer.
    pub fn take_all(&self) -> Drain<T> {
        let taken = self.head.swap(ptr::null_mut(), Ordering::SeqCst);
        // Reverse the LIFO chain so iteration yields oldest-first.
        let mut reversed: *mut Node<T> = ptr::null_mut();
        let mut cursor = taken;
        let mut count = 0usize;
        while !cursor.is_null() {
            let next = unsafe { (*cursor).next };
            unsafe { (*cursor).next = reversed };
            reversed = cursor;
            cursor = next;
            count += 1;
        }
        if count > 0 {
            self.depth.fetch_sub(count, Ordering::Relaxed);
        }
        Drain { head: reversed }
    }
}

impl<T> Default for MpscQueue<T> {
    fn default() -> Self {
        MpscQueue::new()
    }
}

impl<T> Drop for MpscQueue<T> {
    fn drop(&mut self) {
        // Consume whatever is left so queued values drop exactly once.
        for value in self.take_all() {
            drop(value);
        }
    }
}

// The queue moves owned `T` values across threads; that is exactly a
// channel's requirement.
unsafe impl<T: Send> Send for MpscQueue<T> {}
unsafe impl<T: Send> Sync for MpscQueue<T> {}

/// Iterator over one detached batch of messages, oldest first. Dropping it
/// frees any messages not consumed.
pub struct Drain<T> {
    head: *mut Node<T>,
}

impl<T> Iterator for Drain<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if self.head.is_null() {
            return None;
        }
        // The chain was detached from the queue, so this iterator is the
        // sole owner of every node in it.
        let node = unsafe { Box::from_raw(self.head) };
        self.head = node.next;
        Some(node.value)
    }
}

impl<T> Drop for Drain<T> {
    fn drop(&mut self) {
        for node in self.by_ref() {
            drop(node);
        }
    }
}

unsafe impl<T: Send> Send for Drain<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_take_roundtrip_preserves_order() {
        let queue = MpscQueue::new();
        assert!(queue.is_empty());
        assert!(queue.push(1), "first push observes the empty queue");
        assert!(!queue.push(2), "second push observes a non-empty queue");
        assert!(!queue.push(3));
        assert_eq!(queue.len(), 3);
        let drained: Vec<i32> = queue.take_all().collect();
        assert_eq!(drained, vec![1, 2, 3]);
        assert!(queue.is_empty());
        assert_eq!(queue.len(), 0);
        assert!(queue.push(4), "emptied queue reports the transition again");
    }

    #[test]
    fn unconsumed_drain_and_queue_drop_release_everything() {
        // Messages still queued (or half-drained) when the queue goes away
        // must drop exactly once; `Arc` counts prove it.
        let payload = Arc::new(());
        {
            let queue = MpscQueue::new();
            for _ in 0..10 {
                queue.push(Arc::clone(&payload));
            }
            let mut drain = queue.take_all();
            let _ = drain.next();
            for _ in 0..5 {
                queue.push(Arc::clone(&payload));
            }
            // `drain` still holds 9, the queue holds 5; both drop here.
        }
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn concurrent_producers_lose_nothing_and_keep_per_producer_order() {
        const PRODUCERS: usize = 8;
        const PER_PRODUCER: usize = 10_000;
        let queue = Arc::new(MpscQueue::new());
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|producer| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    for seq in 0..PER_PRODUCER {
                        queue.push((producer, seq));
                    }
                })
            })
            .collect();
        // Consume concurrently with production, like an event loop would.
        let mut seen = [0usize; PRODUCERS];
        let mut total = 0usize;
        while total < PRODUCERS * PER_PRODUCER {
            for (producer, seq) in queue.take_all() {
                assert_eq!(
                    seq, seen[producer],
                    "producer {producer} messages arrived out of order"
                );
                seen[producer] += 1;
                total += 1;
            }
            std::thread::yield_now();
        }
        for producer in producers {
            producer.join().unwrap();
        }
        assert!(queue.is_empty());
        assert!(seen.iter().all(|&count| count == PER_PRODUCER));
    }
}
