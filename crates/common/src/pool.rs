//! Fixed-class buffer pooling for the allocation-free steady-state path.
//!
//! The hot path of a small invocation touches the global allocator many
//! times: HTTP header assembly, output-descriptor frames, and every
//! [`MemoryContext`](https://en.wikipedia.org/wiki/Region-based_memory_management)
//! arena used to be a fresh `Vec<u8>` that was freed again microseconds
//! later. The [`BufferPool`] replaces those churn allocations with a small
//! slab of reusable buffers in a handful of fixed size classes: `acquire`
//! pops a cleared buffer of at least the requested capacity (or allocates
//! one of the class size on a miss) and `recycle` returns it for the next
//! invocation.
//!
//! Every acquisition is stamped with a process-wide monotonically increasing
//! *generation tag*. The tag uniquely identifies one ownership interval of a
//! buffer: two live handles can never carry the same generation, which is
//! what the aliasing stress test asserts while hammering the pool from many
//! threads. Buffers that out-grow the largest class (or arrive while the
//! class is full) are simply dropped to the global allocator — the pool is
//! an opportunistic fast path, never a correctness dependency.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// The pooled size classes in bytes. Requests are rounded up to the next
/// class; buffers above the largest class bypass the pool.
pub const SIZE_CLASSES: [usize; 6] = [
    4 * 1024,
    16 * 1024,
    64 * 1024,
    256 * 1024,
    1024 * 1024,
    4 * 1024 * 1024,
];

/// Maximum buffers retained per size class; excess recycles are dropped.
const PER_CLASS_LIMIT: usize = 64;

/// Counters describing pool behaviour; snapshot via [`BufferPool::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total `acquire` calls.
    pub acquires: u64,
    /// Acquires served from a recycled buffer (no allocation).
    pub reuses: u64,
    /// Acquires that had to allocate (pool miss or oversized request).
    pub allocations: u64,
    /// Buffers returned to a class for reuse.
    pub recycled: u64,
    /// Returned buffers dropped (oversized, undersized or class full).
    pub discarded: u64,
}

std::thread_local! {
    /// One-buffer-per-class thread-local cache in front of the *global*
    /// pool's shared slabs. An engine thread's steady-state loop
    /// (acquire → freeze → ship → last-view drop → recycle) stays on one
    /// thread, so the common case needs no lock at all.
    static THREAD_CACHE: std::cell::RefCell<[Option<Vec<u8>>; SIZE_CLASSES.len()]> =
        const { std::cell::RefCell::new([None, None, None, None, None, None]) };
}

/// A slab of reusable fixed-class byte buffers.
pub struct BufferPool {
    classes: Vec<Mutex<Vec<Vec<u8>>>>,
    /// Whether this pool fronts its shared slabs with the thread-local
    /// cache. Only the process-wide global pool does; private pools (tests)
    /// keep fully deterministic, observable behaviour.
    thread_cached: bool,
    generation: AtomicU64,
    acquires: AtomicU64,
    reuses: AtomicU64,
    allocations: AtomicU64,
    recycled: AtomicU64,
    discarded: AtomicU64,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self {
            classes: SIZE_CLASSES
                .iter()
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            thread_cached: false,
            generation: AtomicU64::new(0),
            acquires: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            allocations: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
        }
    }

    /// The process-wide pool shared by builders and memory contexts.
    ///
    /// Returned by reference to the shared [`Arc`], so owners that outlive a
    /// scope (memory contexts, long-lived builders) can clone the handle.
    pub fn global() -> &'static Arc<BufferPool> {
        static GLOBAL: OnceLock<Arc<BufferPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let mut pool = BufferPool::new();
            pool.thread_cached = true;
            Arc::new(pool)
        })
    }

    fn class_lock(&self, class: usize) -> MutexGuard<'_, Vec<Vec<u8>>> {
        self.classes[class]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The smallest class whose buffers can hold `capacity` bytes.
    fn class_for_acquire(capacity: usize) -> Option<usize> {
        SIZE_CLASSES.iter().position(|&size| size >= capacity)
    }

    /// The largest class a buffer of `capacity` bytes can serve.
    fn class_for_recycle(capacity: usize) -> Option<usize> {
        SIZE_CLASSES
            .iter()
            .rposition(|&size| size <= capacity)
            .filter(|_| capacity <= 2 * SIZE_CLASSES[SIZE_CLASSES.len() - 1])
    }

    /// Pops (or allocates) an empty buffer with capacity for at least
    /// `min_capacity` bytes, stamped with a fresh generation tag.
    ///
    /// The returned vector always has `len() == 0`; recycled buffers are
    /// cleared before they are handed out, so no bytes from a previous
    /// owner are ever visible.
    pub fn acquire(&self, min_capacity: usize) -> PooledBuf {
        self.acquires.fetch_add(1, Ordering::Relaxed);
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        let vec = match Self::class_for_acquire(min_capacity) {
            Some(class) => match self.pop_class(class, min_capacity) {
                Some(vec) => {
                    self.reuses.fetch_add(1, Ordering::Relaxed);
                    vec
                }
                None => {
                    self.allocations.fetch_add(1, Ordering::Relaxed);
                    Vec::with_capacity(SIZE_CLASSES[class])
                }
            },
            // Oversized request: plain allocation, never pooled on return.
            None => {
                self.allocations.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(min_capacity)
            }
        };
        debug_assert!(vec.is_empty());
        PooledBuf { vec, generation }
    }

    /// Like [`BufferPool::acquire`] but returns the raw vector for owners
    /// that embed it in their own structures (e.g. a memory context arena).
    pub fn acquire_vec(&self, min_capacity: usize) -> Vec<u8> {
        self.acquire(min_capacity).detach()
    }

    /// Returns a buffer to the pool for reuse.
    ///
    /// The buffer is cleared and filed under the largest class its capacity
    /// can serve; empty-capacity, undersized, grossly oversized buffers and
    /// buffers arriving at a full class are dropped instead.
    pub fn recycle_vec(&self, mut vec: Vec<u8>) {
        if vec.capacity() == 0 {
            return;
        }
        let Some(class) = Self::class_for_recycle(vec.capacity()) else {
            self.discarded.fetch_add(1, Ordering::Relaxed);
            return;
        };
        vec.clear();
        // Fast path: park the buffer in this thread's cache slot.
        if self.thread_cached {
            let parked = THREAD_CACHE.with(|cache| {
                let mut cache = cache.borrow_mut();
                if cache[class].is_none() {
                    cache[class] = Some(std::mem::take(&mut vec));
                    true
                } else {
                    false
                }
            });
            if parked {
                self.recycled.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let mut slab = self.class_lock(class);
        if slab.len() >= PER_CLASS_LIMIT {
            self.discarded.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slab.push(vec);
        self.recycled.fetch_add(1, Ordering::Relaxed);
    }

    /// Pops a buffer able to hold `min_capacity` from the thread cache (when
    /// enabled) or the shared slab of `class`.
    fn pop_class(&self, class: usize, min_capacity: usize) -> Option<Vec<u8>> {
        if self.thread_cached {
            let cached = THREAD_CACHE.with(|cache| {
                let mut cache = cache.borrow_mut();
                // The exact class, or any larger cached buffer that fits.
                (class..SIZE_CLASSES.len()).find_map(|candidate| {
                    cache[candidate]
                        .as_ref()
                        .is_some_and(|vec| vec.capacity() >= min_capacity)
                        .then(|| cache[candidate].take().expect("checked above"))
                })
            });
            if cached.is_some() {
                return cached;
            }
        }
        self.class_lock(class).pop()
    }

    /// A point-in-time snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            acquires: self.acquires.load(Ordering::Relaxed),
            reuses: self.reuses.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
        }
    }

    /// Number of buffers currently parked in the pool across all classes.
    pub fn pooled_buffers(&self) -> usize {
        (0..SIZE_CLASSES.len())
            .map(|class| self.class_lock(class).len())
            .sum()
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("pooled_buffers", &self.pooled_buffers())
            .field("stats", &self.stats())
            .finish()
    }
}

/// An acquired pool buffer: an empty `Vec<u8>` plus the generation tag of
/// this ownership interval.
///
/// The handle intentionally does *not* auto-recycle on drop — ownership of
/// the allocation usually migrates (into a frozen `SharedBytes`, a context
/// arena, …) and the final owner decides whether the buffer flows back via
/// [`BufferPool::recycle_vec`]. Dropping the handle simply frees the buffer.
#[derive(Debug)]
pub struct PooledBuf {
    vec: Vec<u8>,
    generation: u64,
}

impl PooledBuf {
    /// The generation tag stamped at acquisition. Strictly increasing across
    /// all acquires of the pool, so no two live handles share a tag.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Extracts the buffer, consuming the handle.
    pub fn detach(self) -> Vec<u8> {
        self.vec
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;

    fn deref(&self) -> &Vec<u8> {
        &self.vec
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.vec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_rounds_up_to_a_class() {
        let pool = BufferPool::new();
        let buf = pool.acquire(10);
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), SIZE_CLASSES[0]);
        let buf = pool.acquire(SIZE_CLASSES[0] + 1);
        assert_eq!(buf.capacity(), SIZE_CLASSES[1]);
    }

    #[test]
    fn recycle_then_acquire_reuses_the_allocation() {
        let pool = BufferPool::new();
        let mut vec = pool.acquire_vec(4096);
        vec.extend_from_slice(&[7u8; 100]);
        let ptr = vec.as_ptr();
        pool.recycle_vec(vec);
        let again = pool.acquire_vec(4096);
        assert_eq!(again.as_ptr(), ptr, "pool must hand back the same buffer");
        assert!(again.is_empty(), "recycled buffers are cleared");
        let stats = pool.stats();
        assert_eq!(stats.acquires, 2);
        assert_eq!(stats.reuses, 1);
        assert_eq!(stats.allocations, 1);
        assert_eq!(stats.recycled, 1);
    }

    #[test]
    fn oversized_buffers_bypass_the_pool() {
        let pool = BufferPool::new();
        let huge = pool.acquire_vec(64 * 1024 * 1024);
        assert!(huge.capacity() >= 64 * 1024 * 1024);
        pool.recycle_vec(huge);
        assert_eq!(pool.pooled_buffers(), 0);
        assert_eq!(pool.stats().discarded, 1);
    }

    #[test]
    fn tiny_and_empty_returns_are_dropped_quietly() {
        let pool = BufferPool::new();
        pool.recycle_vec(Vec::new());
        pool.recycle_vec(Vec::with_capacity(16));
        assert_eq!(pool.pooled_buffers(), 0);
    }

    #[test]
    fn class_overflow_discards() {
        let pool = BufferPool::new();
        for _ in 0..PER_CLASS_LIMIT + 5 {
            pool.recycle_vec(Vec::with_capacity(SIZE_CLASSES[0]));
        }
        assert_eq!(pool.pooled_buffers(), PER_CLASS_LIMIT);
        assert_eq!(pool.stats().discarded, 5);
    }

    #[test]
    fn generations_are_unique_and_increasing() {
        let pool = BufferPool::new();
        let a = pool.acquire(64);
        let b = pool.acquire(64);
        assert!(b.generation() > a.generation());
        let vec = a.detach();
        pool.recycle_vec(vec);
        let c = pool.acquire(64);
        assert!(c.generation() > b.generation());
    }

    fn thread_cached_pool() -> BufferPool {
        let mut pool = BufferPool::new();
        pool.thread_cached = true;
        pool
    }

    #[test]
    fn thread_cache_round_trips_cleared_buffers() {
        let pool = thread_cached_pool();
        let mut vec = pool.acquire_vec(4096);
        vec.extend_from_slice(&[9u8; 64]);
        let ptr = vec.as_ptr();
        pool.recycle_vec(vec);
        // Served from the thread cache: same allocation, cleared.
        let again = pool.acquire_vec(4096);
        assert_eq!(again.as_ptr(), ptr);
        assert!(again.is_empty(), "cached buffers must arrive cleared");
        assert_eq!(pool.stats().reuses, 1);
    }

    #[test]
    fn thread_cache_never_serves_undersized_buffers() {
        let pool = thread_cached_pool();
        // Park a small-class buffer in the cache...
        pool.recycle_vec(pool.acquire_vec(SIZE_CLASSES[0]));
        // ...then ask for more than it can hold: the cache must be skipped.
        let big = pool.acquire_vec(SIZE_CLASSES[1]);
        assert!(big.capacity() >= SIZE_CLASSES[1]);
        // A smaller request is served from the cache (the class-0 buffer
        // parked above fits it exactly).
        pool.recycle_vec(big);
        let small = pool.acquire_vec(SIZE_CLASSES[0]);
        assert!(small.capacity() >= SIZE_CLASSES[0]);
        // With class 0 drained, the larger cached buffer serves the next
        // small request too.
        let from_larger = pool.acquire_vec(SIZE_CLASSES[0]);
        assert!(from_larger.capacity() >= SIZE_CLASSES[1]);
    }

    #[test]
    fn thread_cached_pool_never_aliases_under_concurrency() {
        // The same aliasing invariant the properties stress test proves for
        // shared slabs, but through the thread-local fast path production
        // uses: generation-stamped patterns must survive other threads'
        // traffic, and no two live handles may share a generation.
        let pool = Arc::new(thread_cached_pool());
        let threads: Vec<_> = (0..4)
            .map(|worker| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for round in 0..300u64 {
                        let mut buf = pool.acquire(4096);
                        let generation = buf.generation();
                        assert!(buf.is_empty());
                        let fill = 512 + ((worker + round) % 64) as usize;
                        buf.extend((0..fill).map(|i| (generation as usize + i) as u8));
                        std::thread::yield_now();
                        for (i, byte) in buf.iter().enumerate() {
                            assert_eq!(
                                *byte,
                                (generation as usize + i) as u8,
                                "aliased buffer, generation {generation}"
                            );
                        }
                        pool.recycle_vec(buf.detach());
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().expect("no worker panics");
        }
        let stats = pool.stats();
        assert_eq!(stats.acquires, 4 * 300);
        assert!(stats.reuses > 0, "the fast path must actually recycle");
    }

    #[test]
    fn grown_buffers_refile_into_a_larger_class() {
        let pool = BufferPool::new();
        let mut vec = pool.acquire_vec(4096);
        // Grow past the acquired class, as a context arena would.
        vec.resize(SIZE_CLASSES[2] + 10, 0);
        let capacity = vec.capacity();
        pool.recycle_vec(vec);
        assert_eq!(pool.pooled_buffers(), 1);
        // The refiled buffer serves requests up to its real capacity class.
        let again = pool.acquire_vec(SIZE_CLASSES[2]);
        assert!(again.capacity() >= SIZE_CLASSES[2]);
        assert_eq!(again.capacity(), capacity);
    }
}
