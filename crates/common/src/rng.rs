//! Deterministic random number generation and workload distributions.
//!
//! The simulator and the trace generator need reproducible randomness: given
//! the same seed they must produce the same workload on every run, so that
//! experiment output is stable across machines. [`SplitMix64`] is a tiny,
//! high-quality generator suited for that purpose; the distribution helpers
//! cover the shapes used by the Azure Functions workload model (exponential
//! inter-arrivals, log-normal durations and memory sizes, Pareto-like
//! popularity skew).

/// A deterministic 64-bit pseudo random number generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniformly distributed double.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns a uniform value in `[low, high)`.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        low + (high - low) * self.next_f64()
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Modulo bias is negligible for the bounds used here (≪ 2^32).
        self.next_u64() % bound
    }

    /// Returns `true` with the given probability.
    pub fn bernoulli(&mut self, probability: f64) -> bool {
        self.next_f64() < probability
    }

    /// Samples an exponentially distributed value with the given rate (λ).
    ///
    /// Used for Poisson-process inter-arrival times: `mean = 1 / rate`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        let uniform = 1.0 - self.next_f64();
        -uniform.ln() / rate
    }

    /// Samples a standard normal value using the Box-Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Samples a normal value with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Samples a log-normal value parameterized by the underlying normal's
    /// `mu` and `sigma`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Samples a Pareto distributed value with scale `x_min` and shape `alpha`.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        debug_assert!(x_min > 0.0 && alpha > 0.0);
        let uniform = 1.0 - self.next_f64();
        x_min / uniform.powf(1.0 / alpha)
    }

    /// Samples a Poisson-distributed count with the given mean.
    ///
    /// Uses Knuth's algorithm for small means and a normal approximation for
    /// large ones, which is accurate enough for workload generation.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        if mean > 64.0 {
            let sample = self.normal(mean, mean.sqrt()).round();
            return sample.max(0.0) as u64;
        }
        let limit = (-mean).exp();
        let mut count = 0u64;
        let mut product = self.next_f64();
        while product > limit {
            count += 1;
            product *= self.next_f64();
        }
        count
    }

    /// Picks an index in `[0, weights.len())` proportionally to `weights`.
    ///
    /// Returns `None` when weights are empty or sum to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().sum();
        if weights.is_empty() || total <= 0.0 {
            return None;
        }
        let mut target = self.next_f64() * total;
        for (index, weight) in weights.iter().enumerate() {
            target -= weight;
            if target <= 0.0 {
                return Some(index);
            }
        }
        Some(weights.len() - 1)
    }

    /// Shuffles a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, values: &mut [T]) {
        if values.is_empty() {
            return;
        }
        for index in (1..values.len()).rev() {
            let other = self.next_bounded(index as u64 + 1) as usize;
            values.swap(index, other);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let value = rng.next_f64();
            assert!((0.0..1.0).contains(&value));
            let scaled = rng.uniform(5.0, 10.0);
            assert!((5.0..10.0).contains(&scaled));
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SplitMix64::new(11);
        let rate = 4.0;
        let samples = 50_000;
        let mean: f64 = (0..samples).map(|_| rng.exponential(rate)).sum::<f64>() / samples as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn normal_mean_and_std() {
        let mut rng = SplitMix64::new(13);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let variance =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.1);
        assert!((variance.sqrt() - 2.0).abs() < 0.1);
    }

    #[test]
    fn poisson_mean_converges() {
        let mut rng = SplitMix64::new(17);
        let mean_small: f64 = (0..20_000).map(|_| rng.poisson(3.0) as f64).sum::<f64>() / 20_000.0;
        assert!((mean_small - 3.0).abs() < 0.1);
        let mean_large: f64 =
            (0..20_000).map(|_| rng.poisson(200.0) as f64).sum::<f64>() / 20_000.0;
        assert!((mean_large - 200.0).abs() < 2.0);
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let mut rng = SplitMix64::new(19);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.pareto(1.0, 1.5)).collect();
        assert!(samples.iter().all(|sample| *sample >= 1.0));
        let max = samples.iter().cloned().fold(0.0, f64::max);
        assert!(max > 10.0, "expected a heavy tail, max was {max}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SplitMix64::new(23);
        let weights = [0.0, 0.0, 1.0];
        for _ in 0..100 {
            assert_eq!(rng.weighted_index(&weights), Some(2));
        }
        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);

        let weights = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights).unwrap()] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio was {ratio}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(29);
        let mut values: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(values, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SplitMix64::new(31);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
    }
}
