//! `Rope`: a multi-part payload as a list of [`SharedBytes`] views.
//!
//! Serializing a message used to mean flattening every part into one fresh
//! `Vec<u8>` — for an HTTP response that is a memcpy of the whole body just
//! to prepend a few dozen header bytes. A [`Rope`] instead keeps the parts
//! as zero-copy segments (in the style of the `bytes` crate's `Buf` chains):
//! builders contribute a frozen header block, payloads attach by reference,
//! and delivery walks the segments with a vectored [`Rope::write_to`] — no
//! flattening on the steady-state path. [`Rope::into_shared`] collapses to a
//! single contiguous view only when a caller really needs one, with exactly
//! one exact-capacity copy (and none at all for single-segment ropes).
//!
//! The first two segments are stored inline, so the common head+body
//! message is built and delivered without touching the allocator at all.

use std::io::{self, IoSlice, Write};

use crate::bytes::{SharedBytes, SharedBytesMut};

/// One rope segment: a frozen zero-copy view, or a still-mutable builder
/// whose pooled buffer is carried through delivery and recycled when the
/// rope drops (no `Arc` is ever allocated for it).
#[derive(Debug, Clone)]
enum Segment {
    Shared(SharedBytes),
    Builder(SharedBytesMut),
}

impl Segment {
    fn as_slice(&self) -> &[u8] {
        match self {
            Segment::Shared(shared) => shared.as_slice(),
            Segment::Builder(builder) => builder.as_slice(),
        }
    }
}

/// A byte sequence stored as zero-copy segments.
#[derive(Debug, Clone, Default)]
pub struct Rope {
    /// Inline storage for the first two segments (head + body needs no
    /// heap); `rest` spills further segments and is `Vec::new()` (no
    /// allocation) until then.
    first: Option<Segment>,
    second: Option<Segment>,
    rest: Vec<Segment>,
    len: usize,
}

impl Rope {
    /// An empty rope.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes across all segments.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the rope holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        usize::from(self.first.is_some()) + usize::from(self.second.is_some()) + self.rest.len()
    }

    /// Iterates over the segments' bytes in order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.segments().map(Segment::as_slice)
    }

    fn segments(&self) -> impl Iterator<Item = &Segment> {
        self.first
            .iter()
            .chain(self.second.iter())
            .chain(self.rest.iter())
    }

    /// Iterates over the frozen zero-copy segments (builder segments are
    /// skipped) — the view the `same_buffer` sharing assertions inspect.
    pub fn shared_segments(&self) -> impl Iterator<Item = &SharedBytes> {
        self.segments().filter_map(|segment| match segment {
            Segment::Shared(shared) => Some(shared),
            Segment::Builder(_) => None,
        })
    }

    /// The last segment, if it is a frozen view (`None` for builders).
    pub fn last_segment(&self) -> Option<&SharedBytes> {
        match self
            .rest
            .last()
            .or(self.second.as_ref())
            .or(self.first.as_ref())
        {
            Some(Segment::Shared(shared)) => Some(shared),
            _ => None,
        }
    }

    fn push_segment(&mut self, segment: Segment) {
        if self.first.is_none() {
            self.first = Some(segment);
        } else if self.second.is_none() {
            self.second = Some(segment);
        } else {
            self.rest.push(segment);
        }
    }

    fn last_segment_mut(&mut self) -> Option<&mut Segment> {
        if !self.rest.is_empty() {
            self.rest.last_mut()
        } else if self.second.is_some() {
            self.second.as_mut()
        } else {
            self.first.as_mut()
        }
    }

    /// Attaches a segment by reference (no copy). Empty segments are
    /// skipped; a segment contiguous with the previous one in the same
    /// buffer is merged into it, so repeated slicing does not fragment the
    /// rope.
    pub fn push(&mut self, segment: SharedBytes) {
        if segment.is_empty() {
            return;
        }
        self.len += segment.len();
        if let Some(Segment::Shared(last)) = self.last_segment_mut() {
            if let Some(merged) = last.try_merge(&segment) {
                *last = merged;
                return;
            }
        }
        self.push_segment(Segment::Shared(segment));
    }

    /// Attaches a builder's bytes *without freezing them*: no `Arc` is
    /// allocated, and the pooled buffer flows back to the pool when the
    /// rope is dropped after delivery. This is how message heads travel.
    pub fn push_builder(&mut self, builder: SharedBytesMut) {
        if builder.is_empty() {
            return;
        }
        self.len += builder.len();
        self.push_segment(Segment::Builder(builder));
    }

    /// Reads the byte at `offset`, if in bounds.
    pub fn byte_at(&self, mut offset: usize) -> Option<u8> {
        for segment in self.iter() {
            if offset < segment.len() {
                return Some(segment[offset]);
            }
            offset -= segment.len();
        }
        None
    }

    /// Copies `dest.len()` bytes starting at `offset` into `dest`,
    /// crossing segment boundaries as needed.
    ///
    /// # Panics
    ///
    /// Panics if `offset + dest.len()` exceeds the rope length, mirroring
    /// slice indexing.
    pub fn copy_range_to(&self, offset: usize, dest: &mut [u8]) {
        assert!(
            offset
                .checked_add(dest.len())
                .is_some_and(|end| end <= self.len),
            "range {offset}..{} out of bounds for Rope of length {}",
            offset + dest.len(),
            self.len
        );
        let mut skip = offset;
        let mut filled = 0;
        for segment in self.iter() {
            if skip >= segment.len() {
                skip -= segment.len();
                continue;
            }
            let available = &segment[skip..];
            skip = 0;
            let take = available.len().min(dest.len() - filled);
            dest[filled..filled + take].copy_from_slice(&available[..take]);
            filled += take;
            if filled == dest.len() {
                break;
            }
        }
    }

    /// Flattens the rope into an owned vector with exactly one exact-size
    /// allocation.
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        for segment in self.iter() {
            out.extend_from_slice(segment);
        }
        out
    }

    /// Collapses the rope into one contiguous [`SharedBytes`].
    ///
    /// Zero-copy for empty and single-segment ropes (the segment is handed
    /// through unchanged); multi-segment ropes are flattened with one
    /// exact-capacity copy.
    pub fn into_shared(mut self) -> SharedBytes {
        match self.segment_count() {
            0 => SharedBytes::new(),
            1 => match self.first.take().expect("sole segment is stored inline") {
                Segment::Shared(shared) => shared,
                Segment::Builder(builder) => builder.freeze(),
            },
            _ => SharedBytes::from_vec(self.to_vec()),
        }
    }

    /// Writes every segment to `writer` with vectored I/O, retrying partial
    /// writes until the whole rope is delivered.
    ///
    /// Ropes of up to eight segments build their `IoSlice` table on the
    /// stack, so steady-state delivery does not allocate.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        const INLINE_SEGMENTS: usize = 8;
        let count = self.segment_count();
        let mut inline = [IoSlice::new(&[]); INLINE_SEGMENTS];
        let mut heap: Vec<IoSlice<'_>>;
        let slices: &mut [IoSlice<'_>] = if count <= INLINE_SEGMENTS {
            for (slot, segment) in inline.iter_mut().zip(self.iter()) {
                *slot = IoSlice::new(segment);
            }
            &mut inline[..count]
        } else {
            heap = self.iter().map(IoSlice::new).collect();
            &mut heap
        };
        let mut remaining: &mut [IoSlice<'_>] = slices;
        let mut written_of_first = 0usize;
        while !remaining.is_empty() {
            // Partial first segment: vectored writes cannot express an
            // offset, so finish it with a plain write first.
            if written_of_first > 0 {
                let first = &remaining[0][written_of_first..];
                let n = writer.write(first)?;
                if n == 0 {
                    return Err(io::ErrorKind::WriteZero.into());
                }
                written_of_first += n;
                if written_of_first == remaining[0].len() {
                    remaining = &mut remaining[1..];
                    written_of_first = 0;
                }
                continue;
            }
            let mut n = writer.write_vectored(remaining)?;
            if n == 0 {
                return Err(io::ErrorKind::WriteZero.into());
            }
            while n > 0 && !remaining.is_empty() {
                if n >= remaining[0].len() {
                    n -= remaining[0].len();
                    remaining = &mut remaining[1..];
                } else {
                    written_of_first = n;
                    n = 0;
                }
            }
        }
        Ok(())
    }
}

impl Rope {
    /// Performs **one** vectored write of the rope's suffix starting at byte
    /// `offset`, returning how many bytes the writer accepted.
    ///
    /// This is the readiness-driven sibling of [`Rope::write_to`]: a
    /// non-blocking socket accepts however many bytes fit in its send buffer
    /// and then fails with [`WouldBlock`](io::ErrorKind::WouldBlock); the
    /// caller remembers the new offset and retries when the socket signals
    /// writability. The segments themselves are never touched — resuming a
    /// partial write re-slices the same zero-copy views, so `Arc` identity
    /// of every payload segment survives any interleaving of partial writes.
    ///
    /// Returns `Ok(0)` when `offset` is already at the end of the rope.
    pub fn write_vectored_at<W: Write>(&self, writer: &mut W, offset: usize) -> io::Result<usize> {
        const INLINE_SEGMENTS: usize = 8;
        if offset >= self.len {
            return Ok(0);
        }
        // Build the IoSlice table for the unwritten suffix: skip whole
        // segments covered by `offset`, trim the first partially written one.
        let mut skip = offset;
        let mut inline = [IoSlice::new(&[]); INLINE_SEGMENTS];
        let mut heap: Vec<IoSlice<'_>> = Vec::new();
        let mut count = 0usize;
        for segment in self.iter() {
            if skip >= segment.len() {
                skip -= segment.len();
                continue;
            }
            let slice = IoSlice::new(&segment[skip..]);
            skip = 0;
            if count < INLINE_SEGMENTS {
                inline[count] = slice;
            } else {
                if heap.is_empty() {
                    heap.reserve(self.segment_count());
                    heap.extend_from_slice(&inline[..count]);
                }
                heap.push(slice);
            }
            count += 1;
        }
        let slices: &[IoSlice<'_>] = if heap.is_empty() {
            &inline[..count]
        } else {
            &heap
        };
        writer.write_vectored(slices)
    }
}

/// A resumable write cursor over a [`Rope`].
///
/// Event-loop servers write responses to non-blocking sockets: the kernel
/// accepts part of the message and the rest must be retried when the socket
/// becomes writable again. A `RopeWriter` owns the rope and the number of
/// bytes already delivered; [`RopeWriter::write_some`] pushes the remainder
/// with vectored writes until the message completes or the writer would
/// block. The rope's zero-copy segments are carried untouched across
/// suspensions — a payload attached by reference is still the same
/// allocation when the final byte leaves.
#[derive(Debug)]
pub struct RopeWriter {
    rope: Rope,
    written: usize,
}

impl RopeWriter {
    /// Wraps a rope in a cursor positioned at its first byte.
    pub fn new(rope: Rope) -> Self {
        Self { rope, written: 0 }
    }

    /// The rope being delivered (segments are never modified by writing).
    pub fn rope(&self) -> &Rope {
        &self.rope
    }

    /// Bytes already accepted by the writer.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Bytes not yet delivered.
    pub fn remaining(&self) -> usize {
        self.rope.len() - self.written
    }

    /// Returns `true` once every byte has been delivered.
    pub fn is_finished(&self) -> bool {
        self.written >= self.rope.len()
    }

    /// Writes as much of the remainder as the writer accepts.
    ///
    /// Returns `Ok(true)` when the rope is fully delivered and `Ok(false)`
    /// when the writer signalled [`WouldBlock`](io::ErrorKind::WouldBlock) —
    /// call again when the destination is writable. `Interrupted` writes are
    /// retried internally; a writer that accepts zero bytes without an error
    /// yields [`WriteZero`](io::ErrorKind::WriteZero) like [`Rope::write_to`].
    pub fn write_some<W: Write>(&mut self, writer: &mut W) -> io::Result<bool> {
        loop {
            if self.is_finished() {
                return Ok(true);
            }
            match self.rope.write_vectored_at(writer, self.written) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.written += n,
                Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(error) => return Err(error),
            }
        }
    }
}

impl From<SharedBytes> for Rope {
    fn from(segment: SharedBytes) -> Self {
        let mut rope = Rope::new();
        rope.push(segment);
        rope
    }
}

impl FromIterator<SharedBytes> for Rope {
    fn from_iter<I: IntoIterator<Item = SharedBytes>>(iter: I) -> Self {
        let mut rope = Rope::new();
        for segment in iter {
            rope.push(segment);
        }
        rope
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Rope {
        let mut rope = Rope::new();
        rope.push(SharedBytes::from("hello "));
        rope.push(SharedBytes::from("rope "));
        rope.push(SharedBytes::from("world"));
        rope
    }

    #[test]
    fn push_tracks_length_and_skips_empties() {
        let mut rope = Rope::new();
        assert!(rope.is_empty());
        rope.push(SharedBytes::new());
        assert!(rope.is_empty());
        rope.push(SharedBytes::from("abc"));
        assert_eq!(rope.len(), 3);
        assert_eq!(rope.segment_count(), 1);
    }

    #[test]
    fn segments_spill_beyond_the_inline_pair() {
        let mut rope = Rope::new();
        for text in ["a", "bb", "ccc", "dddd", "eeeee"] {
            rope.push(SharedBytes::from(text));
        }
        assert_eq!(rope.segment_count(), 5);
        assert_eq!(rope.len(), 15);
        assert_eq!(rope.to_vec(), b"abbcccddddeeeee");
        assert_eq!(rope.last_segment().unwrap().as_slice(), b"eeeee");
        let collected: Vec<&[u8]> = rope.iter().collect();
        assert_eq!(collected.len(), 5);
        assert_eq!(collected[0], b"a");
    }

    #[test]
    fn adjacent_views_merge_instead_of_fragmenting() {
        let whole = SharedBytes::from("abcdef");
        let (left, right) = whole.split_at(3);
        let mut rope = Rope::new();
        rope.push(left);
        rope.push(right);
        assert_eq!(rope.segment_count(), 1);
        assert!(SharedBytes::same_buffer(
            rope.last_segment().unwrap(),
            &whole
        ));
        assert_eq!(rope.to_vec(), b"abcdef");
    }

    #[test]
    fn cross_segment_reads() {
        let rope = sample();
        assert_eq!(rope.len(), 16);
        assert_eq!(rope.byte_at(0), Some(b'h'));
        assert_eq!(rope.byte_at(6), Some(b'r'));
        assert_eq!(rope.byte_at(15), Some(b'd'));
        assert_eq!(rope.byte_at(16), None);
        let mut mid = [0u8; 7];
        rope.copy_range_to(4, &mut mid);
        assert_eq!(&mid, b"o rope ");
        assert_eq!(rope.to_vec(), b"hello rope world");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_copy_panics() {
        sample().copy_range_to(10, &mut [0u8; 10]);
    }

    #[test]
    fn into_shared_is_zero_copy_for_single_segments() {
        let payload = SharedBytes::from_vec(vec![1u8; 512]);
        let rope: Rope = Rope::from(payload.clone());
        let collapsed = rope.into_shared();
        assert!(SharedBytes::same_buffer(&collapsed, &payload));
        assert!(Rope::new().into_shared().is_empty());
        let multi = sample().into_shared();
        assert_eq!(multi, b"hello rope world"[..]);
    }

    #[test]
    fn write_to_delivers_every_segment() {
        let rope = sample();
        let mut out = Vec::new();
        rope.write_to(&mut out).unwrap();
        assert_eq!(out, b"hello rope world");
        // More segments than the inline IoSlice table holds.
        let mut many = Rope::new();
        for index in 0u8..20 {
            many.push(SharedBytes::from_vec(vec![index; 3]));
        }
        let mut out = Vec::new();
        many.write_to(&mut out).unwrap();
        assert_eq!(out.len(), 60);
        assert_eq!(out, many.to_vec());
    }

    /// A writer that accepts one byte per call, forcing the partial-write
    /// resumption paths.
    struct Trickle(Vec<u8>);

    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            self.0.push(buf[0]);
            Ok(1)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_to_handles_partial_writes() {
        let rope = sample();
        let mut trickle = Trickle(Vec::new());
        rope.write_to(&mut trickle).unwrap();
        assert_eq!(trickle.0, b"hello rope world");
    }

    /// A writer that accepts at most `quota` bytes per readiness window and
    /// then reports `WouldBlock` until the next `write_some` call.
    struct Choppy {
        out: Vec<u8>,
        quota: usize,
        left: usize,
    }

    impl Choppy {
        fn new(quota: usize) -> Self {
            Self {
                out: Vec::new(),
                quota,
                left: quota,
            }
        }
    }

    impl Write for Choppy {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.left == 0 {
                self.left = self.quota;
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let take = buf.len().min(self.left);
            self.left -= take;
            self.out.extend_from_slice(&buf[..take]);
            Ok(take)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_vectored_at_resumes_mid_segment_and_mid_rope() {
        let rope = sample();
        let reference = rope.to_vec();
        for offset in 0..=rope.len() {
            let mut out = Vec::new();
            let written = rope.write_vectored_at(&mut out, offset).unwrap();
            assert!(offset == rope.len() || written > 0);
            assert_eq!(out, &reference[offset..offset + written]);
        }
    }

    #[test]
    fn rope_writer_resumes_across_would_block_for_every_quota() {
        let rope = sample();
        let reference = rope.to_vec();
        for quota in 1..=reference.len() {
            let mut writer = RopeWriter::new(rope.clone());
            let mut choppy = Choppy::new(quota);
            let mut rounds = 0;
            while !writer.write_some(&mut choppy).unwrap() {
                rounds += 1;
                assert!(rounds < 10_000, "quota {quota} did not make progress");
            }
            assert!(writer.is_finished());
            assert_eq!(writer.remaining(), 0);
            assert_eq!(choppy.out, reference, "quota {quota} diverged");
        }
    }

    #[test]
    fn rope_writer_keeps_segments_by_reference_across_suspension() {
        let payload = SharedBytes::from_vec(vec![7u8; 64]);
        let mut rope = Rope::new();
        rope.push(SharedBytes::from("head:"));
        rope.push(payload.clone());
        let mut writer = RopeWriter::new(rope);
        let mut choppy = Choppy::new(9);
        while !writer.write_some(&mut choppy).unwrap() {}
        // The body segment is still the caller's allocation after delivery
        // resumed mid-payload — no copy was made to suspend the write.
        assert!(SharedBytes::same_buffer(
            writer.rope().last_segment().unwrap(),
            &payload
        ));
        assert_eq!(choppy.out.len(), writer.rope().len());
    }

    #[test]
    fn builders_attach_frozen() {
        let mut builder = SharedBytesMut::with_capacity(16);
        builder.put_str("head:");
        let mut rope = Rope::new();
        rope.push_builder(builder);
        rope.push(SharedBytes::from("body"));
        assert_eq!(rope.to_vec(), b"head:body");
    }

    #[test]
    fn from_iterator_collects_segments() {
        let rope: Rope = ["a", "bb", "ccc"]
            .into_iter()
            .map(SharedBytes::from)
            .collect();
        assert_eq!(rope.len(), 6);
        assert_eq!(rope.to_vec(), b"abbccc");
    }
}
