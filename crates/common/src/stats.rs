//! Latency recorders, percentile summaries and time series.
//!
//! The evaluation of the paper reports tail latencies (p99, p99.5), medians
//! with p5/p95 error bars, averages, relative variance, and committed-memory
//! time series. This module provides the small statistics toolkit used by the
//! simulator and the benchmark harness to compute those numbers.

use std::time::Duration;

/// Collects duration samples and computes summary statistics.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples_us: Vec<f64>,
    sorted: bool,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a recorder with capacity for `capacity` samples.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            samples_us: Vec::with_capacity(capacity),
            sorted: true,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        self.samples_us.push(latency.as_secs_f64() * 1e6);
        self.sorted = false;
    }

    /// Records a latency expressed in microseconds.
    pub fn record_us(&mut self, micros: f64) {
        self.samples_us.push(micros);
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// Returns `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_us.extend_from_slice(&other.samples_us);
        self.sorted = false;
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples_us
                .sort_by(|a, b| a.partial_cmp(b).expect("latency samples are finite"));
            self.sorted = true;
        }
    }

    /// Returns the percentile (0.0..=100.0) in microseconds.
    ///
    /// Uses nearest-rank interpolation. Returns `None` when empty.
    pub fn percentile_us(&mut self, percentile: f64) -> Option<f64> {
        if self.samples_us.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let clamped = percentile.clamp(0.0, 100.0);
        let rank = (clamped / 100.0) * (self.samples_us.len() - 1) as f64;
        let low = rank.floor() as usize;
        let high = rank.ceil() as usize;
        if low == high {
            return Some(self.samples_us[low]);
        }
        let weight = rank - low as f64;
        Some(self.samples_us[low] * (1.0 - weight) + self.samples_us[high] * weight)
    }

    /// Returns the percentile as a [`Duration`].
    pub fn percentile(&mut self, percentile: f64) -> Option<Duration> {
        self.percentile_us(percentile)
            .map(|us| Duration::from_secs_f64(us / 1e6))
    }

    /// Arithmetic mean in microseconds.
    pub fn mean_us(&self) -> Option<f64> {
        if self.samples_us.is_empty() {
            return None;
        }
        Some(self.samples_us.iter().sum::<f64>() / self.samples_us.len() as f64)
    }

    /// Population variance in microseconds squared.
    pub fn variance_us2(&self) -> Option<f64> {
        let mean = self.mean_us()?;
        let n = self.samples_us.len() as f64;
        Some(
            self.samples_us
                .iter()
                .map(|sample| {
                    let diff = sample - mean;
                    diff * diff
                })
                .sum::<f64>()
                / n,
        )
    }

    /// Standard deviation in microseconds.
    pub fn std_dev_us(&self) -> Option<f64> {
        self.variance_us2().map(f64::sqrt)
    }

    /// Relative variance (coefficient of variation of the variance as used in
    /// the paper's Figure 8 discussion): `variance / mean²`, in percent.
    pub fn relative_variance_percent(&self) -> Option<f64> {
        let mean = self.mean_us()?;
        if mean == 0.0 {
            return None;
        }
        self.variance_us2()
            .map(|variance| 100.0 * variance / (mean * mean))
    }

    /// Maximum sample in microseconds.
    pub fn max_us(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples_us.last().copied()
    }

    /// Minimum sample in microseconds.
    pub fn min_us(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples_us.first().copied()
    }

    /// Produces an immutable summary of the recorded distribution.
    pub fn summary(&mut self) -> LatencySummary {
        LatencySummary {
            count: self.len(),
            mean_us: self.mean_us().unwrap_or(0.0),
            p5_us: self.percentile_us(5.0).unwrap_or(0.0),
            p50_us: self.percentile_us(50.0).unwrap_or(0.0),
            p95_us: self.percentile_us(95.0).unwrap_or(0.0),
            p99_us: self.percentile_us(99.0).unwrap_or(0.0),
            p995_us: self.percentile_us(99.5).unwrap_or(0.0),
            max_us: self.max_us().unwrap_or(0.0),
            std_dev_us: self.std_dev_us().unwrap_or(0.0),
            relative_variance_percent: self.relative_variance_percent().unwrap_or(0.0),
        }
    }
}

/// Immutable summary of a latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Mean in microseconds.
    pub mean_us: f64,
    /// 5th percentile in microseconds.
    pub p5_us: f64,
    /// Median in microseconds.
    pub p50_us: f64,
    /// 95th percentile in microseconds.
    pub p95_us: f64,
    /// 99th percentile in microseconds.
    pub p99_us: f64,
    /// 99.5th percentile in microseconds.
    pub p995_us: f64,
    /// Maximum in microseconds.
    pub max_us: f64,
    /// Standard deviation in microseconds.
    pub std_dev_us: f64,
    /// Relative variance in percent (see the paper's Figure 8).
    pub relative_variance_percent: f64,
}

impl LatencySummary {
    /// Mean in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean_us / 1000.0
    }

    /// Median in milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.p50_us / 1000.0
    }

    /// 99th percentile in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.p99_us / 1000.0
    }

    /// 99.5th percentile in milliseconds.
    pub fn p995_ms(&self) -> f64 {
        self.p995_us / 1000.0
    }
}

/// A `(time, value)` series, e.g. committed memory over time.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(Duration, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point. Times are expected to be non-decreasing.
    pub fn push(&mut self, time: Duration, value: f64) {
        self.points.push((time, value));
    }

    /// Number of points in the series.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Returns the points as a slice.
    pub fn points(&self) -> &[(Duration, f64)] {
        &self.points
    }

    /// Time-weighted average of the series over its observed span.
    ///
    /// Each value is weighted by the time until the next sample; the last
    /// sample gets zero weight (it has no duration). Returns `None` for
    /// series with fewer than two points.
    pub fn time_weighted_average(&self) -> Option<f64> {
        if self.points.len() < 2 {
            return None;
        }
        let mut weighted = 0.0;
        let mut total = 0.0;
        for window in self.points.windows(2) {
            let (t0, v0) = window[0];
            let (t1, _) = window[1];
            let dt = (t1 - t0).as_secs_f64();
            weighted += v0 * dt;
            total += dt;
        }
        if total == 0.0 {
            None
        } else {
            Some(weighted / total)
        }
    }

    /// Maximum value in the series.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|(_, value)| *value)
            .fold(None, |acc, value| match acc {
                None => Some(value),
                Some(best) => Some(best.max(value)),
            })
    }

    /// Downsamples the series to at most `max_points` evenly spaced points.
    pub fn downsample(&self, max_points: usize) -> TimeSeries {
        if max_points == 0 || self.points.len() <= max_points {
            return self.clone();
        }
        let stride = self.points.len() as f64 / max_points as f64;
        let mut points = Vec::with_capacity(max_points);
        for index in 0..max_points {
            let source = (index as f64 * stride) as usize;
            points.push(self.points[source.min(self.points.len() - 1)]);
        }
        TimeSeries { points }
    }
}

/// A simple throughput/utilization counter over a fixed window.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    total: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `count` events.
    pub fn add(&mut self, count: u64) {
        self.total += count;
    }

    /// Increments the counter by one.
    pub fn increment(&mut self) {
        self.total += 1;
    }

    /// Total events observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events per second over the given span.
    pub fn rate(&self, span: Duration) -> f64 {
        if span.is_zero() {
            0.0
        } else {
            self.total as f64 / span.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder_from_ms(values: &[u64]) -> LatencyRecorder {
        let mut recorder = LatencyRecorder::new();
        for value in values {
            recorder.record(Duration::from_millis(*value));
        }
        recorder
    }

    #[test]
    fn percentiles_interpolate() {
        let mut recorder = recorder_from_ms(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(recorder.len(), 10);
        let p50 = recorder.percentile_us(50.0).unwrap();
        assert!((p50 - 55_000.0).abs() < 1.0);
        let p0 = recorder.percentile_us(0.0).unwrap();
        assert!((p0 - 10_000.0).abs() < 1.0);
        let p100 = recorder.percentile_us(100.0).unwrap();
        assert!((p100 - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn empty_recorder_returns_none() {
        let mut recorder = LatencyRecorder::new();
        assert!(recorder.percentile_us(99.0).is_none());
        assert!(recorder.mean_us().is_none());
        assert!(recorder.variance_us2().is_none());
        assert!(recorder.is_empty());
    }

    #[test]
    fn mean_and_variance() {
        let recorder = recorder_from_ms(&[10, 10, 10, 10]);
        assert!((recorder.mean_us().unwrap() - 10_000.0).abs() < 1e-9);
        assert!((recorder.variance_us2().unwrap()).abs() < 1e-9);

        let recorder = recorder_from_ms(&[10, 20]);
        assert!((recorder.mean_us().unwrap() - 15_000.0).abs() < 1e-9);
        assert!((recorder.std_dev_us().unwrap() - 5_000.0).abs() < 1e-6);
    }

    #[test]
    fn relative_variance_matches_paper_definition() {
        // Mean 10ms, std-dev 5ms: relative variance = 25/100 = 25%.
        let recorder = recorder_from_ms(&[5, 15]);
        let relative = recorder.relative_variance_percent().unwrap();
        assert!((relative - 25.0).abs() < 1e-6);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = recorder_from_ms(&[1, 2]);
        let b = recorder_from_ms(&[3, 4]);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert!((a.mean_us().unwrap() - 2_500.0).abs() < 1e-9);
    }

    #[test]
    fn summary_is_consistent() {
        let mut recorder = recorder_from_ms(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let summary = recorder.summary();
        assert_eq!(summary.count, 10);
        assert!(summary.p99_us >= summary.p50_us);
        assert!(summary.p995_us >= summary.p99_us);
        assert!(summary.max_us >= summary.p995_us);
        assert!(summary.p99_ms() >= summary.p50_ms());
    }

    #[test]
    fn time_series_weighted_average() {
        let mut series = TimeSeries::new();
        series.push(Duration::from_secs(0), 100.0);
        series.push(Duration::from_secs(10), 200.0);
        series.push(Duration::from_secs(20), 0.0);
        // 100 for 10s, 200 for 10s → average 150.
        assert!((series.time_weighted_average().unwrap() - 150.0).abs() < 1e-9);
        assert_eq!(series.max_value(), Some(200.0));
    }

    #[test]
    fn time_series_downsample_preserves_length_bound() {
        let mut series = TimeSeries::new();
        for second in 0..1000 {
            series.push(Duration::from_secs(second), second as f64);
        }
        let down = series.downsample(100);
        assert_eq!(down.len(), 100);
        let same = series.downsample(10_000);
        assert_eq!(same.len(), 1000);
    }

    #[test]
    fn counter_rate() {
        let mut counter = Counter::new();
        counter.add(500);
        counter.increment();
        assert_eq!(counter.total(), 501);
        assert!((counter.rate(Duration::from_secs(10)) - 50.1).abs() < 1e-9);
        assert_eq!(counter.rate(Duration::ZERO), 0.0);
    }
}
