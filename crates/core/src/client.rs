//! `DandelionClient`: one typed client for every deployment shape.
//!
//! The platform exposes invocations through two surfaces: the in-process
//! [`ClusterManager`] (examples, benchmarks, embedded use) and the HTTP
//! [`Frontend`] (external clients). Both now share the submit/poll model, so
//! this facade wraps either behind a single interface:
//!
//! * [`DandelionClient::submit`] — non-blocking; returns a [`ClientHandle`]
//!   so any number of invocations can be kept in flight,
//! * [`DandelionClient::poll`] — non-consuming status/result lookup by id,
//! * [`DandelionClient::invoke_sync`] — submit-and-wait convenience.
//!
//! Over the frontend backend the client speaks the real v1 JSON wire
//! protocol — inputs travel as binary set-lists, results come back from the
//! status document (base64 items, report, structured errors) — so tests and
//! benchmarks driving `DandelionClient` exercise the same bytes an external
//! client would see.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dandelion_common::encoding::base64_decode;
use dandelion_common::{
    DandelionError, DandelionResult, DataItem, DataSet, InvocationId, JsonValue,
};
use dandelion_http::{HttpRequest, HttpResponse, StatusCode};
use dandelion_isolation::output_parser;

use crate::cluster::ClusterManager;
use crate::dispatcher::{InvocationHandle, InvocationOutcome, InvocationReport, InvocationStatus};
use crate::frontend::{Frontend, SET_LIST_CONTENT_TYPE};

/// Initial sleep between polls while waiting on the HTTP backend (the
/// in-process backend blocks on the handle instead). Doubles per idle poll
/// up to [`POLL_BACKOFF_MAX`], so short invocations settle with microsecond
/// reactivity while long waits cost a handful of polls per second.
const POLL_BACKOFF_INITIAL: Duration = Duration::from_micros(500);

/// Upper bound on the poll backoff.
const POLL_BACKOFF_MAX: Duration = Duration::from_millis(20);

/// The deployment surface a [`DandelionClient`] talks to.
#[derive(Clone)]
enum ClientBackend {
    Frontend(Arc<Frontend>),
    Cluster(Arc<ClusterManager>),
}

/// A non-consuming view of an invocation, unified across backends.
#[derive(Debug, Clone)]
pub struct ClientPoll {
    /// The invocation id.
    pub id: InvocationId,
    /// Lifecycle status at the time of the poll.
    pub status: InvocationStatus,
    /// The result, present once the status is terminal.
    pub outcome: Option<DandelionResult<InvocationOutcome>>,
}

/// A handle to an invocation submitted through a [`DandelionClient`].
pub struct ClientHandle {
    id: InvocationId,
    backend: ClientBackend,
    /// Present for in-process backends: waiting blocks on the dispatcher's
    /// condition variable instead of polling.
    local: Option<InvocationHandle>,
}

impl ClientHandle {
    /// The invocation's id.
    pub fn id(&self) -> InvocationId {
        self.id
    }

    /// Non-consuming status/result lookup.
    pub fn poll(&self) -> DandelionResult<ClientPoll> {
        poll_backend(&self.backend, self.id)
    }

    /// Blocks until the invocation settles and returns its outcome.
    ///
    /// Non-consuming on every backend: the result stays retained
    /// server-side (until retention expiry), so waiting then polling
    /// behaves identically whether the client wraps a cluster or a
    /// frontend.
    pub fn wait(&self, timeout: Option<Duration>) -> DandelionResult<InvocationOutcome> {
        if let Some(local) = &self.local {
            return local.wait_snapshot(timeout);
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut backoff = POLL_BACKOFF_INITIAL;
        loop {
            let poll = self.poll()?;
            if let Some(outcome) = poll.outcome {
                return outcome;
            }
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    return Err(DandelionError::Timeout {
                        function: self.id.to_string(),
                        limit_ms: timeout.unwrap_or_default().as_millis() as u64,
                    });
                }
            }
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(POLL_BACKOFF_MAX);
        }
    }
}

impl std::fmt::Debug for ClientHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientHandle")
            .field("id", &self.id)
            .finish()
    }
}

/// A typed client over a [`Frontend`] or a [`ClusterManager`].
#[derive(Clone)]
pub struct DandelionClient {
    backend: ClientBackend,
}

impl DandelionClient {
    /// A client speaking the v1 JSON protocol against an HTTP frontend.
    pub fn for_frontend(frontend: Arc<Frontend>) -> Self {
        Self {
            backend: ClientBackend::Frontend(frontend),
        }
    }

    /// A client over a single worker node (wraps it in a frontend, so the
    /// full HTTP path is exercised).
    pub fn for_worker(worker: Arc<crate::worker::WorkerNode>) -> Self {
        Self::for_frontend(Arc::new(Frontend::new(worker)))
    }

    /// A client dispatching in-process across a cluster's worker nodes.
    pub fn for_cluster(cluster: Arc<ClusterManager>) -> Self {
        Self {
            backend: ClientBackend::Cluster(cluster),
        }
    }

    /// Submits an invocation without blocking and returns its handle.
    pub fn submit(&self, composition: &str, inputs: Vec<DataSet>) -> DandelionResult<ClientHandle> {
        match &self.backend {
            ClientBackend::Cluster(cluster) => {
                let (_, handle) = cluster.submit(composition, inputs)?;
                Ok(ClientHandle {
                    id: handle.id(),
                    backend: self.backend.clone(),
                    local: Some(handle),
                })
            }
            ClientBackend::Frontend(frontend) => {
                let body = output_parser::encode_outputs(&inputs);
                let request = HttpRequest::post(
                    format!("http://frontend/v1/invocations/{composition}"),
                    body,
                )
                .with_header("Content-Type", SET_LIST_CONTENT_TYPE);
                let response = frontend.handle(&request);
                if response.status != StatusCode::ACCEPTED {
                    return Err(response_error(&response));
                }
                let document = response_json(&response)?;
                let id = document
                    .get("invocation_id")
                    .and_then(JsonValue::as_str)
                    .and_then(InvocationId::parse)
                    .ok_or_else(|| {
                        DandelionError::Internal(
                            "202 response carried no invocation id".to_string(),
                        )
                    })?;
                Ok(ClientHandle {
                    id,
                    backend: self.backend.clone(),
                    local: None,
                })
            }
        }
    }

    /// Non-consuming status/result lookup by invocation id.
    ///
    /// Unknown and expired ids yield [`DandelionError::NotFound`].
    pub fn poll(&self, id: InvocationId) -> DandelionResult<ClientPoll> {
        poll_backend(&self.backend, id)
    }

    /// Submits and waits; the synchronous convenience path.
    pub fn invoke_sync(
        &self,
        composition: &str,
        inputs: Vec<DataSet>,
    ) -> DandelionResult<InvocationOutcome> {
        self.submit(composition, inputs)?.wait(None)
    }
}

fn poll_backend(backend: &ClientBackend, id: InvocationId) -> DandelionResult<ClientPoll> {
    match backend {
        ClientBackend::Cluster(cluster) => {
            let snapshot = cluster.poll(id).ok_or(DandelionError::NotFound {
                kind: "invocation",
                name: id.to_string(),
            })?;
            Ok(ClientPoll {
                id,
                status: snapshot.status,
                outcome: snapshot.outcome,
            })
        }
        ClientBackend::Frontend(frontend) => {
            let response = frontend.handle(&HttpRequest::get(format!(
                "http://frontend/v1/invocations/{id}"
            )));
            if response.status != StatusCode::OK {
                return Err(response_error(&response));
            }
            parse_status_document(id, &response_json(&response)?)
        }
    }
}

fn response_json(response: &HttpResponse) -> DandelionResult<JsonValue> {
    JsonValue::parse(&response.body_text())
        .map_err(|err| DandelionError::Internal(format!("malformed JSON response: {err}")))
}

/// Reconstructs the typed error from a structured JSON error body.
fn response_error(response: &HttpResponse) -> DandelionError {
    if let Ok(document) = JsonValue::parse(&response.body_text()) {
        if let Some(error) = document.get("error") {
            let code = error.get("code").and_then(JsonValue::as_str).unwrap_or("");
            let message = error
                .get("message")
                .and_then(JsonValue::as_str)
                .unwrap_or("");
            return DandelionError::from_code(code, message);
        }
    }
    DandelionError::ServiceError {
        status: response.status.0,
        message: response.body_text(),
    }
}

/// Parses the v1 status document into a [`ClientPoll`].
fn parse_status_document(id: InvocationId, document: &JsonValue) -> DandelionResult<ClientPoll> {
    let status = document
        .get("status")
        .and_then(JsonValue::as_str)
        .and_then(InvocationStatus::parse)
        .ok_or_else(|| {
            DandelionError::Internal("status document carried no valid status".to_string())
        })?;
    let outcome = if let Some(error) = document.get("error") {
        let code = error.get("code").and_then(JsonValue::as_str).unwrap_or("");
        let message = error
            .get("message")
            .and_then(JsonValue::as_str)
            .unwrap_or("");
        Some(Err(DandelionError::from_code(code, message)))
    } else {
        document.get("outputs").map(|outputs| {
            parse_outputs_json(outputs).map(|outputs| InvocationOutcome {
                outputs,
                report: parse_report_json(document.get("report")),
            })
        })
    };
    Ok(ClientPoll {
        id,
        status,
        outcome,
    })
}

fn parse_outputs_json(outputs: &JsonValue) -> DandelionResult<Vec<DataSet>> {
    let sets = outputs
        .as_array()
        .ok_or_else(|| DandelionError::Internal("outputs must be an array".to_string()))?;
    sets.iter()
        .map(|set| {
            let name = set
                .get("set")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| DandelionError::Internal("output set without name".to_string()))?;
            let items = set
                .get("items")
                .and_then(JsonValue::as_array)
                .unwrap_or(&[])
                .iter()
                .map(|item| {
                    let item_name = item
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .unwrap_or_default();
                    let data = item
                        .get("data_base64")
                        .and_then(JsonValue::as_str)
                        .map(base64_decode)
                        .transpose()
                        .map_err(DandelionError::Internal)?
                        .unwrap_or_default();
                    let mut data_item = DataItem::new(item_name, data);
                    data_item.key = item
                        .get("key")
                        .and_then(JsonValue::as_str)
                        .map(str::to_string);
                    Ok(data_item)
                })
                .collect::<DandelionResult<Vec<DataItem>>>()?;
            Ok(DataSet::with_items(name, items))
        })
        .collect()
}

fn parse_report_json(report: Option<&JsonValue>) -> InvocationReport {
    let Some(report) = report else {
        return InvocationReport::default();
    };
    let count = |key: &str| {
        report
            .get(key)
            .and_then(JsonValue::as_u64)
            .unwrap_or_default() as usize
    };
    InvocationReport {
        compute_tasks: count("compute_tasks"),
        communication_tasks: count("communication_tasks"),
        peak_context_bytes: count("peak_context_bytes"),
        modeled_busy_time: Duration::from_micros(
            report
                .get("modeled_busy_us")
                .and_then(JsonValue::as_u64)
                .unwrap_or_default(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::{default_test_services, WorkerNode};
    use dandelion_common::config::{ClusterConfig, IsolationKind, LoadBalancing, WorkerConfig};
    use dandelion_isolation::{FunctionArtifact, FunctionCtx};

    const IDENTITY_DSL: &str =
        "composition Identity(In) => Out { Copy(Data = all In) => (Out = Copied); }";

    fn copy_artifact() -> FunctionArtifact {
        FunctionArtifact::new("Copy", &["Copied"], |ctx: &mut FunctionCtx| {
            let data = ctx.single_input("Data")?.data.as_slice().to_vec();
            ctx.push_output_bytes("Copied", "copy", data)
        })
    }

    fn worker_client() -> DandelionClient {
        let config = WorkerConfig {
            total_cores: 4,
            initial_communication_cores: 1,
            isolation: IsolationKind::Native,
            ..WorkerConfig::default()
        };
        let worker =
            WorkerNode::start_with_control(config, default_test_services(), false).unwrap();
        worker.register_function(copy_artifact()).unwrap();
        worker.register_composition_dsl(IDENTITY_DSL).unwrap();
        DandelionClient::for_worker(worker)
    }

    fn cluster_client(nodes: usize) -> DandelionClient {
        let config = ClusterConfig {
            nodes,
            worker: WorkerConfig {
                total_cores: 2,
                initial_communication_cores: 1,
                isolation: IsolationKind::Native,
                ..WorkerConfig::default()
            },
            load_balancing: LoadBalancing::RoundRobin,
        };
        let cluster = ClusterManager::start(config, default_test_services()).unwrap();
        cluster.register_function_with(copy_artifact).unwrap();
        cluster
            .register_composition(dandelion_dsl::compile(IDENTITY_DSL).unwrap())
            .unwrap();
        DandelionClient::for_cluster(Arc::new(cluster))
    }

    #[test]
    fn http_backend_submit_poll_wait_roundtrip() {
        let client = worker_client();
        let handle = client
            .submit(
                "Identity",
                vec![DataSet::single("In", b"over http".to_vec())],
            )
            .unwrap();
        let outcome = handle.wait(Some(Duration::from_secs(10))).unwrap();
        assert_eq!(outcome.outputs[0].items[0].as_str(), Some("over http"));
        assert_eq!(outcome.outputs[0].name, "Out");
        assert_eq!(outcome.report.compute_tasks, 1);
        // Results are retained server-side: polling after wait still works.
        let poll = client.poll(handle.id()).unwrap();
        assert_eq!(poll.status, InvocationStatus::Completed);
    }

    #[test]
    fn http_backend_preserves_item_keys_and_multiple_items() {
        let client = worker_client();
        let inputs = vec![DataSet::with_items(
            "In",
            vec![DataItem::with_key("a", "k1", b"payload".to_vec())],
        )];
        let outcome = client.invoke_sync("Identity", inputs).unwrap();
        assert_eq!(outcome.outputs[0].items[0].data.as_slice(), b"payload");
    }

    #[test]
    fn cluster_backend_roundtrip_and_typed_not_found() {
        let client = cluster_client(2);
        let handle = client
            .submit(
                "Identity",
                vec![DataSet::single("In", b"clustered".to_vec())],
            )
            .unwrap();
        let outcome = handle.wait(Some(Duration::from_secs(10))).unwrap();
        assert_eq!(outcome.outputs[0].items[0].as_str(), Some("clustered"));
        // Facade waits are non-consuming on every backend: polling after a
        // wait works on the cluster exactly like over HTTP.
        let poll = client.poll(handle.id()).unwrap();
        assert_eq!(poll.status, InvocationStatus::Completed);
        assert!(poll.outcome.is_some());
        let err = client.poll(InvocationId::from_raw(u64::MAX)).unwrap_err();
        assert!(matches!(err, DandelionError::NotFound { .. }));
    }

    #[test]
    fn http_backend_polling_unknown_id_is_typed_not_found() {
        let client = worker_client();
        let err = client.poll(InvocationId::from_raw(u64::MAX)).unwrap_err();
        assert!(matches!(err, DandelionError::NotFound { .. }));
    }

    #[test]
    fn errors_cross_the_wire_with_stable_codes() {
        let client = worker_client();
        let err = client.submit("NoSuchComposition", vec![]).unwrap_err();
        assert!(matches!(err, DandelionError::NotFound { .. }));
        assert_eq!(err.code(), "not_found");
    }
}
