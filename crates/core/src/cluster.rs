//! A small cluster manager in the spirit of Dirigent.
//!
//! The paper extends Dirigent to orchestrate Dandelion worker nodes and load
//! balance composition invocations across them (paper §5, "Cluster
//! manager"). This module provides the same role for in-process workers:
//! registration is broadcast to every node, and each invocation is routed by
//! the configured load-balancing policy.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dandelion_common::config::{ClusterConfig, LoadBalancing};
use dandelion_common::{DandelionResult, DataSet, InvocationId, NodeId};
use dandelion_dsl::CompositionGraph;
use dandelion_isolation::FunctionArtifact;
use dandelion_services::ServiceRegistry;

use crate::dispatcher::{InvocationHandle, InvocationOutcome, InvocationSnapshot};
use crate::worker::{WorkerNode, WorkerStats};

/// Orchestrates several worker nodes.
pub struct ClusterManager {
    nodes: Vec<(NodeId, Arc<WorkerNode>)>,
    policy: LoadBalancing,
    round_robin: AtomicUsize,
}

impl ClusterManager {
    /// Starts a cluster of identical workers sharing a service registry.
    pub fn start(config: ClusterConfig, services: ServiceRegistry) -> DandelionResult<Self> {
        let mut nodes = Vec::with_capacity(config.nodes);
        for _ in 0..config.nodes.max(1) {
            let worker = WorkerNode::start(config.worker.clone(), services.clone())?;
            nodes.push((NodeId::next(), worker));
        }
        Ok(Self {
            nodes,
            policy: config.load_balancing,
            round_robin: AtomicUsize::new(0),
        })
    }

    /// Builds a cluster from already-started workers (used by tests and the
    /// benchmark harness to control per-node configuration).
    pub fn from_workers(workers: Vec<Arc<WorkerNode>>, policy: LoadBalancing) -> Self {
        Self {
            nodes: workers.into_iter().map(|w| (NodeId::next(), w)).collect(),
            policy,
            round_robin: AtomicUsize::new(0),
        }
    }

    /// Number of worker nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Registers a compute function on every node.
    pub fn register_function_with(
        &self,
        make_artifact: impl Fn() -> FunctionArtifact,
    ) -> DandelionResult<()> {
        for (_, node) in &self.nodes {
            node.register_function(make_artifact())?;
        }
        Ok(())
    }

    /// Registers a composition on every node.
    pub fn register_composition(&self, graph: CompositionGraph) -> DandelionResult<()> {
        for (_, node) in &self.nodes {
            node.register_composition(graph.clone())?;
        }
        Ok(())
    }

    /// Picks a node for an invocation according to the policy.
    fn pick_node(&self, composition: &str) -> (NodeId, &Arc<WorkerNode>) {
        let index = match self.policy {
            LoadBalancing::RoundRobin => {
                self.round_robin.fetch_add(1, Ordering::Relaxed) % self.nodes.len()
            }
            LoadBalancing::LeastLoaded => self
                .nodes
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, node))| node.inflight())
                .map(|(index, _)| index)
                .unwrap_or(0),
            LoadBalancing::CompositionAffinity => {
                let mut hash = 0xcbf2_9ce4_8422_2325u64;
                for byte in composition.as_bytes() {
                    hash ^= *byte as u64;
                    hash = hash.wrapping_mul(0x1000_0000_01b3);
                }
                (hash % self.nodes.len() as u64) as usize
            }
        };
        let (id, node) = &self.nodes[index];
        (*id, node)
    }

    /// Submits an invocation on a node chosen by the load-balancing policy
    /// without blocking; returns the chosen node and the handle.
    ///
    /// Because submission returns immediately, a client can keep dozens of
    /// invocations in flight per node — `LeastLoaded` balancing sees the
    /// true in-flight count, not just currently blocking callers.
    pub fn submit(
        &self,
        composition: &str,
        inputs: Vec<DataSet>,
    ) -> DandelionResult<(NodeId, InvocationHandle)> {
        let (id, node) = self.pick_node(composition);
        node.submit(composition, inputs).map(|handle| (id, handle))
    }

    /// Invokes a composition on a node chosen by the load-balancing policy.
    pub fn invoke(
        &self,
        composition: &str,
        inputs: Vec<DataSet>,
    ) -> DandelionResult<InvocationOutcome> {
        self.submit(composition, inputs)?.1.wait(None)
    }

    /// Polls an invocation by id across every node's in-flight table.
    ///
    /// Invocation ids are process-wide, so at most one node knows the id.
    pub fn poll(&self, id: InvocationId) -> Option<InvocationSnapshot> {
        self.nodes.iter().find_map(|(_, node)| node.poll(id))
    }

    /// Per-node statistics snapshots.
    pub fn stats(&self) -> Vec<(NodeId, WorkerStats)> {
        self.nodes
            .iter()
            .map(|(id, node)| (*id, node.stats()))
            .collect()
    }

    /// Stops every worker.
    pub fn shutdown(&self) {
        for (_, node) in &self.nodes {
            node.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::default_test_services;
    use dandelion_common::config::{IsolationKind, WorkerConfig};
    use dandelion_isolation::FunctionCtx;

    fn cluster(policy: LoadBalancing, nodes: usize) -> ClusterManager {
        let config = ClusterConfig {
            nodes,
            worker: WorkerConfig {
                total_cores: 2,
                initial_communication_cores: 1,
                isolation: IsolationKind::Native,
                ..WorkerConfig::default()
            },
            load_balancing: policy,
        };
        let cluster = ClusterManager::start(config, default_test_services()).unwrap();
        cluster
            .register_function_with(|| {
                FunctionArtifact::new("Copy", &["Copied"], |ctx: &mut FunctionCtx| {
                    let data = ctx.single_input("Data")?.data.as_slice().to_vec();
                    ctx.push_output_bytes("Copied", "copy", data)
                })
            })
            .unwrap();
        cluster
            .register_composition(
                dandelion_dsl::compile(
                    "composition Identity(In) => Out { Copy(Data = all In) => (Out = Copied); }",
                )
                .unwrap(),
            )
            .unwrap();
        cluster
    }

    #[test]
    fn round_robin_spreads_invocations() {
        let cluster = cluster(LoadBalancing::RoundRobin, 3);
        assert_eq!(cluster.node_count(), 3);
        for index in 0..6 {
            let outcome = cluster
                .invoke("Identity", vec![DataSet::single("In", vec![index as u8])])
                .unwrap();
            assert_eq!(outcome.outputs[0].items[0].data[0], index as u8);
        }
        let stats = cluster.stats();
        assert!(stats.iter().all(|(_, s)| s.invocations == 2));
        cluster.shutdown();
    }

    #[test]
    fn least_loaded_picks_idle_nodes() {
        let cluster = cluster(LoadBalancing::LeastLoaded, 2);
        for _ in 0..4 {
            cluster
                .invoke("Identity", vec![DataSet::single("In", vec![1])])
                .unwrap();
        }
        let total: u64 = cluster.stats().iter().map(|(_, s)| s.invocations).sum();
        assert_eq!(total, 4);
        cluster.shutdown();
    }

    #[test]
    fn submit_keeps_many_invocations_in_flight_across_nodes() {
        let cluster = cluster(LoadBalancing::RoundRobin, 2);
        let handles: Vec<_> = (0..10u8)
            .map(|index| {
                let (node, handle) = cluster
                    .submit("Identity", vec![DataSet::single("In", vec![index])])
                    .unwrap();
                (node, handle, index)
            })
            .collect();
        // Round robin spread the submissions across both nodes.
        let first_node = handles[0].0;
        assert!(handles.iter().any(|(node, _, _)| *node != first_node));
        for (_, handle, index) in &handles {
            let outcome = handle
                .wait(Some(std::time::Duration::from_secs(10)))
                .unwrap();
            assert_eq!(outcome.outputs[0].items[0].data[0], *index);
        }
        let total: u64 = cluster.stats().iter().map(|(_, s)| s.invocations).sum();
        assert_eq!(total, 10);
        cluster.shutdown();
    }

    #[test]
    fn poll_finds_invocations_on_any_node() {
        let cluster = cluster(LoadBalancing::RoundRobin, 3);
        let ids: Vec<_> = (0..3u8)
            .map(|index| {
                let (_, handle) = cluster
                    .submit("Identity", vec![DataSet::single("In", vec![index])])
                    .unwrap();
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
                while !handle.status().is_terminal() {
                    assert!(std::time::Instant::now() < deadline);
                    std::thread::yield_now();
                }
                handle.id()
            })
            .collect();
        for id in ids {
            assert!(cluster.poll(id).is_some(), "{id} not found in any node");
        }
        assert!(cluster
            .poll(dandelion_common::InvocationId::from_raw(u64::MAX))
            .is_none());
        cluster.shutdown();
    }

    #[test]
    fn composition_affinity_is_sticky() {
        let cluster = cluster(LoadBalancing::CompositionAffinity, 3);
        for _ in 0..5 {
            cluster
                .invoke("Identity", vec![DataSet::single("In", vec![1])])
                .unwrap();
        }
        let stats = cluster.stats();
        let busy_nodes = stats.iter().filter(|(_, s)| s.invocations > 0).count();
        assert_eq!(busy_nodes, 1);
        assert_eq!(stats.iter().map(|(_, s)| s.invocations).sum::<u64>(), 5);
        cluster.shutdown();
    }
}
