//! A small cluster manager in the spirit of Dirigent.
//!
//! The paper extends Dirigent to orchestrate Dandelion worker nodes and load
//! balance composition invocations across them (paper §5, "Cluster
//! manager"). This module provides the same role for in-process workers:
//! registration is broadcast to every node, and each invocation is routed by
//! the configured load-balancing policy.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dandelion_common::config::{ClusterConfig, LoadBalancing};
use dandelion_common::{DandelionResult, DataSet, InvocationId, NodeId};
use dandelion_dsl::CompositionGraph;
use dandelion_isolation::FunctionArtifact;
use dandelion_services::ServiceRegistry;
use parking_lot::{Mutex, RwLock};

use crate::dispatcher::{InvocationHandle, InvocationOutcome, InvocationSnapshot};
use crate::worker::{WorkerNode, WorkerStats};

/// Most recent invocation-to-node routes the manager remembers; older
/// entries fall back to the scan path when polled.
const INVOCATION_ROUTE_CAPACITY: usize = 64 * 1024;

/// One member of the cluster.
struct ClusterNode {
    id: NodeId,
    worker: Arc<WorkerNode>,
}

/// Remembers which node owns which invocation so polls route directly
/// instead of scanning every member (bounded, FIFO-evicted).
struct InvocationRoutes {
    owners: HashMap<InvocationId, NodeId>,
    order: VecDeque<InvocationId>,
}

impl InvocationRoutes {
    fn record(&mut self, id: InvocationId, node: NodeId) {
        if self.owners.insert(id, node).is_none() {
            self.order.push_back(id);
            while self.order.len() > INVOCATION_ROUTE_CAPACITY {
                if let Some(evicted) = self.order.pop_front() {
                    self.owners.remove(&evicted);
                }
            }
        }
    }
}

/// Orchestrates several worker nodes.
pub struct ClusterManager {
    nodes: RwLock<Vec<ClusterNode>>,
    policy: LoadBalancing,
    round_robin: AtomicUsize,
    routes: Mutex<InvocationRoutes>,
}

impl ClusterManager {
    /// Starts a cluster of identical workers sharing a service registry.
    pub fn start(config: ClusterConfig, services: ServiceRegistry) -> DandelionResult<Self> {
        let mut nodes = Vec::with_capacity(config.nodes);
        for _ in 0..config.nodes.max(1) {
            let worker = WorkerNode::start(config.worker.clone(), services.clone())?;
            nodes.push(ClusterNode {
                id: NodeId::next(),
                worker,
            });
        }
        Ok(Self {
            nodes: RwLock::new(nodes),
            policy: config.load_balancing,
            round_robin: AtomicUsize::new(0),
            routes: Mutex::new(InvocationRoutes {
                owners: HashMap::new(),
                order: VecDeque::new(),
            }),
        })
    }

    /// Builds a cluster from already-started workers (used by tests and the
    /// benchmark harness to control per-node configuration).
    pub fn from_workers(workers: Vec<Arc<WorkerNode>>, policy: LoadBalancing) -> Self {
        Self {
            nodes: RwLock::new(
                workers
                    .into_iter()
                    .map(|worker| ClusterNode {
                        id: NodeId::next(),
                        worker,
                    })
                    .collect(),
            ),
            policy,
            round_robin: AtomicUsize::new(0),
            routes: Mutex::new(InvocationRoutes {
                owners: HashMap::new(),
                order: VecDeque::new(),
            }),
        }
    }

    /// Number of worker nodes (drained members are removed).
    pub fn node_count(&self) -> usize {
        self.nodes.read().len()
    }

    /// Adds an already-started worker as a new member and returns its id —
    /// the remote-member path a gateway uses when a node joins at runtime.
    pub fn join(&self, worker: Arc<WorkerNode>) -> NodeId {
        let id = NodeId::next();
        self.nodes.write().push(ClusterNode { id, worker });
        id
    }

    /// Removes a member from the cluster, returning its worker so the
    /// caller can shut it down or hand it elsewhere. In-flight invocations
    /// on the node keep running; routes already recorded still resolve.
    pub fn eject(&self, node: NodeId) -> Option<Arc<WorkerNode>> {
        let mut nodes = self.nodes.write();
        let index = nodes.iter().position(|entry| entry.id == node)?;
        Some(nodes.remove(index).worker)
    }

    /// Raises the drain signal on one member: it refuses new submissions
    /// and [`ClusterManager::submit`] stops routing to it, while in-flight
    /// invocations finish. Returns `false` for an unknown node.
    pub fn drain_node(&self, node: NodeId) -> bool {
        let nodes = self.nodes.read();
        let Some(entry) = nodes.iter().find(|entry| entry.id == node) else {
            return false;
        };
        entry.worker.begin_drain();
        true
    }

    /// Registers a compute function on every node.
    pub fn register_function_with(
        &self,
        make_artifact: impl Fn() -> FunctionArtifact,
    ) -> DandelionResult<()> {
        for entry in self.nodes.read().iter() {
            entry.worker.register_function(make_artifact())?;
        }
        Ok(())
    }

    /// Registers a composition on every node.
    pub fn register_composition(&self, graph: CompositionGraph) -> DandelionResult<()> {
        for entry in self.nodes.read().iter() {
            entry.worker.register_composition(graph.clone())?;
        }
        Ok(())
    }

    /// Picks a node for an invocation according to the policy, skipping
    /// draining members.
    fn pick_node(&self, composition: &str) -> DandelionResult<(NodeId, Arc<WorkerNode>)> {
        let nodes = self.nodes.read();
        let eligible: Vec<usize> = (0..nodes.len())
            .filter(|&index| !nodes[index].worker.is_draining())
            .collect();
        if eligible.is_empty() {
            return Err(dandelion_common::DandelionError::ResourceExhausted(
                "no cluster node accepts new invocations (all draining or ejected)".to_string(),
            ));
        }
        let pick = match self.policy {
            LoadBalancing::RoundRobin => {
                self.round_robin.fetch_add(1, Ordering::Relaxed) % eligible.len()
            }
            LoadBalancing::LeastLoaded => eligible
                .iter()
                .enumerate()
                .min_by_key(|(_, &index)| nodes[index].worker.inflight())
                .map(|(position, _)| position)
                .unwrap_or(0),
            LoadBalancing::CompositionAffinity => {
                (composition_affinity_hash(composition) % eligible.len() as u64) as usize
            }
        };
        let entry = &nodes[eligible[pick]];
        Ok((entry.id, Arc::clone(&entry.worker)))
    }

    /// Submits an invocation on a node chosen by the load-balancing policy
    /// without blocking; returns the chosen node and the handle.
    ///
    /// Because submission returns immediately, a client can keep dozens of
    /// invocations in flight per node — `LeastLoaded` balancing sees the
    /// true in-flight count, not just currently blocking callers.
    pub fn submit(
        &self,
        composition: &str,
        inputs: Vec<DataSet>,
    ) -> DandelionResult<(NodeId, InvocationHandle)> {
        let (id, node) = self.pick_node(composition)?;
        let handle = node.submit(composition, inputs)?;
        self.routes.lock().record(handle.id(), id);
        Ok((id, handle))
    }

    /// Invokes a composition on a node chosen by the load-balancing policy.
    pub fn invoke(
        &self,
        composition: &str,
        inputs: Vec<DataSet>,
    ) -> DandelionResult<InvocationOutcome> {
        self.submit(composition, inputs)?.1.wait(None)
    }

    /// Polls an invocation by id without the caller knowing the owning
    /// node: the submit-time id-to-node route resolves directly, and ids
    /// submitted behind the manager's back (or evicted from the bounded
    /// route table) fall back to scanning every member.
    pub fn poll(&self, id: InvocationId) -> Option<InvocationSnapshot> {
        let owner = self.routes.lock().owners.get(&id).copied();
        let nodes = self.nodes.read();
        if let Some(owner) = owner {
            if let Some(entry) = nodes.iter().find(|entry| entry.id == owner) {
                return entry.worker.poll(id);
            }
        }
        nodes.iter().find_map(|entry| entry.worker.poll(id))
    }

    /// The node an invocation was routed to, if the manager remembers it.
    pub fn invocation_owner(&self, id: InvocationId) -> Option<NodeId> {
        self.routes.lock().owners.get(&id).copied()
    }

    /// Per-node statistics snapshots.
    pub fn stats(&self) -> Vec<(NodeId, WorkerStats)> {
        self.nodes
            .read()
            .iter()
            .map(|entry| (entry.id, entry.worker.stats()))
            .collect()
    }

    /// Stops every worker.
    pub fn shutdown(&self) {
        for entry in self.nodes.read().iter() {
            entry.worker.shutdown();
        }
    }
}

/// FNV-1a over the composition name: the stable hash behind
/// composition-affinity placement (the network gateway uses the same one so
/// in-process and remote clusters agree on stickiness).
pub fn composition_affinity_hash(composition: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in composition.as_bytes() {
        hash ^= *byte as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::default_test_services;
    use dandelion_common::config::{IsolationKind, WorkerConfig};
    use dandelion_isolation::FunctionCtx;

    fn cluster(policy: LoadBalancing, nodes: usize) -> ClusterManager {
        let config = ClusterConfig {
            nodes,
            worker: WorkerConfig {
                total_cores: 2,
                initial_communication_cores: 1,
                isolation: IsolationKind::Native,
                ..WorkerConfig::default()
            },
            load_balancing: policy,
        };
        let cluster = ClusterManager::start(config, default_test_services()).unwrap();
        cluster
            .register_function_with(|| {
                FunctionArtifact::new("Copy", &["Copied"], |ctx: &mut FunctionCtx| {
                    let data = ctx.single_input("Data")?.data.as_slice().to_vec();
                    ctx.push_output_bytes("Copied", "copy", data)
                })
            })
            .unwrap();
        cluster
            .register_composition(
                dandelion_dsl::compile(
                    "composition Identity(In) => Out { Copy(Data = all In) => (Out = Copied); }",
                )
                .unwrap(),
            )
            .unwrap();
        cluster
    }

    #[test]
    fn round_robin_spreads_invocations() {
        let cluster = cluster(LoadBalancing::RoundRobin, 3);
        assert_eq!(cluster.node_count(), 3);
        for index in 0..6 {
            let outcome = cluster
                .invoke("Identity", vec![DataSet::single("In", vec![index as u8])])
                .unwrap();
            assert_eq!(outcome.outputs[0].items[0].data[0], index as u8);
        }
        let stats = cluster.stats();
        assert!(stats.iter().all(|(_, s)| s.invocations == 2));
        cluster.shutdown();
    }

    #[test]
    fn least_loaded_picks_idle_nodes() {
        let cluster = cluster(LoadBalancing::LeastLoaded, 2);
        for _ in 0..4 {
            cluster
                .invoke("Identity", vec![DataSet::single("In", vec![1])])
                .unwrap();
        }
        let total: u64 = cluster.stats().iter().map(|(_, s)| s.invocations).sum();
        assert_eq!(total, 4);
        cluster.shutdown();
    }

    #[test]
    fn submit_keeps_many_invocations_in_flight_across_nodes() {
        let cluster = cluster(LoadBalancing::RoundRobin, 2);
        let handles: Vec<_> = (0..10u8)
            .map(|index| {
                let (node, handle) = cluster
                    .submit("Identity", vec![DataSet::single("In", vec![index])])
                    .unwrap();
                (node, handle, index)
            })
            .collect();
        // Round robin spread the submissions across both nodes.
        let first_node = handles[0].0;
        assert!(handles.iter().any(|(node, _, _)| *node != first_node));
        for (_, handle, index) in &handles {
            let outcome = handle
                .wait(Some(std::time::Duration::from_secs(10)))
                .unwrap();
            assert_eq!(outcome.outputs[0].items[0].data[0], *index);
        }
        let total: u64 = cluster.stats().iter().map(|(_, s)| s.invocations).sum();
        assert_eq!(total, 10);
        cluster.shutdown();
    }

    #[test]
    fn poll_finds_invocations_on_any_node() {
        let cluster = cluster(LoadBalancing::RoundRobin, 3);
        let ids: Vec<_> = (0..3u8)
            .map(|index| {
                let (_, handle) = cluster
                    .submit("Identity", vec![DataSet::single("In", vec![index])])
                    .unwrap();
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
                while !handle.status().is_terminal() {
                    assert!(std::time::Instant::now() < deadline);
                    std::thread::yield_now();
                }
                handle.id()
            })
            .collect();
        for id in ids {
            assert!(cluster.poll(id).is_some(), "{id} not found in any node");
        }
        assert!(cluster
            .poll(dandelion_common::InvocationId::from_raw(u64::MAX))
            .is_none());
        cluster.shutdown();
    }

    #[test]
    fn poll_routes_by_recorded_owner() {
        let cluster = cluster(LoadBalancing::RoundRobin, 3);
        let (node, handle) = cluster
            .submit("Identity", vec![DataSet::single("In", vec![7])])
            .unwrap();
        let id = handle.id();
        assert_eq!(cluster.invocation_owner(id), Some(node));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !handle.status().is_terminal() {
            assert!(std::time::Instant::now() < deadline);
            std::thread::yield_now();
        }
        let snapshot = cluster.poll(id).expect("routed poll finds the invocation");
        assert_eq!(snapshot.id, id);
        assert!(snapshot.status.is_terminal());
        cluster.shutdown();
    }

    #[test]
    fn draining_nodes_stop_receiving_work() {
        let cluster = cluster(LoadBalancing::RoundRobin, 2);
        let drained = cluster.stats()[0].0;
        assert!(cluster.drain_node(drained));
        assert!(!cluster.drain_node(NodeId::from_raw(u64::MAX)));
        for _ in 0..4 {
            cluster
                .invoke("Identity", vec![DataSet::single("In", vec![1])])
                .unwrap();
        }
        let stats = cluster.stats();
        assert_eq!(stats[0].1.invocations, 0, "draining node got new work");
        assert_eq!(stats[1].1.invocations, 4);
        // Ejecting the drained member shrinks the cluster; the survivor
        // still serves.
        assert!(cluster.eject(drained).is_some());
        assert_eq!(cluster.node_count(), 1);
        cluster
            .invoke("Identity", vec![DataSet::single("In", vec![2])])
            .unwrap();
        cluster.shutdown();
    }

    #[test]
    fn all_draining_refuses_submissions() {
        let cluster = cluster(LoadBalancing::LeastLoaded, 1);
        let node = cluster.stats()[0].0;
        assert!(cluster.drain_node(node));
        let refused = cluster.submit("Identity", vec![DataSet::single("In", vec![1])]);
        assert!(refused.is_err());
        cluster.shutdown();
    }

    #[test]
    fn composition_affinity_is_sticky() {
        let cluster = cluster(LoadBalancing::CompositionAffinity, 3);
        for _ in 0..5 {
            cluster
                .invoke("Identity", vec![DataSet::single("In", vec![1])])
                .unwrap();
        }
        let stats = cluster.stats();
        let busy_nodes = stats.iter().filter(|(_, s)| s.invocations > 0).count();
        assert_eq!(busy_nodes, 1);
        assert_eq!(stats.iter().map(|(_, s)| s.invocations).sum::<u64>(), 5);
        cluster.shutdown();
    }
}
