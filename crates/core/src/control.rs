//! The worker control plane: PI-controlled core re-allocation.
//!
//! The control plane "periodically (every 30ms) measures the growth rates of
//! the communication and compute engines' queues. It uses the difference
//! between their growth rates as an error signal for a
//! Proportional-Integral controller. If the control signal is positive, the
//! control plane re-assigns a CPU core from the communication engine type to
//! the compute engine type. If it is negative, it re-assigns a core from the
//! compute engine type to the communication engine type." (paper §5)
//!
//! [`PiController`] is the pure decision logic — it is reused verbatim by the
//! discrete-event simulator — and [`ControlPlane`] is the thread that samples
//! the real queues and resizes the engine pools.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dandelion_common::config::ControllerConfig;
use parking_lot::Mutex;

use crate::engine::EnginePool;

/// The actuation decided by one controller tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreMove {
    /// Move one core from communication to compute engines.
    ToCompute,
    /// Move one core from compute to communication engines.
    ToCommunication,
    /// Leave the allocation unchanged.
    Hold,
}

/// The current split of cores between the two engine types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreAllocation {
    /// Cores assigned to compute engines.
    pub compute: usize,
    /// Cores assigned to communication engines.
    pub communication: usize,
}

impl CoreAllocation {
    /// Creates an allocation.
    pub fn new(compute: usize, communication: usize) -> Self {
        Self {
            compute,
            communication,
        }
    }

    /// Total cores in the allocation.
    pub fn total(&self) -> usize {
        self.compute + self.communication
    }

    /// Applies a move, respecting the minimum cores per engine type.
    pub fn apply(&self, core_move: CoreMove, min_per_kind: usize) -> CoreAllocation {
        match core_move {
            CoreMove::ToCompute if self.communication > min_per_kind => CoreAllocation {
                compute: self.compute + 1,
                communication: self.communication - 1,
            },
            CoreMove::ToCommunication if self.compute > min_per_kind => CoreAllocation {
                compute: self.compute - 1,
                communication: self.communication + 1,
            },
            _ => *self,
        }
    }
}

/// Proportional-Integral controller over queue growth rates.
#[derive(Debug, Clone)]
pub struct PiController {
    config: ControllerConfig,
    integral: f64,
    previous_compute_len: Option<usize>,
    previous_communication_len: Option<usize>,
}

impl PiController {
    /// Creates a controller with the given gains.
    pub fn new(config: ControllerConfig) -> Self {
        Self {
            config,
            integral: 0.0,
            previous_compute_len: None,
            previous_communication_len: None,
        }
    }

    /// The configured control interval.
    pub fn interval(&self) -> Duration {
        self.config.interval
    }

    /// The configured minimum cores per engine type.
    pub fn min_cores_per_kind(&self) -> usize {
        self.config.min_cores_per_kind
    }

    /// Feeds one sample of the two queue depths and returns the actuation.
    ///
    /// The first sample only establishes the baseline and always returns
    /// [`CoreMove::Hold`].
    pub fn tick(&mut self, compute_queue_len: usize, communication_queue_len: usize) -> CoreMove {
        let (Some(previous_compute), Some(previous_communication)) =
            (self.previous_compute_len, self.previous_communication_len)
        else {
            self.previous_compute_len = Some(compute_queue_len);
            self.previous_communication_len = Some(communication_queue_len);
            return CoreMove::Hold;
        };
        let compute_growth = compute_queue_len as f64 - previous_compute as f64;
        let communication_growth = communication_queue_len as f64 - previous_communication as f64;
        self.previous_compute_len = Some(compute_queue_len);
        self.previous_communication_len = Some(communication_queue_len);

        // Positive error: the compute queue is growing faster than the
        // communication queue, so compute needs more cores.
        let error = compute_growth - communication_growth;
        self.integral = (self.integral + error).clamp(-100.0, 100.0);
        let signal =
            self.config.proportional_gain * error + self.config.integral_gain * self.integral;

        if signal > self.config.actuation_threshold {
            // Never take a core from a backlogged communication pool to feed
            // an idle compute pool: that only converts noise into starvation.
            if compute_queue_len == 0 && communication_queue_len > 0 {
                return CoreMove::Hold;
            }
            // Bleed the integral when actuating to avoid wind-up oscillation.
            self.integral *= 0.5;
            CoreMove::ToCompute
        } else if signal < -self.config.actuation_threshold {
            if communication_queue_len == 0 && compute_queue_len > 0 {
                return CoreMove::Hold;
            }
            self.integral *= 0.5;
            CoreMove::ToCommunication
        } else {
            CoreMove::Hold
        }
    }

    /// Resets the controller state (used when the workload changes abruptly).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.previous_compute_len = None;
        self.previous_communication_len = None;
    }
}

/// The background thread that periodically runs the controller against the
/// real engine pools.
pub struct ControlPlane {
    stop: Arc<AtomicBool>,
    handle: Mutex<Option<JoinHandle<()>>>,
    allocation: Arc<Mutex<CoreAllocation>>,
}

impl ControlPlane {
    /// Starts the control loop over the two engine pools.
    pub fn start(
        config: ControllerConfig,
        initial: CoreAllocation,
        compute_pool: Arc<EnginePool>,
        communication_pool: Arc<EnginePool>,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let allocation = Arc::new(Mutex::new(initial));
        let thread_stop = Arc::clone(&stop);
        let thread_allocation = Arc::clone(&allocation);
        let mut controller = PiController::new(config);
        let handle = std::thread::Builder::new()
            .name("dandelion-control-plane".to_string())
            .spawn(move || {
                while !thread_stop.load(Ordering::SeqCst) {
                    std::thread::sleep(controller.interval());
                    let compute_len = compute_pool.queue().len();
                    let communication_len = communication_pool.queue().len();
                    let decision = controller.tick(compute_len, communication_len);
                    if decision == CoreMove::Hold {
                        continue;
                    }
                    let mut current = thread_allocation.lock();
                    let next = current.apply(decision, controller.min_cores_per_kind());
                    if next != *current {
                        compute_pool.resize(next.compute);
                        communication_pool.resize(next.communication);
                        *current = next;
                    }
                }
            })
            .expect("spawning the control plane thread");
        Self {
            stop,
            handle: Mutex::new(Some(handle)),
            allocation,
        }
    }

    /// The current core allocation.
    pub fn allocation(&self) -> CoreAllocation {
        *self.allocation.lock()
    }

    /// Stops the control loop.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ControlPlane {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> PiController {
        PiController::new(ControllerConfig::default())
    }

    #[test]
    fn first_tick_establishes_baseline() {
        let mut pi = controller();
        assert_eq!(pi.tick(100, 0), CoreMove::Hold);
    }

    #[test]
    fn compute_queue_growth_moves_cores_to_compute() {
        let mut pi = controller();
        pi.tick(0, 0);
        // Compute queue grows by 10 per tick, communication stays flat.
        let mut moves = Vec::new();
        for step in 1..=5 {
            moves.push(pi.tick(step * 10, 0));
        }
        assert!(moves.contains(&CoreMove::ToCompute));
        assert!(!moves.contains(&CoreMove::ToCommunication));
    }

    #[test]
    fn communication_queue_growth_moves_cores_to_communication() {
        let mut pi = controller();
        pi.tick(0, 0);
        let mut moves = Vec::new();
        for step in 1..=5 {
            moves.push(pi.tick(0, step * 10));
        }
        assert!(moves.contains(&CoreMove::ToCommunication));
        assert!(!moves.contains(&CoreMove::ToCompute));
    }

    #[test]
    fn balanced_growth_holds() {
        let mut pi = controller();
        pi.tick(0, 0);
        for step in 1..=10 {
            assert_eq!(pi.tick(step * 5, step * 5), CoreMove::Hold);
        }
    }

    #[test]
    fn draining_queues_reverse_the_allocation() {
        let mut pi = controller();
        pi.tick(0, 0);
        for step in 1..=5 {
            pi.tick(step * 20, 0);
        }
        // Compute queue drains while communication builds up.
        let mut moves = Vec::new();
        for step in 1..=10u32 {
            let compute = 100usize.saturating_sub((step * 20) as usize);
            moves.push(pi.tick(compute, (step * 15) as usize));
        }
        assert!(moves.contains(&CoreMove::ToCommunication));
    }

    #[test]
    fn reset_clears_state() {
        let mut pi = controller();
        pi.tick(0, 0);
        pi.tick(100, 0);
        pi.reset();
        assert_eq!(pi.tick(1000, 0), CoreMove::Hold);
    }

    #[test]
    fn allocation_respects_minimums() {
        let allocation = CoreAllocation::new(2, 1);
        assert_eq!(allocation.total(), 3);
        // Cannot shrink communication below the minimum of 1.
        assert_eq!(allocation.apply(CoreMove::ToCompute, 1), allocation);
        let grown = allocation.apply(CoreMove::ToCommunication, 1);
        assert_eq!(grown, CoreAllocation::new(1, 2));
        // Cannot shrink compute below the minimum either.
        assert_eq!(grown.apply(CoreMove::ToCommunication, 1), grown);
        assert_eq!(allocation.apply(CoreMove::Hold, 1), allocation);
    }
}
