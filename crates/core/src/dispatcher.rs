//! The dispatcher: drives invocations over the engine pools.
//!
//! The dispatcher owns the per-invocation dataflow state
//! ([`crate::invocation::InvocationState`]), prepares tasks for ready
//! function instances, enqueues them on the engine queues, and feeds
//! completions back until the composition's external outputs are available
//! (paper §5, §6.1). Nested compositions are executed as recursive
//! sub-invocations sharing the same engine pools.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::unbounded;
use dandelion_common::config::WorkerConfig;
use dandelion_common::rng::SplitMix64;
use dandelion_common::{DandelionError, DandelionResult, DataSet, InvocationId};
use dandelion_dsl::CompositionGraph;
use parking_lot::Mutex;

use crate::invocation::{InstanceSpec, InvocationState};
use crate::registry::{Registry, Vertex};
use crate::task::{Task, TaskPayload, TaskQueue, TaskResult};

/// Per-invocation execution statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InvocationReport {
    /// Number of compute tasks executed (sandboxes created).
    pub compute_tasks: usize,
    /// Number of communication tasks executed.
    pub communication_tasks: usize,
    /// Sum of peak memory-context bytes across all compute tasks.
    pub peak_context_bytes: usize,
    /// Sum of the modeled latencies of all tasks (an upper bound on the
    /// modeled critical path; exact path accounting is done by the
    /// simulator).
    pub modeled_busy_time: Duration,
}

/// The result of a completed invocation.
#[derive(Debug, Clone)]
pub struct InvocationOutcome {
    /// The composition's external outputs.
    pub outputs: Vec<DataSet>,
    /// Execution statistics.
    pub report: InvocationReport,
}

/// Routes ready function instances to engine queues and collects results.
pub struct Dispatcher {
    registry: Arc<Registry>,
    compute_queue: TaskQueue,
    communication_queue: TaskQueue,
    config: WorkerConfig,
    rng: Mutex<SplitMix64>,
}

impl Dispatcher {
    /// Creates a dispatcher submitting to the given queues.
    pub fn new(
        registry: Arc<Registry>,
        compute_queue: TaskQueue,
        communication_queue: TaskQueue,
        config: WorkerConfig,
    ) -> Self {
        Self {
            registry,
            compute_queue,
            communication_queue,
            config,
            rng: Mutex::new(SplitMix64::new(0xDA4D_E110)),
        }
    }

    /// Invokes a composition graph with the given inputs and waits for the
    /// external outputs.
    pub fn invoke(
        &self,
        graph: Arc<CompositionGraph>,
        inputs: Vec<DataSet>,
    ) -> DandelionResult<InvocationOutcome> {
        let invocation_id = InvocationId::next();
        let mut state = InvocationState::new(invocation_id, graph, inputs)?;
        let mut report = InvocationReport::default();
        let (reply, results) = unbounded::<TaskResult>();
        let mut outstanding = 0usize;

        let ready = state.ready_instances()?;
        outstanding += self.submit_all(ready, invocation_id, &reply, &mut state, &mut report)?;

        while outstanding > 0 {
            let result = results
                .recv_timeout(self.config.function_timeout + Duration::from_secs(30))
                .map_err(|_| {
                    DandelionError::Dispatch(
                        "timed out waiting for engine results".to_string(),
                    )
                })?;
            outstanding -= 1;
            report.modeled_busy_time += result.modeled_latency;
            report.peak_context_bytes += result.context_high_water;
            let node_finished =
                match state.complete_instance(result.node, result.instance, result.outcome) {
                    Ok(finished) => finished,
                    Err(error) => {
                        // The invocation failed; remaining engine results are
                        // dropped when `results` goes out of scope.
                        return Err(error);
                    }
                };
            if node_finished {
                let ready = state.ready_instances()?;
                outstanding +=
                    self.submit_all(ready, invocation_id, &reply, &mut state, &mut report)?;
            }
        }

        let outputs = state.external_outputs()?;
        Ok(InvocationOutcome { outputs, report })
    }

    /// Submits every ready instance; nested compositions are executed
    /// recursively and completed inline. Returns the number of tasks now
    /// outstanding on the engine queues.
    fn submit_all(
        &self,
        mut ready: Vec<InstanceSpec>,
        invocation_id: InvocationId,
        reply: &crossbeam::channel::Sender<TaskResult>,
        state: &mut InvocationState,
        report: &mut InvocationReport,
    ) -> DandelionResult<usize> {
        let mut outstanding = 0usize;
        // Process the queue of ready instances; completing a nested
        // composition inline can ready further instances, which are appended.
        let mut index = 0;
        while index < ready.len() {
            let spec = ready[index].clone();
            index += 1;
            let vertex = self.registry.resolve(&spec.vertex).ok_or_else(|| {
                DandelionError::NotFound {
                    kind: "vertex",
                    name: spec.vertex.clone(),
                }
            })?;
            match vertex {
                Vertex::Compute(artifact) => {
                    report.compute_tasks += 1;
                    let cold_binary = self
                        .rng
                        .lock()
                        .bernoulli(self.config.binary_cold_load_ratio);
                    let task = Task {
                        invocation: invocation_id,
                        node: spec.node,
                        instance: spec.instance,
                        payload: TaskPayload::Compute {
                            artifact,
                            inputs: spec.inputs,
                            cold_binary,
                            timeout: self.config.function_timeout,
                        },
                        reply: reply.clone(),
                    };
                    self.compute_queue.try_push(task).map_err(|_| {
                        DandelionError::ResourceExhausted("compute queue full".to_string())
                    })?;
                    outstanding += 1;
                }
                Vertex::Communication(_) => {
                    report.communication_tasks += 1;
                    let response_set = spec
                        .output_sets
                        .first()
                        .cloned()
                        .unwrap_or_else(|| "Response".to_string());
                    let task = Task {
                        invocation: invocation_id,
                        node: spec.node,
                        instance: spec.instance,
                        payload: TaskPayload::Http {
                            inputs: spec.inputs,
                            response_set,
                        },
                        reply: reply.clone(),
                    };
                    self.communication_queue.try_push(task).map_err(|_| {
                        DandelionError::ResourceExhausted("communication queue full".to_string())
                    })?;
                    outstanding += 1;
                }
                Vertex::Composition(nested) => {
                    // Nested composition: run it synchronously as its own
                    // invocation and complete the instance inline.
                    let nested_outcome = self.invoke(nested, spec.inputs)?;
                    report.compute_tasks += nested_outcome.report.compute_tasks;
                    report.communication_tasks += nested_outcome.report.communication_tasks;
                    report.peak_context_bytes += nested_outcome.report.peak_context_bytes;
                    report.modeled_busy_time += nested_outcome.report.modeled_busy_time;
                    let finished = state.complete_instance(
                        spec.node,
                        spec.instance,
                        Ok(nested_outcome.outputs),
                    )?;
                    if finished {
                        ready.extend(state.ready_instances()?);
                    }
                }
            }
        }
        Ok(outstanding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineExecutor, EnginePool};
    use dandelion_common::config::{EngineKind, IsolationKind};
    use dandelion_dsl::{CompositionBuilder, Distribution};
    use dandelion_http::validate::ValidationPolicy;
    use dandelion_http::{HttpRequest, HttpResponse};
    use dandelion_isolation::{create_backend, FunctionArtifact, FunctionCtx, HardwarePlatform};
    use dandelion_services::object_store::ObjectStore;
    use dandelion_services::ServiceRegistry;

    struct Harness {
        dispatcher: Dispatcher,
        _compute_pool: EnginePool,
        _communication_pool: EnginePool,
        registry: Arc<Registry>,
    }

    fn harness() -> Harness {
        let registry = Arc::new(Registry::new());
        let compute_queue = TaskQueue::new(EngineKind::Compute, 1024);
        let communication_queue = TaskQueue::new(EngineKind::Communication, 1024);

        let backend = create_backend(IsolationKind::Native, HardwarePlatform::Morello);
        let compute_pool = EnginePool::new(
            EngineExecutor::Compute { backend },
            compute_queue.clone(),
        );
        compute_pool.resize(2);

        let store = Arc::new(ObjectStore::new());
        store.put_object("data", "a.txt", b"alpha".to_vec());
        store.put_object("data", "b.txt", b"beta".to_vec());
        let mut services = ServiceRegistry::new();
        services.register("s3.internal", store);
        let communication_pool = EnginePool::new(
            EngineExecutor::Communication {
                registry: Arc::new(services),
                policy: Arc::new(ValidationPolicy::default()),
            },
            communication_queue.clone(),
        );
        communication_pool.resize(1);

        let dispatcher = Dispatcher::new(
            Arc::clone(&registry),
            compute_queue,
            communication_queue,
            WorkerConfig {
                total_cores: 4,
                initial_communication_cores: 1,
                ..WorkerConfig::default()
            },
        );
        Harness {
            dispatcher,
            _compute_pool: compute_pool,
            _communication_pool: communication_pool,
            registry,
        }
    }

    /// A composition that lists two objects, fetches both over HTTP in
    /// parallel, and concatenates the responses.
    fn register_fetch_concat(registry: &Registry) -> Arc<CompositionGraph> {
        registry
            .register_function(FunctionArtifact::new(
                "MakeRequests",
                &["Requests"],
                |ctx: &mut FunctionCtx| {
                    let keys = ctx.single_input("Keys")?.as_str().unwrap_or_default().to_string();
                    for (index, key) in keys.lines().enumerate() {
                        let request =
                            HttpRequest::get(format!("http://s3.internal/data/{key}")).to_bytes();
                        ctx.push_output_bytes("Requests", &format!("r{index}"), request)?;
                    }
                    Ok(())
                },
            ))
            .unwrap();
        registry
            .register_function(FunctionArtifact::new(
                "Concat",
                &["Joined"],
                |ctx: &mut FunctionCtx| {
                    let responses = ctx
                        .input_set("Responses")
                        .ok_or("missing Responses")?
                        .clone();
                    let mut joined = String::new();
                    for item in &responses.items {
                        let response = dandelion_http::parse_response(&item.data)
                            .map_err(|err| format!("bad response: {err}"))?;
                        joined.push_str(&response.body_text());
                        joined.push('|');
                    }
                    ctx.push_output_bytes("Joined", "joined.txt", joined.into_bytes())
                },
            ))
            .unwrap();
        let graph = CompositionBuilder::new("FetchConcat")
            .input("Keys")
            .output("Result")
            .node("MakeRequests", |node| {
                node.bind("Keys", Distribution::All, "Keys")
                    .publish("FetchRequests", "Requests")
            })
            .node("HTTP", |node| {
                node.bind("Request", Distribution::Each, "FetchRequests")
                    .publish("FetchResponses", "Response")
            })
            .node("Concat", |node| {
                node.bind("Responses", Distribution::All, "FetchResponses")
                    .publish("Result", "Joined")
            })
            .build()
            .unwrap();
        registry.register_composition(graph.clone()).unwrap();
        Arc::new(graph)
    }

    #[test]
    fn end_to_end_compute_and_http_pipeline() {
        let harness = harness();
        let graph = register_fetch_concat(&harness.registry);
        let outcome = harness
            .dispatcher
            .invoke(graph, vec![DataSet::single("Keys", b"a.txt\nb.txt".to_vec())])
            .unwrap();
        assert_eq!(outcome.outputs.len(), 1);
        assert_eq!(outcome.outputs[0].name, "Result");
        let text = String::from_utf8(outcome.outputs[0].items[0].data.as_slice().to_vec()).unwrap();
        assert_eq!(text, "alpha|beta|");
        assert_eq!(outcome.report.compute_tasks, 2);
        assert_eq!(outcome.report.communication_tasks, 2);
        assert!(outcome.report.modeled_busy_time > Duration::ZERO);
    }

    #[test]
    fn nested_compositions_execute_recursively() {
        let harness = harness();
        let _inner = register_fetch_concat(&harness.registry);
        let outer = CompositionBuilder::new("Outer")
            .input("Keys")
            .output("Final")
            .node("FetchConcat", |node| {
                node.bind("Keys", Distribution::All, "Keys")
                    .publish("Final", "Result")
            })
            .build()
            .unwrap();
        harness.registry.register_composition(outer.clone()).unwrap();
        let outcome = harness
            .dispatcher
            .invoke(Arc::new(outer), vec![DataSet::single("Keys", b"a.txt".to_vec())])
            .unwrap();
        let text = String::from_utf8(outcome.outputs[0].items[0].data.as_slice().to_vec()).unwrap();
        assert_eq!(text, "alpha|");
    }

    #[test]
    fn function_faults_fail_the_invocation() {
        let harness = harness();
        harness
            .registry
            .register_function(FunctionArtifact::new(
                "Broken",
                &["Out"],
                |_ctx: &mut FunctionCtx| Err("intentional failure".into()),
            ))
            .unwrap();
        let graph = CompositionBuilder::new("Fails")
            .input("In")
            .output("Out")
            .node("Broken", |node| {
                node.bind("x", Distribution::All, "In").publish("Out", "Out")
            })
            .build()
            .unwrap();
        harness.registry.register_composition(graph.clone()).unwrap();
        let err = harness
            .dispatcher
            .invoke(Arc::new(graph), vec![DataSet::single("In", vec![1])])
            .unwrap_err();
        assert!(matches!(err, DandelionError::FunctionFault { .. }));
    }

    #[test]
    fn http_failures_flow_downstream_as_error_responses() {
        let harness = harness();
        harness
            .registry
            .register_function(FunctionArtifact::new(
                "BadRequests",
                &["Requests"],
                |ctx: &mut FunctionCtx| {
                    let request =
                        HttpRequest::get("http://unknown-host.internal/x").to_bytes();
                    ctx.push_output_bytes("Requests", "r0", request)
                },
            ))
            .unwrap();
        harness
            .registry
            .register_function(FunctionArtifact::new(
                "CheckStatus",
                &["Status"],
                |ctx: &mut FunctionCtx| {
                    let responses = ctx.input_set("Responses").ok_or("missing")?.clone();
                    let response: HttpResponse =
                        dandelion_http::parse_response(&responses.items[0].data)
                            .map_err(|err| format!("{err}"))?;
                    ctx.push_output_bytes(
                        "Status",
                        "code",
                        response.status.0.to_string().into_bytes(),
                    )
                },
            ))
            .unwrap();
        let graph = CompositionBuilder::new("FailureFlow")
            .input("Trigger")
            .output("Status")
            .node("BadRequests", |node| {
                node.bind("t", Distribution::All, "Trigger")
                    .publish("Reqs", "Requests")
            })
            .node("HTTP", |node| {
                node.bind("Request", Distribution::Each, "Reqs")
                    .publish("Resps", "Response")
            })
            .node("CheckStatus", |node| {
                node.bind("Responses", Distribution::All, "Resps")
                    .publish("Status", "Status")
            })
            .build()
            .unwrap();
        harness.registry.register_composition(graph.clone()).unwrap();
        let outcome = harness
            .dispatcher
            .invoke(Arc::new(graph), vec![DataSet::single("Trigger", vec![1])])
            .unwrap();
        assert_eq!(outcome.outputs[0].items[0].as_str(), Some("502"));
    }

    #[test]
    fn unknown_vertices_are_reported() {
        let harness = harness();
        // Build a graph without registering the function it references, and
        // invoke it directly (bypassing registration-time validation).
        let graph = CompositionBuilder::new("Dangling")
            .input("In")
            .output("Out")
            .node("DoesNotExist", |node| {
                node.bind("x", Distribution::All, "In").publish("Out", "o")
            })
            .build()
            .unwrap();
        let err = harness
            .dispatcher
            .invoke(Arc::new(graph), vec![DataSet::single("In", vec![1])])
            .unwrap_err();
        assert!(matches!(err, DandelionError::NotFound { .. }));
    }
}
