//! The dispatcher: drives invocations over the engine pools.
//!
//! The dispatcher owns the per-invocation dataflow state
//! ([`crate::invocation::InvocationState`]), prepares tasks for ready
//! function instances, enqueues them on the engine queues, and feeds
//! completions back until the composition's external outputs are available
//! (paper §5, §6.1).
//!
//! The dispatcher is asynchronous end-to-end, matching the paper's dataflow
//! engine: [`Dispatcher::submit`] registers the invocation in a shared
//! **in-flight table** and returns an [`InvocationHandle`] immediately. A
//! single background *driver* thread multiplexes every engine completion
//! (task results carry their invocation id), advances the owning
//! invocation's dataflow state, submits newly ready instances, and settles
//! the handle when the external outputs are available. Any number of
//! invocations can therefore be in flight per client with no thread parked
//! per invocation; the blocking [`Dispatcher::invoke`] is just
//! `submit(..).wait(None)`.
//!
//! Nested compositions are registered as *child invocations* in the same
//! table, linked to the parent instance that spawned them; a child's
//! completion flows back into the parent exactly like an engine result.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dandelion_common::config::WorkerConfig;
use dandelion_common::rng::SplitMix64;
use dandelion_common::stats::LatencyRecorder;
use dandelion_common::{fail_point, DandelionError, DandelionResult, DataSet, InvocationId};
use dandelion_dsl::CompositionGraph;
use parking_lot::Mutex;

use crate::invocation::{InstanceSpec, InvocationState};
use crate::registry::{Registry, Vertex};
use crate::task::{Task, TaskPayload, TaskQueue, TaskResult};

/// How often the driver thread re-checks the shutdown flag while idle.
const DRIVER_IDLE_INTERVAL: Duration = Duration::from_millis(100);

/// Number of shards of the in-flight table: the machine's available
/// parallelism rounded up to a power of two, clamped to `[4, 64]`.
/// Submitting clients and the driver thread contend only within a shard, so
/// the submit/complete hot path never serializes on one global lock, and the
/// shard count scales with the number of threads that can actually contend
/// instead of being hard-coded.
fn in_flight_shard_count() -> usize {
    std::thread::available_parallelism()
        .map(|cores| cores.get())
        .unwrap_or(16)
        .next_power_of_two()
        .clamp(4, 64)
}

/// Maximum engine replies the driver folds into one wakeup. Batching
/// amortizes the channel receive and keeps one reply from head-of-line
/// blocking the rest; the cap bounds latency for replies arriving during a
/// long drain. (Engines additionally coalesce same-invocation results into
/// one channel message before they get here.)
const DRIVER_MAX_BATCH: usize = 256;

/// A retained result view smaller than `1/RETAINED_PIN_FACTOR` of its
/// parent buffer is copy-compacted when the invocation settles, so that
/// keeping a few result bytes around for polling does not pin a multi-MiB
/// producer buffer until retention expiry.
const RETAINED_PIN_FACTOR: usize = 8;

/// Per-invocation execution statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InvocationReport {
    /// Number of compute tasks executed (sandboxes created).
    pub compute_tasks: usize,
    /// Number of communication tasks executed.
    pub communication_tasks: usize,
    /// Sum of peak memory-context bytes across all compute tasks.
    pub peak_context_bytes: usize,
    /// Sum of the modeled latencies of all tasks (an upper bound on the
    /// modeled critical path; exact path accounting is done by the
    /// simulator).
    pub modeled_busy_time: Duration,
}

impl InvocationReport {
    fn merge(&mut self, other: &InvocationReport) {
        self.compute_tasks += other.compute_tasks;
        self.communication_tasks += other.communication_tasks;
        self.peak_context_bytes += other.peak_context_bytes;
        self.modeled_busy_time += other.modeled_busy_time;
    }
}

/// The result of a completed invocation.
#[derive(Debug, Clone)]
pub struct InvocationOutcome {
    /// The composition's external outputs.
    pub outputs: Vec<DataSet>,
    /// Execution statistics.
    pub report: InvocationReport,
}

/// Where an invocation currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvocationStatus {
    /// Registered but no instance has been handed to an engine yet.
    Queued,
    /// Instances are executing or waiting on engine queues.
    Running,
    /// Finished successfully; the outcome is (or was) available.
    Completed,
    /// Finished with an error; the error is (or was) available.
    Failed,
}

impl InvocationStatus {
    /// Stable lowercase name used by the v1 HTTP API.
    pub fn as_str(&self) -> &'static str {
        match self {
            InvocationStatus::Queued => "queued",
            InvocationStatus::Running => "running",
            InvocationStatus::Completed => "completed",
            InvocationStatus::Failed => "failed",
        }
    }

    /// Returns `true` once the invocation can no longer make progress.
    pub fn is_terminal(&self) -> bool {
        matches!(self, InvocationStatus::Completed | InvocationStatus::Failed)
    }

    /// Parses the stable lowercase name back into a status.
    pub fn parse(text: &str) -> Option<InvocationStatus> {
        match text {
            "queued" => Some(InvocationStatus::Queued),
            "running" => Some(InvocationStatus::Running),
            "completed" => Some(InvocationStatus::Completed),
            "failed" => Some(InvocationStatus::Failed),
            _ => None,
        }
    }
}

impl std::fmt::Display for InvocationStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A point-in-time, non-consuming view of an in-flight or retained
/// invocation, as returned by [`Dispatcher::poll`].
#[derive(Debug, Clone)]
pub struct InvocationSnapshot {
    /// The invocation id.
    pub id: InvocationId,
    /// The composition being executed.
    pub composition: String,
    /// Lifecycle status at the time of the poll.
    pub status: InvocationStatus,
    /// The result, present once `status` is terminal (unless the result was
    /// already consumed through a handle).
    pub outcome: Option<DandelionResult<InvocationOutcome>>,
}

/// Counters and latency shared between the dispatcher's driver thread and
/// whoever owns the dispatcher (the worker node surfaces them as
/// [`crate::worker::WorkerStats`]). Only *top-level* invocations are
/// counted; nested child invocations fold into their parent's report.
#[derive(Debug)]
pub struct DispatchMetrics {
    /// Completed invocations.
    pub invocations: AtomicU64,
    /// Failed invocations.
    pub failures: AtomicU64,
    /// Compute tasks executed by completed invocations.
    pub compute_tasks: AtomicU64,
    /// Communication tasks executed by completed invocations.
    pub communication_tasks: AtomicU64,
    /// Invocations currently registered and not yet terminal.
    pub inflight: AtomicU64,
    /// End-to-end latency of completed invocations.
    pub latency: Mutex<LatencyRecorder>,
}

impl Default for DispatchMetrics {
    fn default() -> Self {
        Self {
            invocations: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            compute_tasks: AtomicU64::new(0),
            communication_tasks: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            latency: Mutex::new(LatencyRecorder::new()),
        }
    }
}

/// A one-shot callback fired when an invocation settles, carrying a clone
/// of the outcome (the retained result stays pollable). Registered through
/// [`InvocationHandle::on_settle`]; invoked on the dispatcher driver thread
/// (or the registering thread when the invocation already settled), never
/// while an entry lock is held — so the callback may use the table freely.
pub type SettleCallback = Box<dyn FnOnce(DandelionResult<InvocationOutcome>) + Send>;

/// Links a child invocation to the parent instance awaiting it.
#[derive(Debug, Clone)]
struct ParentLink {
    invocation: InvocationId,
    node: usize,
    instance: usize,
}

/// The mutable half of an in-flight table entry.
struct EntryInner {
    status: InvocationStatus,
    /// Dataflow state; dropped once the invocation settles.
    dataflow: Option<InvocationState>,
    report: InvocationReport,
    /// Engine tasks plus child invocations currently outstanding.
    outstanding: usize,
    /// Instances whose completion was already applied. A supervised engine
    /// retry can deliver a result for an instance that settled just before
    /// the original engine died — the duplicate must be dropped, never
    /// folded into the dataflow a second time.
    completed: HashSet<(usize, usize)>,
    /// The settled result; `take`n by the first consumer.
    outcome: Option<DandelionResult<InvocationOutcome>>,
    /// Fired (with a clone of the outcome) when the invocation settles.
    notify: Option<SettleCallback>,
    parent: Option<ParentLink>,
    started: Instant,
    /// When the invocation last made progress (registered, or an instance
    /// completed); the stall reaper fails invocations whose progress is
    /// older than `function_timeout + engine_stall_grace`.
    last_progress: Instant,
}

/// One invocation registered in the in-flight table.
struct InvocationEntry {
    composition: String,
    inner: StdMutex<EntryInner>,
    settled: Condvar,
}

impl InvocationEntry {
    fn new(composition: String, state: InvocationState, parent: Option<ParentLink>) -> Self {
        Self {
            composition,
            inner: StdMutex::new(EntryInner {
                status: InvocationStatus::Queued,
                dataflow: Some(state),
                report: InvocationReport::default(),
                outstanding: 0,
                completed: HashSet::new(),
                outcome: None,
                notify: None,
                parent,
                started: Instant::now(),
                last_progress: Instant::now(),
            }),
            settled: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, EntryInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The shared table of every invocation the dispatcher knows about:
/// queued, running, and recently finished (retained for result polling up
/// to the configured retention, after which polling reports not-found).
///
/// The table is split into [`IN_FLIGHT_SHARDS`] shards keyed by invocation
/// id, so concurrent submitters, pollers and the driver thread only contend
/// when they touch the same shard. The retention queue is a separate small
/// mutex taken once per settled invocation.
///
/// Zero-copy trade-off: retained outputs are `SharedBytes` views, so a
/// small output sliced from a large producer buffer (e.g. an item of a big
/// HTTP request body) keeps that whole buffer alive until the entry is
/// consumed or expires. That is the price of delivering results without
/// copying; deployments retaining many results of payload-heavy
/// compositions should size `completed_retention` accordingly.
struct InFlightTable {
    shards: Vec<StdMutex<HashMap<u64, Arc<InvocationEntry>>>>,
    finished: StdMutex<VecDeque<u64>>,
    retention: usize,
}

impl InFlightTable {
    fn new(retention: usize) -> Self {
        Self {
            shards: (0..in_flight_shard_count())
                .map(|_| StdMutex::new(HashMap::new()))
                .collect(),
            finished: StdMutex::new(VecDeque::new()),
            retention: retention.max(1),
        }
    }

    fn shard(&self, id: u64) -> MutexGuard<'_, HashMap<u64, Arc<InvocationEntry>>> {
        self.shards[(id % self.shards.len() as u64) as usize]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn insert(&self, id: InvocationId, entry: Arc<InvocationEntry>) {
        self.shard(id.as_u64()).insert(id.as_u64(), entry);
    }

    fn entry(&self, id: InvocationId) -> Option<Arc<InvocationEntry>> {
        self.shard(id.as_u64()).get(&id.as_u64()).cloned()
    }

    fn remove(&self, id: InvocationId) {
        self.shard(id.as_u64()).remove(&id.as_u64());
    }

    /// Records a settled invocation and expires the oldest retained results
    /// beyond the retention limit.
    fn mark_finished(&self, id: InvocationId) {
        let expired: Vec<u64> = {
            let mut finished = self.finished.lock().unwrap_or_else(PoisonError::into_inner);
            finished.push_back(id.as_u64());
            let excess = finished.len().saturating_sub(self.retention);
            finished.drain(..excess).collect()
        };
        for id in expired {
            self.shard(id).remove(&id);
        }
    }

    fn all_entries(&self) -> Vec<(InvocationId, Arc<InvocationEntry>)> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            all.extend(
                shard
                    .iter()
                    .map(|(id, entry)| (InvocationId::from_raw(*id), Arc::clone(entry))),
            );
        }
        all
    }
}

/// A handle to one submitted invocation.
///
/// The handle does not pin a thread: the invocation advances on the engine
/// and driver threads whether or not anyone is watching. Results are
/// consumed exactly once — the first successful [`try_result`] or [`wait`]
/// takes the outcome and releases the table entry.
///
/// [`try_result`]: InvocationHandle::try_result
/// [`wait`]: InvocationHandle::wait
pub struct InvocationHandle {
    id: InvocationId,
    entry: Arc<InvocationEntry>,
    table: Arc<InFlightTable>,
}

impl InvocationHandle {
    /// The invocation's id, as reported by the v1 HTTP API.
    pub fn id(&self) -> InvocationId {
        self.id
    }

    /// The composition this invocation runs.
    pub fn composition(&self) -> &str {
        &self.entry.composition
    }

    /// The invocation's current lifecycle status.
    pub fn status(&self) -> InvocationStatus {
        self.entry.lock().status
    }

    /// Registers a one-shot callback fired when the invocation settles,
    /// with a clone of the outcome (the retained result stays pollable by
    /// id until retention expiry).
    ///
    /// This is the asynchronous completion hook of the serving layer: an
    /// event loop submits an invocation, parks the connection, and the
    /// callback posts the finished response back to the owning loop —
    /// no thread ever blocks in [`InvocationHandle::wait`]. The callback
    /// runs on the dispatcher driver thread (or immediately on the calling
    /// thread when the invocation has already settled) and is never invoked
    /// while the entry lock is held, so it may poll or consume the handle.
    /// Only one callback can be registered per invocation; a later
    /// registration replaces an unfired earlier one.
    pub fn on_settle<F>(&self, callback: F)
    where
        F: FnOnce(DandelionResult<InvocationOutcome>) + Send + 'static,
    {
        let mut callback: Option<SettleCallback> = Some(Box::new(callback));
        let immediate = {
            let mut inner = self.entry.lock();
            if inner.status.is_terminal() {
                Some(inner.outcome.clone().unwrap_or_else(|| {
                    Err(DandelionError::Dispatch(
                        "invocation result was already taken".to_string(),
                    ))
                }))
            } else {
                inner.notify = callback.take();
                None
            }
        };
        if let (Some(callback), Some(outcome)) = (callback, immediate) {
            callback(outcome);
        }
    }

    /// Takes the result if the invocation has settled; `None` while it is
    /// still queued/running (or if the result was already consumed).
    pub fn try_result(&self) -> Option<DandelionResult<InvocationOutcome>> {
        let outcome = {
            let mut inner = self.entry.lock();
            if !inner.status.is_terminal() {
                return None;
            }
            inner.outcome.take()
        };
        if outcome.is_some() {
            self.table.remove(self.id);
        }
        outcome
    }

    /// Blocks until the invocation settles and takes the result, releasing
    /// the table entry.
    ///
    /// With a timeout, [`DandelionError::Timeout`] is returned if the
    /// invocation has not settled in time; the invocation itself keeps
    /// running and can still be waited on or polled afterwards.
    pub fn wait(&self, timeout: Option<Duration>) -> DandelionResult<InvocationOutcome> {
        let outcome = {
            let mut inner = self.wait_settled(timeout)?;
            inner.outcome.take()
        };
        self.table.remove(self.id);
        outcome.unwrap_or_else(|| {
            Err(DandelionError::Dispatch(
                "invocation result was already taken".to_string(),
            ))
        })
    }

    /// Blocks until the invocation settles and returns a clone of the
    /// result, leaving it retained for further polling (until retention
    /// expiry). This is the non-consuming wait the client facade uses so
    /// both its backends behave identically.
    pub fn wait_snapshot(&self, timeout: Option<Duration>) -> DandelionResult<InvocationOutcome> {
        let inner = self.wait_settled(timeout)?;
        inner.outcome.clone().unwrap_or_else(|| {
            Err(DandelionError::Dispatch(
                "invocation result was already taken".to_string(),
            ))
        })
    }

    /// Waits until the entry is terminal and returns the guard.
    fn wait_settled(
        &self,
        timeout: Option<Duration>,
    ) -> DandelionResult<MutexGuard<'_, EntryInner>> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut inner = self.entry.lock();
        while !inner.status.is_terminal() {
            match deadline {
                None => {
                    inner = self
                        .entry
                        .settled
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(DandelionError::Timeout {
                            function: self.entry.composition.clone(),
                            limit_ms: timeout.unwrap_or_default().as_millis() as u64,
                        });
                    }
                    let (guard, _) = self
                        .entry
                        .settled
                        .wait_timeout(inner, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    inner = guard;
                }
            }
        }
        Ok(inner)
    }
}

impl std::fmt::Debug for InvocationHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InvocationHandle")
            .field("id", &self.id)
            .field("composition", &self.entry.composition)
            .field("status", &self.status())
            .finish()
    }
}

/// Work the driver (or a submitting client thread) still has to apply.
///
/// Completions and child spawns are queued instead of applied recursively so
/// that only one entry lock is ever held at a time — a child that settles
/// instantly produces a `Complete` item for its parent rather than locking
/// the parent while the child is being advanced.
enum WorkItem {
    Complete {
        invocation: InvocationId,
        node: usize,
        instance: usize,
        outcome: DandelionResult<Vec<DataSet>>,
        context_high_water: usize,
        modeled_latency: Duration,
        /// Present when the completion is a child invocation folding its
        /// execution statistics into the parent.
        child_report: Option<InvocationReport>,
    },
    SpawnChild {
        parent: ParentLink,
        graph: Arc<CompositionGraph>,
        inputs: Vec<DataSet>,
    },
    /// A settle callback to fire now that the owning entry's lock has been
    /// released (firing under the lock would deadlock callbacks that touch
    /// the handle or the table).
    Notify {
        callback: SettleCallback,
        outcome: DandelionResult<InvocationOutcome>,
    },
}

impl WorkItem {
    fn from_task_result(result: TaskResult) -> WorkItem {
        WorkItem::Complete {
            invocation: result.invocation,
            node: result.node,
            instance: result.instance,
            outcome: result.outcome,
            context_high_water: result.context_high_water,
            modeled_latency: result.modeled_latency,
            child_report: None,
        }
    }
}

struct DispatcherCore {
    registry: Arc<Registry>,
    compute_queue: TaskQueue,
    communication_queue: TaskQueue,
    config: WorkerConfig,
    rng: Mutex<SplitMix64>,
    table: Arc<InFlightTable>,
    results: Sender<Vec<TaskResult>>,
    metrics: Arc<DispatchMetrics>,
    shutting_down: AtomicBool,
}

/// Routes ready function instances to engine queues and collects results.
pub struct Dispatcher {
    core: Arc<DispatcherCore>,
    driver: Mutex<Option<JoinHandle<()>>>,
}

impl Dispatcher {
    /// Creates a dispatcher submitting to the given queues, with private
    /// metrics.
    pub fn new(
        registry: Arc<Registry>,
        compute_queue: TaskQueue,
        communication_queue: TaskQueue,
        config: WorkerConfig,
    ) -> Self {
        Self::with_metrics(
            registry,
            compute_queue,
            communication_queue,
            config,
            Arc::new(DispatchMetrics::default()),
        )
    }

    /// Creates a dispatcher that reports into the given shared metrics.
    pub fn with_metrics(
        registry: Arc<Registry>,
        compute_queue: TaskQueue,
        communication_queue: TaskQueue,
        config: WorkerConfig,
        metrics: Arc<DispatchMetrics>,
    ) -> Self {
        let (results_tx, results_rx) = unbounded::<Vec<TaskResult>>();
        let core = Arc::new(DispatcherCore {
            registry,
            compute_queue,
            communication_queue,
            table: Arc::new(InFlightTable::new(config.completed_retention)),
            config,
            rng: Mutex::new(SplitMix64::new(0xDA4D_E110)),
            results: results_tx,
            metrics,
            shutting_down: AtomicBool::new(false),
        });
        let driver_core = Arc::clone(&core);
        let driver = std::thread::Builder::new()
            .name("dandelion-dispatcher".to_string())
            .spawn(move || driver_loop(driver_core, results_rx))
            .expect("spawning the dispatcher driver thread");
        Self {
            core,
            driver: Mutex::new(Some(driver)),
        }
    }

    /// The metrics this dispatcher reports into.
    pub fn metrics(&self) -> Arc<DispatchMetrics> {
        Arc::clone(&self.core.metrics)
    }

    /// Registers an invocation of `graph` and returns a handle immediately.
    ///
    /// Errors are returned synchronously only for problems detectable at
    /// submission time (invalid inputs, engine queues full, dispatcher shut
    /// down); execution failures surface through the handle.
    pub fn submit(
        &self,
        graph: Arc<CompositionGraph>,
        inputs: Vec<DataSet>,
    ) -> DandelionResult<InvocationHandle> {
        if self.core.shutting_down.load(Ordering::SeqCst) {
            return Err(DandelionError::Cancelled);
        }
        match self.core.register(graph, inputs, None) {
            Ok((id, entry, work)) => {
                self.core.process(work);
                // Shutdown may have raced with registration: the driver
                // could have run its final cancellation sweep before this
                // entry existed, in which case nothing would ever settle
                // it. Re-check and cancel the fresh entry ourselves.
                if self.core.shutting_down.load(Ordering::SeqCst) {
                    self.core.cancel_entry(&entry);
                    return Err(DandelionError::Cancelled);
                }
                // Engine-queue back-pressure during the initial submission
                // is a synchronous, retryable condition, not an executed
                // invocation: surface it here so clients see 429 instead of
                // an accepted-then-failed handle. (The failure was already
                // counted when the entry settled.)
                {
                    let mut inner = entry.lock();
                    if matches!(
                        inner.outcome,
                        Some(Err(DandelionError::ResourceExhausted(_)))
                    ) {
                        let error = match inner.outcome.take() {
                            Some(Err(error)) => error,
                            _ => unreachable!("matched above"),
                        };
                        drop(inner);
                        self.core.table.remove(id);
                        return Err(error);
                    }
                }
                Ok(InvocationHandle {
                    id,
                    entry,
                    table: Arc::clone(&self.core.table),
                })
            }
            Err(error) => {
                self.core.metrics.failures.fetch_add(1, Ordering::Relaxed);
                Err(error)
            }
        }
    }

    /// Invokes a composition graph with the given inputs and waits for the
    /// external outputs; equivalent to `submit(graph, inputs)?.wait(None)`.
    pub fn invoke(
        &self,
        graph: Arc<CompositionGraph>,
        inputs: Vec<DataSet>,
    ) -> DandelionResult<InvocationOutcome> {
        self.submit(graph, inputs)?.wait(None)
    }

    /// A non-consuming view of an invocation in the in-flight table.
    ///
    /// Returns `None` for ids the table has never seen or whose retained
    /// result has expired.
    pub fn poll(&self, id: InvocationId) -> Option<InvocationSnapshot> {
        let entry = self.core.table.entry(id)?;
        let inner = entry.lock();
        Some(InvocationSnapshot {
            id,
            composition: entry.composition.clone(),
            status: inner.status,
            outcome: inner.outcome.clone(),
        })
    }

    /// Stops the driver thread; unsettled invocations fail with
    /// [`DandelionError::Cancelled`].
    pub fn shutdown(&self) {
        self.core.shutting_down.store(true, Ordering::SeqCst);
        // Wake the driver promptly with a sentinel result for an id the
        // table has never issued.
        let _ = self.core.results.send(vec![TaskResult {
            invocation: InvocationId::from_raw(0),
            node: 0,
            instance: 0,
            outcome: Err(DandelionError::Cancelled),
            context_high_water: 0,
            modeled_latency: Duration::ZERO,
        }]);
        if let Some(driver) = self.driver.lock().take() {
            let _ = driver.join();
        }
    }
}

impl Drop for Dispatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn driver_loop(core: Arc<DispatcherCore>, results: Receiver<Vec<TaskResult>>) {
    loop {
        if core.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        match results.recv_timeout(DRIVER_IDLE_INTERVAL) {
            Ok(first) => {
                // Engines already coalesce same-invocation results into one
                // message; drain whatever further messages have arrived
                // since the last wakeup (up to the batch cap) and apply
                // everything in one pass, instead of one channel round-trip
                // and one table lookup cycle per reply.
                let mut batch: Vec<WorkItem> = Vec::with_capacity(first.len());
                batch.extend(first.into_iter().map(WorkItem::from_task_result));
                while batch.len() < DRIVER_MAX_BATCH {
                    match results.try_recv() {
                        Ok(more) => batch.extend(more.into_iter().map(WorkItem::from_task_result)),
                        Err(_) => break,
                    }
                }
                core.process(batch);
            }
            Err(RecvTimeoutError::Timeout) => core.reap_stalled(),
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    core.cancel_unsettled();
}

impl DispatcherCore {
    /// Creates and kicks off a (top-level or child) invocation. Returns the
    /// entry plus deferred work items; the caller must [`process`] them.
    ///
    /// [`process`]: DispatcherCore::process
    fn register(
        &self,
        graph: Arc<CompositionGraph>,
        inputs: Vec<DataSet>,
        parent: Option<ParentLink>,
    ) -> DandelionResult<(InvocationId, Arc<InvocationEntry>, Vec<WorkItem>)> {
        let id = InvocationId::next();
        let state = InvocationState::new(id, Arc::clone(&graph), inputs)?;
        let top_level = parent.is_none();
        let entry = Arc::new(InvocationEntry::new(graph.name.clone(), state, parent));
        if top_level {
            self.metrics.inflight.fetch_add(1, Ordering::SeqCst);
        }
        self.table.insert(id, Arc::clone(&entry));
        let mut inner = entry.lock();
        inner.status = InvocationStatus::Running;
        let work = self.advance(id, &entry, &mut inner, None);
        drop(inner);
        Ok((id, entry, work))
    }

    /// Applies queued work items until none remain. Holds at most one entry
    /// lock at a time.
    fn process(&self, items: Vec<WorkItem>) {
        let mut queue: VecDeque<WorkItem> = items.into();
        while let Some(item) = queue.pop_front() {
            let more = match item {
                WorkItem::Complete {
                    invocation,
                    node,
                    instance,
                    outcome,
                    context_high_water,
                    modeled_latency,
                    child_report,
                } => {
                    // Unknown ids are results for abandoned or already
                    // settled invocations; they are dropped.
                    let Some(entry) = self.table.entry(invocation) else {
                        continue;
                    };
                    let mut inner = entry.lock();
                    self.advance(
                        invocation,
                        &entry,
                        &mut inner,
                        Some(Completion {
                            node,
                            instance,
                            outcome,
                            context_high_water,
                            modeled_latency,
                            child_report,
                        }),
                    )
                }
                WorkItem::Notify { callback, outcome } => {
                    fail_point!("dispatcher/notify");
                    callback(outcome);
                    continue;
                }
                WorkItem::SpawnChild {
                    parent,
                    graph,
                    inputs,
                } => match self.register(graph, inputs, Some(parent.clone())) {
                    Ok((_, _, work)) => work,
                    Err(error) => vec![WorkItem::Complete {
                        invocation: parent.invocation,
                        node: parent.node,
                        instance: parent.instance,
                        outcome: Err(error),
                        context_high_water: 0,
                        modeled_latency: Duration::ZERO,
                        child_report: None,
                    }],
                },
            };
            queue.extend(more);
        }
    }

    /// Advances one invocation: applies an instance completion (if any),
    /// submits newly ready instances, and settles the invocation when its
    /// dataflow has no work left. Returns deferred work for other entries.
    fn advance(
        &self,
        id: InvocationId,
        entry: &Arc<InvocationEntry>,
        inner: &mut EntryInner,
        completion: Option<Completion>,
    ) -> Vec<WorkItem> {
        let mut out = Vec::new();
        if inner.status.is_terminal() {
            return out;
        }
        let mut check_ready = completion.is_none();
        if let Some(completion) = completion {
            if !inner
                .completed
                .insert((completion.node, completion.instance))
            {
                // A duplicate result for an instance that already completed
                // (an engine died after replying and its retry ran anyway):
                // settling it twice would corrupt the dataflow counters.
                return out;
            }
            inner.last_progress = Instant::now();
            inner.outstanding = inner.outstanding.saturating_sub(1);
            inner.report.peak_context_bytes += completion.context_high_water;
            inner.report.modeled_busy_time += completion.modeled_latency;
            if let Some(child_report) = &completion.child_report {
                inner.report.merge(child_report);
            }
            let dataflow = inner
                .dataflow
                .as_mut()
                .expect("running invocations keep their dataflow state");
            match dataflow.complete_instance(
                completion.node,
                completion.instance,
                completion.outcome,
            ) {
                Ok(finished_node) => check_ready = finished_node,
                Err(error) => {
                    self.settle(id, entry, inner, Err(error), &mut out);
                    return out;
                }
            }
        }
        if check_ready {
            let ready = {
                let dataflow = inner
                    .dataflow
                    .as_mut()
                    .expect("running invocations keep their dataflow state");
                match dataflow.ready_instances() {
                    Ok(ready) => ready,
                    Err(error) => {
                        self.settle(id, entry, inner, Err(error), &mut out);
                        return out;
                    }
                }
            };
            for spec in ready {
                if let Err(error) = self.submit_instance(id, spec, inner, &mut out) {
                    self.settle(id, entry, inner, Err(error), &mut out);
                    return out;
                }
            }
        }
        let complete = inner.outstanding == 0
            && inner
                .dataflow
                .as_ref()
                .map(InvocationState::is_complete)
                .unwrap_or(false);
        if complete {
            let outcome = inner
                .dataflow
                .as_ref()
                .expect("checked above")
                .external_outputs();
            self.settle(id, entry, inner, outcome, &mut out);
        }
        out
    }

    /// Routes one ready instance: compute and communication instances go to
    /// the engine queues, nested compositions become child invocations.
    fn submit_instance(
        &self,
        id: InvocationId,
        spec: InstanceSpec,
        inner: &mut EntryInner,
        out: &mut Vec<WorkItem>,
    ) -> DandelionResult<()> {
        let vertex =
            self.registry
                .resolve(&spec.vertex)
                .ok_or_else(|| DandelionError::NotFound {
                    kind: "vertex",
                    name: spec.vertex.clone(),
                })?;
        match vertex {
            Vertex::Compute(artifact) => {
                inner.report.compute_tasks += 1;
                let cold_binary = self
                    .rng
                    .lock()
                    .bernoulli(self.config.binary_cold_load_ratio);
                let task = Task {
                    invocation: id,
                    node: spec.node,
                    instance: spec.instance,
                    payload: TaskPayload::Compute {
                        artifact,
                        inputs: spec.inputs,
                        cold_binary,
                        timeout: self.config.function_timeout,
                    },
                    reply: self.results.clone(),
                };
                self.compute_queue.try_push(task).map_err(|_| {
                    DandelionError::ResourceExhausted("compute queue full".to_string())
                })?;
                inner.outstanding += 1;
            }
            Vertex::Communication(_) => {
                inner.report.communication_tasks += 1;
                let response_set = spec
                    .output_sets
                    .first()
                    .cloned()
                    .unwrap_or_else(|| "Response".to_string());
                let task = Task {
                    invocation: id,
                    node: spec.node,
                    instance: spec.instance,
                    payload: TaskPayload::Http {
                        inputs: spec.inputs,
                        response_set,
                    },
                    reply: self.results.clone(),
                };
                self.communication_queue.try_push(task).map_err(|_| {
                    DandelionError::ResourceExhausted("communication queue full".to_string())
                })?;
                inner.outstanding += 1;
            }
            Vertex::Composition(nested) => {
                // Nested composition: a child invocation in the same table,
                // completing the parent instance when it settles.
                inner.outstanding += 1;
                out.push(WorkItem::SpawnChild {
                    parent: ParentLink {
                        invocation: id,
                        node: spec.node,
                        instance: spec.instance,
                    },
                    graph: nested,
                    inputs: spec.inputs,
                });
            }
        }
        Ok(())
    }

    /// Settles an invocation: records the outcome, updates metrics for
    /// top-level invocations, wakes waiters, and queues the parent's
    /// completion for child invocations.
    fn settle(
        &self,
        id: InvocationId,
        entry: &Arc<InvocationEntry>,
        inner: &mut EntryInner,
        outcome: DandelionResult<Vec<DataSet>>,
        out: &mut Vec<WorkItem>,
    ) {
        // Exactly-once: every settle path (dataflow completion, dataflow
        // error, stall reaper) funnels through here, and racing paths must
        // not double-count metrics or fire the notify callback twice.
        if inner.status.is_terminal() {
            return;
        }
        fail_point!("dispatcher/settle");
        let mut result = outcome.map(|outputs| InvocationOutcome {
            outputs,
            report: inner.report.clone(),
        });
        let top_level = inner.parent.is_none();
        if top_level {
            // Retained results live in the table until consumed or expired;
            // compact views that would pin a much larger parent buffer for
            // that whole time. Child outputs are not compacted — they flow
            // straight back into the parent's dataflow, where keeping the
            // producer's buffer shared is the point.
            if let Ok(outcome) = &mut result {
                compact_retained_outputs(&mut outcome.outputs);
            }
            match &result {
                Ok(outcome) => {
                    self.metrics.invocations.fetch_add(1, Ordering::Relaxed);
                    self.metrics
                        .compute_tasks
                        .fetch_add(outcome.report.compute_tasks as u64, Ordering::Relaxed);
                    self.metrics
                        .communication_tasks
                        .fetch_add(outcome.report.communication_tasks as u64, Ordering::Relaxed);
                    self.metrics.latency.lock().record(inner.started.elapsed());
                }
                Err(_) => {
                    self.metrics.failures.fetch_add(1, Ordering::Relaxed);
                }
            }
            self.metrics.inflight.fetch_sub(1, Ordering::SeqCst);
        }
        if let Some(parent) = inner.parent.take() {
            out.push(WorkItem::Complete {
                invocation: parent.invocation,
                node: parent.node,
                instance: parent.instance,
                outcome: result
                    .as_ref()
                    .map(|o| o.outputs.clone())
                    .map_err(Clone::clone),
                context_high_water: 0,
                modeled_latency: Duration::ZERO,
                child_report: result.as_ref().ok().map(|o| o.report.clone()),
            });
        }
        inner.status = if result.is_ok() {
            InvocationStatus::Completed
        } else {
            InvocationStatus::Failed
        };
        // The callback is deferred as a work item so it runs after this
        // entry's lock is released; it gets a clone, the retained result
        // stays available for polling.
        if let Some(callback) = inner.notify.take() {
            out.push(WorkItem::Notify {
                callback,
                outcome: result.clone(),
            });
        }
        inner.outcome = Some(result);
        inner.dataflow = None;
        entry.settled.notify_all();
        self.table.mark_finished(id);
    }

    /// Fails every unsettled invocation; called when the driver stops.
    fn cancel_unsettled(&self) {
        for (_, entry) in self.table.all_entries() {
            self.cancel_entry(&entry);
        }
    }

    /// Fails invocations that have gone longer than
    /// `function_timeout + engine_stall_grace` without any instance
    /// completing. Engines time functions out themselves, so this only
    /// fires if an engine reply is lost (e.g. an engine thread died);
    /// without it, such an invocation would leave `wait(None)` callers
    /// blocked forever.
    fn reap_stalled(&self) {
        let deadline = self.config.function_timeout + self.config.engine_stall_grace;
        let mut work = Vec::new();
        for (id, entry) in self.table.all_entries() {
            let mut inner = entry.lock();
            if inner.status.is_terminal() || inner.last_progress.elapsed() <= deadline {
                continue;
            }
            self.settle(
                id,
                &entry,
                &mut inner,
                Err(DandelionError::Dispatch(
                    "timed out waiting for engine results".to_string(),
                )),
                &mut work,
            );
        }
        self.process(work);
    }

    /// Fails one invocation with [`DandelionError::Cancelled`]; a no-op if
    /// it already settled.
    fn cancel_entry(&self, entry: &Arc<InvocationEntry>) {
        let notify = {
            let mut inner = entry.lock();
            if inner.status.is_terminal() {
                return;
            }
            if inner.parent.is_none() {
                self.metrics.failures.fetch_add(1, Ordering::Relaxed);
                self.metrics.inflight.fetch_sub(1, Ordering::SeqCst);
            }
            inner.status = InvocationStatus::Failed;
            inner.outcome = Some(Err(DandelionError::Cancelled));
            inner.dataflow = None;
            entry.settled.notify_all();
            inner.notify.take()
        };
        // Fired outside the entry lock, like every settle notification.
        if let Some(callback) = notify {
            callback(Err(DandelionError::Cancelled));
        }
    }
}

/// Copy-compacts retained result views whose window is less than
/// `1/RETAINED_PIN_FACTOR` of their parent buffer (ROADMAP follow-up e): a
/// 40-byte result sliced out of a multi-MiB receive buffer must not keep
/// that buffer alive until retention expiry. Views at or above the
/// threshold — including every whole-buffer view, for which `compact` is
/// free — keep their zero-copy sharing.
fn compact_retained_outputs(sets: &mut [DataSet]) {
    for set in sets {
        for item in &mut set.items {
            if item.data.len() * RETAINED_PIN_FACTOR < item.data.backing_len() {
                item.data = item.data.compact();
            }
        }
    }
}

/// A completed instance (engine result or child invocation) to fold into an
/// invocation's dataflow state.
struct Completion {
    node: usize,
    instance: usize,
    outcome: DandelionResult<Vec<DataSet>>,
    context_high_water: usize,
    modeled_latency: Duration,
    child_report: Option<InvocationReport>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineExecutor, EnginePool};
    use dandelion_common::config::{EngineKind, IsolationKind};
    use dandelion_dsl::{CompositionBuilder, Distribution};
    use dandelion_http::validate::ValidationPolicy;
    use dandelion_http::{HttpRequest, HttpResponse};
    use dandelion_isolation::{create_backend, FunctionArtifact, FunctionCtx, HardwarePlatform};
    use dandelion_services::object_store::ObjectStore;
    use dandelion_services::ServiceRegistry;

    struct Harness {
        dispatcher: Dispatcher,
        _compute_pool: EnginePool,
        _communication_pool: EnginePool,
        registry: Arc<Registry>,
    }

    fn harness() -> Harness {
        harness_with_config(WorkerConfig {
            total_cores: 4,
            initial_communication_cores: 1,
            ..WorkerConfig::default()
        })
    }

    fn harness_with_config(config: WorkerConfig) -> Harness {
        let registry = Arc::new(Registry::new());
        let compute_queue = TaskQueue::new(EngineKind::Compute, 1024);
        let communication_queue = TaskQueue::new(EngineKind::Communication, 1024);

        let backend = create_backend(IsolationKind::Native, HardwarePlatform::Morello);
        let compute_pool =
            EnginePool::new(EngineExecutor::Compute { backend }, compute_queue.clone());
        compute_pool.resize(2);

        let store = Arc::new(ObjectStore::new());
        store.put_object("data", "a.txt", b"alpha".to_vec());
        store.put_object("data", "b.txt", b"beta".to_vec());
        let mut services = ServiceRegistry::new();
        services.register("s3.internal", store);
        let communication_pool = EnginePool::new(
            EngineExecutor::Communication {
                registry: Arc::new(services),
                policy: Arc::new(ValidationPolicy::default()),
            },
            communication_queue.clone(),
        );
        communication_pool.resize(1);

        let dispatcher = Dispatcher::new(
            Arc::clone(&registry),
            compute_queue,
            communication_queue,
            config,
        );
        Harness {
            dispatcher,
            _compute_pool: compute_pool,
            _communication_pool: communication_pool,
            registry,
        }
    }

    /// A composition that lists two objects, fetches both over HTTP in
    /// parallel, and concatenates the responses.
    fn register_fetch_concat(registry: &Registry) -> Arc<CompositionGraph> {
        registry
            .register_function(FunctionArtifact::new(
                "MakeRequests",
                &["Requests"],
                |ctx: &mut FunctionCtx| {
                    let keys = ctx
                        .single_input("Keys")?
                        .as_str()
                        .unwrap_or_default()
                        .to_string();
                    for (index, key) in keys.lines().enumerate() {
                        let request =
                            HttpRequest::get(format!("http://s3.internal/data/{key}")).to_bytes();
                        ctx.push_output_bytes("Requests", &format!("r{index}"), request)?;
                    }
                    Ok(())
                },
            ))
            .unwrap();
        registry
            .register_function(FunctionArtifact::new(
                "Concat",
                &["Joined"],
                |ctx: &mut FunctionCtx| {
                    let responses = ctx
                        .input_set("Responses")
                        .ok_or("missing Responses")?
                        .clone();
                    let mut joined = String::new();
                    for item in &responses.items {
                        let response = dandelion_http::parse_response(&item.data)
                            .map_err(|err| format!("bad response: {err}"))?;
                        joined.push_str(&response.body_text());
                        joined.push('|');
                    }
                    ctx.push_output_bytes("Joined", "joined.txt", joined.into_bytes())
                },
            ))
            .unwrap();
        let graph = CompositionBuilder::new("FetchConcat")
            .input("Keys")
            .output("Result")
            .node("MakeRequests", |node| {
                node.bind("Keys", Distribution::All, "Keys")
                    .publish("FetchRequests", "Requests")
            })
            .node("HTTP", |node| {
                node.bind("Request", Distribution::Each, "FetchRequests")
                    .publish("FetchResponses", "Response")
            })
            .node("Concat", |node| {
                node.bind("Responses", Distribution::All, "FetchResponses")
                    .publish("Result", "Joined")
            })
            .build()
            .unwrap();
        registry.register_composition(graph.clone()).unwrap();
        Arc::new(graph)
    }

    fn register_copy_identity(registry: &Registry) -> Arc<CompositionGraph> {
        registry
            .register_function(FunctionArtifact::new(
                "Copy",
                &["Copied"],
                |ctx: &mut FunctionCtx| {
                    let data = ctx.single_input("Data")?.data.as_slice().to_vec();
                    ctx.push_output_bytes("Copied", "copy", data)
                },
            ))
            .unwrap();
        let graph = CompositionBuilder::new("Identity")
            .input("In")
            .output("Out")
            .node("Copy", |node| {
                node.bind("Data", Distribution::All, "In")
                    .publish("Out", "Copied")
            })
            .build()
            .unwrap();
        registry.register_composition(graph.clone()).unwrap();
        Arc::new(graph)
    }

    #[test]
    fn end_to_end_compute_and_http_pipeline() {
        let harness = harness();
        let graph = register_fetch_concat(&harness.registry);
        let outcome = harness
            .dispatcher
            .invoke(
                graph,
                vec![DataSet::single("Keys", b"a.txt\nb.txt".to_vec())],
            )
            .unwrap();
        assert_eq!(outcome.outputs.len(), 1);
        assert_eq!(outcome.outputs[0].name, "Result");
        let text = String::from_utf8(outcome.outputs[0].items[0].data.as_slice().to_vec()).unwrap();
        assert_eq!(text, "alpha|beta|");
        assert_eq!(outcome.report.compute_tasks, 2);
        assert_eq!(outcome.report.communication_tasks, 2);
        assert!(outcome.report.modeled_busy_time > Duration::ZERO);
    }

    #[test]
    fn nested_compositions_execute_as_child_invocations() {
        let harness = harness();
        let _inner = register_fetch_concat(&harness.registry);
        let outer = CompositionBuilder::new("Outer")
            .input("Keys")
            .output("Final")
            .node("FetchConcat", |node| {
                node.bind("Keys", Distribution::All, "Keys")
                    .publish("Final", "Result")
            })
            .build()
            .unwrap();
        harness
            .registry
            .register_composition(outer.clone())
            .unwrap();
        let outcome = harness
            .dispatcher
            .invoke(
                Arc::new(outer),
                vec![DataSet::single("Keys", b"a.txt".to_vec())],
            )
            .unwrap();
        let text = String::from_utf8(outcome.outputs[0].items[0].data.as_slice().to_vec()).unwrap();
        assert_eq!(text, "alpha|");
        // The child's tasks fold into the parent's report.
        assert_eq!(outcome.report.compute_tasks, 2);
        assert_eq!(outcome.report.communication_tasks, 1);
    }

    #[test]
    fn function_faults_fail_the_invocation() {
        let harness = harness();
        harness
            .registry
            .register_function(FunctionArtifact::new(
                "Broken",
                &["Out"],
                |_ctx: &mut FunctionCtx| Err("intentional failure".into()),
            ))
            .unwrap();
        let graph = CompositionBuilder::new("Fails")
            .input("In")
            .output("Out")
            .node("Broken", |node| {
                node.bind("x", Distribution::All, "In")
                    .publish("Out", "Out")
            })
            .build()
            .unwrap();
        harness
            .registry
            .register_composition(graph.clone())
            .unwrap();
        let err = harness
            .dispatcher
            .invoke(Arc::new(graph), vec![DataSet::single("In", vec![1])])
            .unwrap_err();
        assert!(matches!(err, DandelionError::FunctionFault { .. }));
    }

    #[test]
    fn http_failures_flow_downstream_as_error_responses() {
        let harness = harness();
        harness
            .registry
            .register_function(FunctionArtifact::new(
                "BadRequests",
                &["Requests"],
                |ctx: &mut FunctionCtx| {
                    let request = HttpRequest::get("http://unknown-host.internal/x").to_bytes();
                    ctx.push_output_bytes("Requests", "r0", request)
                },
            ))
            .unwrap();
        harness
            .registry
            .register_function(FunctionArtifact::new(
                "CheckStatus",
                &["Status"],
                |ctx: &mut FunctionCtx| {
                    let responses = ctx.input_set("Responses").ok_or("missing")?.clone();
                    let response: HttpResponse =
                        dandelion_http::parse_response(&responses.items[0].data)
                            .map_err(|err| format!("{err}"))?;
                    ctx.push_output_bytes(
                        "Status",
                        "code",
                        response.status.0.to_string().into_bytes(),
                    )
                },
            ))
            .unwrap();
        let graph = CompositionBuilder::new("FailureFlow")
            .input("Trigger")
            .output("Status")
            .node("BadRequests", |node| {
                node.bind("t", Distribution::All, "Trigger")
                    .publish("Reqs", "Requests")
            })
            .node("HTTP", |node| {
                node.bind("Request", Distribution::Each, "Reqs")
                    .publish("Resps", "Response")
            })
            .node("CheckStatus", |node| {
                node.bind("Responses", Distribution::All, "Resps")
                    .publish("Status", "Status")
            })
            .build()
            .unwrap();
        harness
            .registry
            .register_composition(graph.clone())
            .unwrap();
        let outcome = harness
            .dispatcher
            .invoke(Arc::new(graph), vec![DataSet::single("Trigger", vec![1])])
            .unwrap();
        assert_eq!(outcome.outputs[0].items[0].as_str(), Some("502"));
    }

    #[test]
    fn unknown_vertices_are_reported() {
        let harness = harness();
        // Build a graph without registering the function it references, and
        // invoke it directly (bypassing registration-time validation).
        let graph = CompositionBuilder::new("Dangling")
            .input("In")
            .output("Out")
            .node("DoesNotExist", |node| {
                node.bind("x", Distribution::All, "In").publish("Out", "o")
            })
            .build()
            .unwrap();
        let err = harness
            .dispatcher
            .invoke(Arc::new(graph), vec![DataSet::single("In", vec![1])])
            .unwrap_err();
        assert!(matches!(err, DandelionError::NotFound { .. }));
    }

    #[test]
    fn submit_returns_a_handle_that_settles() {
        let harness = harness();
        let graph = register_copy_identity(&harness.registry);
        let handle = harness
            .dispatcher
            .submit(graph, vec![DataSet::single("In", b"ping".to_vec())])
            .unwrap();
        assert!(handle.id().as_u64() > 0);
        assert_eq!(handle.composition(), "Identity");
        let outcome = handle.wait(Some(Duration::from_secs(10))).unwrap();
        assert_eq!(outcome.outputs[0].items[0].as_str(), Some("ping"));
        assert_eq!(handle.status(), InvocationStatus::Completed);
        // The result was consumed by wait(); the entry is released.
        assert!(handle.try_result().is_none());
        assert!(harness.dispatcher.poll(handle.id()).is_none());
    }

    #[test]
    fn try_result_is_nonblocking_and_consumes_once() {
        let harness = harness();
        let graph = register_copy_identity(&harness.registry);
        let handle = harness
            .dispatcher
            .submit(graph, vec![DataSet::single("In", b"x".to_vec())])
            .unwrap();
        // Poll until settled without blocking.
        let deadline = Instant::now() + Duration::from_secs(10);
        let outcome = loop {
            if let Some(outcome) = handle.try_result() {
                break outcome;
            }
            assert!(Instant::now() < deadline, "invocation did not settle");
            std::thread::yield_now();
        };
        assert_eq!(outcome.unwrap().outputs[0].items[0].as_str(), Some("x"));
        assert!(handle.try_result().is_none());
    }

    #[test]
    fn poll_reports_status_without_consuming() {
        let harness = harness();
        let graph = register_copy_identity(&harness.registry);
        let handle = harness
            .dispatcher
            .submit(graph, vec![DataSet::single("In", b"peek".to_vec())])
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let snapshot = harness
                .dispatcher
                .poll(handle.id())
                .expect("still retained");
            assert_eq!(snapshot.composition, "Identity");
            if snapshot.status.is_terminal() {
                let outcome = snapshot
                    .outcome
                    .expect("terminal snapshots carry the outcome");
                assert_eq!(outcome.unwrap().outputs[0].items[0].as_str(), Some("peek"));
                break;
            }
            assert!(Instant::now() < deadline, "invocation did not settle");
            std::thread::yield_now();
        }
        // Polling is non-consuming: the snapshot can be taken repeatedly.
        assert!(harness.dispatcher.poll(handle.id()).is_some());
    }

    #[test]
    fn polling_unknown_ids_returns_none() {
        let harness = harness();
        assert!(harness
            .dispatcher
            .poll(InvocationId::from_raw(u64::MAX))
            .is_none());
    }

    #[test]
    fn finished_invocations_expire_beyond_retention() {
        let harness = harness_with_config(WorkerConfig {
            total_cores: 4,
            initial_communication_cores: 1,
            completed_retention: 2,
            ..WorkerConfig::default()
        });
        let graph = register_copy_identity(&harness.registry);
        let handles: Vec<InvocationHandle> = (0..3)
            .map(|index| {
                let handle = harness
                    .dispatcher
                    .submit(
                        Arc::clone(&graph),
                        vec![DataSet::single("In", vec![index as u8])],
                    )
                    .unwrap();
                // Settle each one before the next so eviction order is
                // deterministic.
                let deadline = Instant::now() + Duration::from_secs(10);
                while !handle.status().is_terminal() {
                    assert!(Instant::now() < deadline);
                    std::thread::yield_now();
                }
                handle
            })
            .collect();
        // Retention is 2: the oldest finished invocation has been expired.
        assert!(harness.dispatcher.poll(handles[0].id()).is_none());
        assert!(harness.dispatcher.poll(handles[1].id()).is_some());
        assert!(harness.dispatcher.poll(handles[2].id()).is_some());
    }

    #[test]
    fn many_concurrent_submissions_settle_independently() {
        let harness = harness();
        let graph = register_copy_identity(&harness.registry);
        let handles: Vec<InvocationHandle> = (0..16)
            .map(|index| {
                harness
                    .dispatcher
                    .submit(
                        Arc::clone(&graph),
                        vec![DataSet::single("In", format!("m{index}").into_bytes())],
                    )
                    .unwrap()
            })
            .collect();
        for (index, handle) in handles.iter().enumerate() {
            let outcome = handle.wait(Some(Duration::from_secs(10))).unwrap();
            assert_eq!(
                outcome.outputs[0].items[0].as_str(),
                Some(format!("m{index}").as_str())
            );
        }
    }

    #[test]
    fn queue_back_pressure_is_a_synchronous_submit_error() {
        // Zero-capacity queues: every try_push is rejected, emulating a
        // fully backed-up worker.
        let registry = Arc::new(Registry::new());
        let dispatcher = Dispatcher::new(
            Arc::clone(&registry),
            TaskQueue::new(EngineKind::Compute, 0),
            TaskQueue::new(EngineKind::Communication, 0),
            WorkerConfig {
                total_cores: 4,
                initial_communication_cores: 1,
                ..WorkerConfig::default()
            },
        );
        let graph = register_copy_identity(&registry);
        let err = dispatcher
            .submit(graph, vec![DataSet::single("In", vec![1])])
            .unwrap_err();
        assert!(
            matches!(err, DandelionError::ResourceExhausted(_)),
            "expected back-pressure, got {err:?}"
        );
        assert!(err.is_retryable());
    }

    #[test]
    fn stalled_invocations_are_reaped_instead_of_hanging_waiters() {
        // No engines at all: the submitted task sits on the queue forever,
        // emulating a lost engine reply. The driver's stall reaper must
        // fail the invocation after function_timeout + engine_stall_grace.
        let registry = Arc::new(Registry::new());
        let compute_queue = TaskQueue::new(EngineKind::Compute, 1024);
        let communication_queue = TaskQueue::new(EngineKind::Communication, 1024);
        let dispatcher = Dispatcher::new(
            Arc::clone(&registry),
            compute_queue,
            communication_queue,
            WorkerConfig {
                total_cores: 4,
                initial_communication_cores: 1,
                function_timeout: Duration::from_millis(100),
                engine_stall_grace: Duration::from_millis(100),
                ..WorkerConfig::default()
            },
        );
        let graph = register_copy_identity(&registry);
        let handle = dispatcher
            .submit(graph, vec![DataSet::single("In", vec![1])])
            .unwrap();
        let err = handle.wait(Some(Duration::from_secs(10))).unwrap_err();
        assert!(
            matches!(&err, DandelionError::Dispatch(message) if message.contains("timed out")),
            "expected the stall reaper's dispatch timeout, got {err:?}"
        );
    }

    #[test]
    fn on_settle_fires_with_the_outcome_without_blocking_a_thread() {
        let harness = harness();
        let graph = register_copy_identity(&harness.registry);
        let handle = harness
            .dispatcher
            .submit(graph, vec![DataSet::single("In", b"cb".to_vec())])
            .unwrap();
        let (sender, receiver) = std::sync::mpsc::channel();
        handle.on_settle(move |outcome| sender.send(outcome).unwrap());
        let outcome = receiver
            .recv_timeout(Duration::from_secs(10))
            .expect("callback fires")
            .expect("invocation succeeds");
        assert_eq!(outcome.outputs[0].items[0].as_str(), Some("cb"));
        // The callback got a clone: the retained result is still pollable.
        assert!(harness.dispatcher.poll(handle.id()).is_some());
        // Registering after settlement fires immediately, on this thread.
        let fired = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&fired);
        handle.on_settle(move |outcome| {
            assert!(outcome.is_ok());
            flag.store(true, Ordering::SeqCst);
        });
        assert!(fired.load(Ordering::SeqCst));
    }

    #[test]
    fn on_settle_reports_cancellation_when_the_dispatcher_stops() {
        // No engines: the invocation can never complete, so shutdown must
        // deliver `Cancelled` through the registered callback.
        let registry = Arc::new(Registry::new());
        let dispatcher = Dispatcher::new(
            Arc::clone(&registry),
            TaskQueue::new(EngineKind::Compute, 1024),
            TaskQueue::new(EngineKind::Communication, 1024),
            WorkerConfig {
                total_cores: 4,
                initial_communication_cores: 1,
                ..WorkerConfig::default()
            },
        );
        let graph = register_copy_identity(&registry);
        let handle = dispatcher
            .submit(graph, vec![DataSet::single("In", vec![1])])
            .unwrap();
        let (sender, receiver) = std::sync::mpsc::channel();
        handle.on_settle(move |outcome| sender.send(outcome).unwrap());
        dispatcher.shutdown();
        let outcome = receiver
            .recv_timeout(Duration::from_secs(10))
            .expect("cancellation reaches the callback");
        assert!(matches!(outcome, Err(DandelionError::Cancelled)));
    }

    #[test]
    fn wait_snapshot_leaves_the_result_retained() {
        let harness = harness();
        let graph = register_copy_identity(&harness.registry);
        let handle = harness
            .dispatcher
            .submit(graph, vec![DataSet::single("In", b"keep".to_vec())])
            .unwrap();
        let first = handle.wait_snapshot(Some(Duration::from_secs(10))).unwrap();
        assert_eq!(first.outputs[0].items[0].as_str(), Some("keep"));
        // Non-consuming: a second wait and a poll both still see it.
        let second = handle.wait_snapshot(Some(Duration::from_secs(10))).unwrap();
        assert_eq!(second.outputs[0].items[0].as_str(), Some("keep"));
        assert!(harness.dispatcher.poll(handle.id()).is_some());
    }

    #[test]
    fn shard_count_is_core_derived_and_bounded() {
        let shards = in_flight_shard_count();
        assert!((4..=64).contains(&shards));
        assert!(shards.is_power_of_two());
        let table = InFlightTable::new(8);
        assert_eq!(table.shards.len(), shards);
    }

    #[test]
    fn small_retained_views_are_compacted_at_settle() {
        use dandelion_common::SharedBytes;
        let harness = harness();
        harness
            .registry
            .register_function(FunctionArtifact::new(
                "Slice",
                &["Out"],
                |ctx: &mut FunctionCtx| {
                    let data = ctx.single_input("Data")?.data.clone();
                    // A tiny window of the (large) input buffer.
                    ctx.push_output(
                        "Out",
                        dandelion_common::DataItem::new("head", data.slice(..16)),
                    )
                },
            ))
            .unwrap();
        let graph = CompositionBuilder::new("SliceHead")
            .input("In")
            .output("Out")
            .node("Slice", |node| {
                node.bind("Data", Distribution::All, "In")
                    .publish("Out", "Out")
            })
            .build()
            .unwrap();
        harness
            .registry
            .register_composition(graph.clone())
            .unwrap();
        let payload = SharedBytes::from_vec(vec![0xEE; 4 * 1024 * 1024]);
        let inputs = vec![DataSet::with_items(
            "In",
            vec![dandelion_common::DataItem::new("blob", payload.clone())],
        )];
        let outcome = harness.dispatcher.invoke(Arc::new(graph), inputs).unwrap();
        let item = &outcome.outputs[0].items[0];
        assert_eq!(item.data.as_slice(), &[0xEE; 16]);
        // The retained view no longer pins the 4 MiB producer buffer.
        assert!(!SharedBytes::same_buffer(&item.data, &payload));
        assert!(
            item.data.backing_len() <= 16,
            "compacted view must not pin extra bytes, backing is {}",
            item.data.backing_len()
        );
    }

    #[test]
    fn shutdown_cancels_unsettled_invocations() {
        let harness = harness();
        harness
            .registry
            .register_function(FunctionArtifact::new(
                "Slow",
                &["Out"],
                |ctx: &mut FunctionCtx| {
                    std::thread::sleep(Duration::from_millis(300));
                    ctx.push_output_bytes("Out", "o", vec![1])
                },
            ))
            .unwrap();
        let graph = CompositionBuilder::new("Sleepy")
            .input("In")
            .output("Out")
            .node("Slow", |node| {
                node.bind("x", Distribution::All, "In")
                    .publish("Out", "Out")
            })
            .build()
            .unwrap();
        harness
            .registry
            .register_composition(graph.clone())
            .unwrap();
        let handle = harness
            .dispatcher
            .submit(Arc::new(graph), vec![DataSet::single("In", vec![1])])
            .unwrap();
        harness.dispatcher.shutdown();
        let result = handle.wait(Some(Duration::from_secs(5)));
        // Either the task squeaked through before the driver stopped or the
        // invocation was cancelled; it must not hang or panic.
        if let Err(error) = result {
            assert_eq!(error, DandelionError::Cancelled);
        }
        // New submissions are rejected after shutdown.
        let graph2 = register_copy_identity(&harness.registry);
        assert!(matches!(
            harness
                .dispatcher
                .submit(graph2, vec![DataSet::single("In", vec![2])]),
            Err(DandelionError::Cancelled)
        ));
    }
}
