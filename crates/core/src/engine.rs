//! Compute and communication engine pools.
//!
//! Engines abstract the compute resources that execute functions (paper §5):
//!
//! * A **compute engine** owns one CPU core, pulls one task at a time from
//!   the compute queue and runs the untrusted function to completion inside
//!   an isolation backend — no context switches, no blocking.
//! * A **communication engine** owns one core and executes trusted
//!   communication functions. Within one task it performs the (possibly
//!   many) HTTP requests cooperatively, so the modeled latency of a task is
//!   the maximum of its requests rather than their sum.
//!
//! Both pools can grow and shrink at run time; the control plane moves cores
//! between them by resizing the pools (paper §5, "Control plane").
//!
//! Engines are **supervised**: a panic inside the task body is caught and
//! converted into a structured [`DandelionError::EngineFault`] result, and a
//! panic that escapes the task guard (the reply path, injected chaos) kills
//! only that engine thread — the pool requeues its in-flight tasks once and
//! respawns a replacement within a restart budget, so one poisoned task can
//! never silently shrink the pool or strand an invocation.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dandelion_common::config::EngineKind;
use dandelion_common::{fail_point, failpoint, DandelionError, DataItem, DataSet};
use dandelion_http::validate::{validate_request_shared, ValidationPolicy};
use dandelion_http::Uri;
use dandelion_isolation::{ExecutionTask, IsolationBackend};
use dandelion_services::ServiceRegistry;
use parking_lot::Mutex;

use crate::task::{Task, TaskPayload, TaskQueue, TaskResult};

/// Maximum task results an engine coalesces into one reply message.
///
/// Same-invocation tasks that are already waiting on the queue when a task
/// finishes are executed back-to-back and their results cross the
/// dispatcher channel as one batch (one send, one driver wakeup, one table
/// lookup run) instead of one message each. The cap bounds how long the
/// first result of a batch can be held back.
const ENGINE_COALESCE_MAX: usize = 32;

/// The execution capability shared by every engine of a pool.
#[derive(Clone)]
pub enum EngineExecutor {
    /// Executes compute tasks through an isolation backend.
    Compute {
        /// The sandboxing mechanism.
        backend: Arc<dyn IsolationBackend>,
    },
    /// Executes HTTP communication tasks against the service registry.
    Communication {
        /// The simulated remote services.
        registry: Arc<ServiceRegistry>,
        /// Validation policy applied to untrusted requests.
        policy: Arc<ValidationPolicy>,
    },
}

impl EngineExecutor {
    fn kind(&self) -> EngineKind {
        match self {
            EngineExecutor::Compute { .. } => EngineKind::Compute,
            EngineExecutor::Communication { .. } => EngineKind::Communication,
        }
    }

    /// Executes one task payload, producing the dispatcher-facing result.
    pub fn execute(&self, task: &Task) -> TaskResult {
        let (outcome, high_water, modeled) = match (&task.payload, self) {
            (
                TaskPayload::Compute {
                    artifact,
                    inputs,
                    cold_binary,
                    timeout,
                },
                EngineExecutor::Compute { backend },
            ) => {
                let execution = ExecutionTask::new(Arc::clone(artifact), inputs.clone())
                    .with_cold_binary(*cold_binary)
                    .with_timeout(*timeout);
                match backend.execute(&execution) {
                    Ok(report) => (
                        Ok(report.outputs.clone()),
                        report.context_high_water,
                        report.modeled_total(),
                    ),
                    Err(err) => (Err(err), 0, Duration::ZERO),
                }
            }
            (
                TaskPayload::Http {
                    inputs,
                    response_set,
                },
                EngineExecutor::Communication { registry, policy },
            ) => {
                let (set, latency) = execute_http(inputs, response_set, registry, policy);
                (Ok(vec![set]), 0, latency)
            }
            (TaskPayload::Shutdown, _) => (Err(DandelionError::Cancelled), 0, Duration::ZERO),
            (payload, executor) => (
                Err(DandelionError::Dispatch(format!(
                    "task of kind {:?} routed to {} engine",
                    payload.engine_kind(),
                    executor.kind()
                ))),
                0,
                Duration::ZERO,
            ),
        };
        TaskResult {
            invocation: task.invocation,
            node: task.node,
            instance: task.instance,
            outcome,
            context_high_water: high_water,
            modeled_latency: modeled,
        }
    }
}

/// Executes the HTTP communication function over every item of the task's
/// input sets.
///
/// Each item must be a serialized HTTP request authored by an upstream
/// compute function. Requests that fail validation or routing become error
/// responses rather than failing the whole task, so that compositions can
/// handle failures downstream (paper §4.4).
fn execute_http(
    inputs: &[DataSet],
    response_set: &str,
    registry: &ServiceRegistry,
    policy: &ValidationPolicy,
) -> (DataSet, Duration) {
    let mut responses = DataSet::new(response_set);
    let mut max_latency = Duration::ZERO;
    for set in inputs {
        for item in &set.items {
            // Zero-copy: the request (and its body) are views of the item's
            // buffer, which itself is a view of the producer's region. The
            // response is serialized through the rope path: the head is
            // built once in a pooled buffer and a body-less response is
            // frozen without any copy at all.
            let (response_bytes, latency) = match validate_request_shared(&item.data, policy) {
                Ok(validated) => {
                    let uri = Uri::parse(&validated.request.target)
                        .expect("validated requests carry a parseable URI");
                    let reply = registry.dispatch(&uri, &validated.request);
                    (reply.response.to_shared(), reply.latency)
                }
                Err(err) => {
                    let response = dandelion_http::HttpResponse::error(
                        dandelion_http::StatusCode::BAD_REQUEST,
                        &err.to_string(),
                    );
                    (response.to_shared(), Duration::ZERO)
                }
            };
            max_latency = max_latency.max(latency);
            let mut response_item =
                DataItem::new(format!("response-{}", item.name), response_bytes);
            response_item.key = item.key.clone();
            responses.push(response_item);
        }
    }
    // Green threads overlap the requests of one task, so the modeled latency
    // is the slowest request, not the sum.
    (responses, max_latency)
}

/// How many replacement engines a pool spawns for panic-killed threads
/// before giving up (a crash-looping backend must not respawn forever).
const DEFAULT_RESTART_BUDGET: usize = 32;

/// Executes one task under a panic guard: a panic anywhere in the task
/// body (the isolation backend, the service registry, injected chaos)
/// becomes a structured [`DandelionError::EngineFault`] result instead of
/// killing the engine thread.
fn execute_supervised(executor: &EngineExecutor, task: &Task) -> TaskResult {
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if failpoint::enabled() {
            if let Some(failpoint::Fault::Error) = failpoint::check("engine/execute") {
                return TaskResult {
                    invocation: task.invocation,
                    node: task.node,
                    instance: task.instance,
                    outcome: Err(DandelionError::EngineFault {
                        reason: "failpoint engine/execute injected error".to_string(),
                    }),
                    context_high_water: 0,
                    modeled_latency: Duration::ZERO,
                };
            }
        }
        executor.execute(task)
    }));
    match caught {
        Ok(result) => result,
        Err(panic) => TaskResult {
            invocation: task.invocation,
            node: task.node,
            instance: task.instance,
            outcome: Err(DandelionError::EngineFault {
                reason: panic_message(&panic),
            }),
            context_high_water: 0,
            modeled_latency: Duration::ZERO,
        },
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = panic.downcast_ref::<&str>() {
        format!("engine task panicked: {text}")
    } else if let Some(text) = panic.downcast_ref::<String>() {
        format!("engine task panicked: {text}")
    } else {
        "engine task panicked".to_string()
    }
}

/// State shared between the pool handle and every engine thread — the
/// engine threads themselves need it to requeue and respawn when dying.
struct PoolShared {
    executor: EngineExecutor,
    queue: TaskQueue,
    handles: Mutex<Vec<JoinHandle<()>>>,
    active: AtomicUsize,
    started_total: AtomicUsize,
    /// Engine threads killed by a panic that escaped the task guard.
    deaths: AtomicUsize,
    /// Replacement engines spawned by supervision.
    respawns: AtomicUsize,
    /// Respawns still allowed; exhausting it leaves the pool smaller.
    restarts_left: AtomicUsize,
    /// Task keys already requeued once after an engine death: the second
    /// death of the same task fails it with `EngineFault` instead of
    /// retrying forever. Bounded by the number of deaths, which the
    /// restart budget bounds in turn.
    retried: Mutex<HashSet<(u64, usize, usize)>>,
}

impl PoolShared {
    fn spawn_engine(self: &Arc<PoolShared>) {
        self.active.fetch_add(1, Ordering::SeqCst);
        self.started_total.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("dandelion-{}-engine", self.executor.kind()))
            .spawn(move || {
                let mut guard = EngineGuard {
                    shared,
                    inflight: Vec::new(),
                    carried: None,
                };
                run_engine(&mut guard);
            })
            .expect("spawning an engine thread");
        self.handles.lock().push(handle);
    }
}

/// Per-engine-thread supervision state. On a normal exit the drop only
/// releases the active slot; on a panic it requeues the tasks the engine
/// held (once each), and respawns a replacement within the budget.
struct EngineGuard {
    shared: Arc<PoolShared>,
    /// Tasks popped but whose results have not been delivered yet.
    inflight: Vec<Task>,
    /// A task popped for a different invocation, carried into the next
    /// batch (not started: always safe to requeue).
    carried: Option<Task>,
}

impl Drop for EngineGuard {
    fn drop(&mut self) {
        self.shared.active.fetch_sub(1, Ordering::SeqCst);
        if !std::thread::panicking() {
            return;
        }
        self.shared.deaths.fetch_add(1, Ordering::SeqCst);
        if let Some(task) = self.carried.take() {
            self.shared.queue.push(task);
        }
        for task in self.inflight.drain(..) {
            let key = (task.invocation.as_u64(), task.node, task.instance);
            let first_death = self.shared.retried.lock().insert(key);
            if first_death {
                // Retry exactly once on a fresh engine. If the task already
                // settled (the panic hit after the reply), the dispatcher's
                // per-task completion guard drops the duplicate result.
                self.shared.queue.push(task);
            } else {
                let _ = task.reply.send(vec![TaskResult {
                    invocation: task.invocation,
                    node: task.node,
                    instance: task.instance,
                    outcome: Err(DandelionError::EngineFault {
                        reason: "engine died twice executing this task".to_string(),
                    }),
                    context_high_water: 0,
                    modeled_latency: Duration::ZERO,
                }]);
            }
        }
        let budget_allows = self
            .shared
            .restarts_left
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |left| {
                left.checked_sub(1)
            })
            .is_ok();
        if budget_allows {
            self.shared.respawns.fetch_add(1, Ordering::SeqCst);
            self.shared.spawn_engine();
        }
    }
}

/// The engine thread body: pull, execute under supervision, coalesce,
/// reply. Mirrors the pre-supervision loop; `guard` tracks what must be
/// rescued if a panic unwinds out of here.
fn run_engine(guard: &mut EngineGuard) {
    loop {
        let task = match guard
            .carried
            .take()
            .or_else(|| guard.shared.queue.pop_wait())
        {
            Some(task) => task,
            None => return,
        };
        if matches!(task.payload, TaskPayload::Shutdown) {
            return;
        }
        guard.inflight.push(task.clone());
        let mut batch = vec![execute_supervised(&guard.shared.executor, &task)];
        // Coalesce: execute same-invocation tasks already queued and reply
        // with one batch. A task for a different invocation (or reply
        // channel) flushes the batch and is carried into the next
        // iteration; a shutdown marker flushes it and ends the engine.
        let mut stop_after_flush = false;
        while batch.len() < ENGINE_COALESCE_MAX {
            match guard.shared.queue.try_pop() {
                Some(next) if matches!(next.payload, TaskPayload::Shutdown) => {
                    stop_after_flush = true;
                    break;
                }
                Some(next)
                    if next.invocation == task.invocation
                        && task.reply.same_channel(&next.reply) =>
                {
                    guard.inflight.push(next.clone());
                    batch.push(execute_supervised(&guard.shared.executor, &next));
                }
                Some(next) => {
                    guard.carried = Some(next);
                    break;
                }
                None => break,
            }
        }
        // Chaos hook: a panic here dies *before* delivery, exercising the
        // requeue-once path.
        fail_point!("engine/reply");
        // A dropped receiver means the invocation was abandoned; the
        // engine simply moves on.
        let _ = task.reply.send(batch);
        guard.inflight.clear();
        // Chaos hook: a panic here dies *after* delivery — the respawn
        // keeps the pool size, and nothing is requeued.
        fail_point!("engine/after-reply");
        if stop_after_flush {
            return;
        }
    }
}

/// A resizable pool of engines of one kind.
pub struct EnginePool {
    shared: Arc<PoolShared>,
    /// The engine count the pool is converging to. Tracked separately from
    /// `active` so that a shrink immediately followed by a grow accounts for
    /// shutdown markers that no engine has consumed yet.
    desired: Mutex<usize>,
}

impl EnginePool {
    /// Creates a pool that pulls work from `queue`.
    pub fn new(executor: EngineExecutor, queue: TaskQueue) -> Self {
        Self {
            shared: Arc::new(PoolShared {
                executor,
                queue,
                handles: Mutex::new(Vec::new()),
                active: AtomicUsize::new(0),
                started_total: AtomicUsize::new(0),
                deaths: AtomicUsize::new(0),
                respawns: AtomicUsize::new(0),
                restarts_left: AtomicUsize::new(DEFAULT_RESTART_BUDGET),
                retried: Mutex::new(HashSet::new()),
            }),
            desired: Mutex::new(0),
        }
    }

    /// The engine kind of this pool.
    pub fn kind(&self) -> EngineKind {
        self.shared.executor.kind()
    }

    /// The queue feeding this pool.
    pub fn queue(&self) -> &TaskQueue {
        &self.shared.queue
    }

    /// Number of engines currently running.
    pub fn engine_count(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Total engines ever started (for tests and reporting).
    pub fn engines_started_total(&self) -> usize {
        self.shared.started_total.load(Ordering::SeqCst)
    }

    /// Engine threads killed by a panic that escaped the task guard.
    pub fn engine_deaths(&self) -> usize {
        self.shared.deaths.load(Ordering::SeqCst)
    }

    /// Replacement engines spawned by supervision after a death.
    pub fn engine_respawns(&self) -> usize {
        self.shared.respawns.load(Ordering::SeqCst)
    }

    /// Respawns supervision may still perform.
    pub fn restart_budget_left(&self) -> usize {
        self.shared.restarts_left.load(Ordering::SeqCst)
    }

    /// Replaces the respawn budget (tests tighten it to prove exhaustion).
    pub fn set_restart_budget(&self, budget: usize) {
        self.shared.restarts_left.store(budget, Ordering::SeqCst);
    }

    /// Grows or shrinks the pool to `target` engines.
    ///
    /// Growing spawns new engine threads immediately; shrinking enqueues
    /// shutdown markers which the next engines to reach the queue consume.
    /// Because markers travel through the FIFO queue *behind* already-queued
    /// work, shrinking never drops queued tasks, and because the delta is
    /// computed against the desired count (not the live thread count), a
    /// shrink immediately followed by a grow converges to the grow target
    /// even while markers are still in flight.
    pub fn resize(&self, target: usize) {
        let mut desired = self.desired.lock();
        let current = *desired;
        if target > current {
            for _ in current..target {
                self.shared.spawn_engine();
            }
        } else {
            for _ in target..current {
                let (reply, _unused) = crossbeam::channel::bounded(1);
                self.shared.queue.push(Task {
                    invocation: dandelion_common::InvocationId::from_raw(0),
                    node: 0,
                    instance: 0,
                    payload: TaskPayload::Shutdown,
                    reply,
                });
            }
        }
        *desired = target;
    }

    /// Stops every engine and waits for the threads to exit.
    pub fn shutdown(&self) {
        self.resize(0);
        let handles: Vec<JoinHandle<()>> = self.shared.handles.lock().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for EnginePool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use dandelion_common::config::IsolationKind;
    use dandelion_common::InvocationId;
    use dandelion_http::HttpRequest;
    use dandelion_isolation::{create_backend, FunctionArtifact, FunctionCtx, HardwarePlatform};
    use dandelion_services::object_store::ObjectStore;

    fn compute_pool() -> EnginePool {
        let queue = TaskQueue::new(EngineKind::Compute, 1024);
        let backend = create_backend(IsolationKind::Native, HardwarePlatform::Morello);
        EnginePool::new(EngineExecutor::Compute { backend }, queue)
    }

    fn comm_pool_with_store() -> (EnginePool, Arc<ObjectStore>) {
        let store = Arc::new(ObjectStore::new());
        store.put_object("bucket", "hello.txt", b"stored bytes".to_vec());
        let mut registry = ServiceRegistry::new();
        registry.register("s3.internal", store.clone());
        let queue = TaskQueue::new(EngineKind::Communication, 1024);
        let pool = EnginePool::new(
            EngineExecutor::Communication {
                registry: Arc::new(registry),
                policy: Arc::new(ValidationPolicy::default()),
            },
            queue,
        );
        (pool, store)
    }

    fn echo_artifact() -> Arc<FunctionArtifact> {
        Arc::new(FunctionArtifact::new(
            "echo",
            &["out"],
            |ctx: &mut FunctionCtx| {
                let data = ctx.single_input("in")?.data.as_slice().to_vec();
                ctx.push_output_bytes("out", "echoed", data)
            },
        ))
    }

    #[test]
    fn compute_pool_executes_tasks() {
        let pool = compute_pool();
        pool.resize(2);
        assert_eq!(pool.engine_count(), 2);
        let (reply, results) = unbounded();
        for index in 0..4 {
            pool.queue().push(Task {
                invocation: InvocationId::from_raw(7),
                node: 0,
                instance: index,
                payload: TaskPayload::Compute {
                    artifact: echo_artifact(),
                    inputs: vec![DataSet::single("in", format!("p{index}").into_bytes())],
                    cold_binary: false,
                    timeout: Duration::from_secs(5),
                },
                reply: reply.clone(),
            });
        }
        let mut seen = Vec::new();
        while seen.len() < 4 {
            let batch = results.recv_timeout(Duration::from_secs(5)).unwrap();
            assert!(!batch.is_empty());
            for result in batch {
                let outputs = result.outcome.unwrap();
                seen.push(String::from_utf8(outputs[0].items[0].data.as_slice().to_vec()).unwrap());
            }
        }
        seen.sort();
        assert_eq!(seen, vec!["p0", "p1", "p2", "p3"]);
        pool.shutdown();
        assert_eq!(pool.engine_count(), 0);
    }

    #[test]
    fn same_invocation_results_coalesce_into_one_reply() {
        let pool = compute_pool();
        let (reply, results) = unbounded();
        // Queue every task before any engine exists, so a single engine
        // deterministically finds the rest of the invocation's tasks queued
        // when the first one finishes.
        for instance in 0..6 {
            pool.queue().push(Task {
                invocation: InvocationId::from_raw(42),
                node: 0,
                instance,
                payload: TaskPayload::Compute {
                    artifact: echo_artifact(),
                    inputs: vec![DataSet::single("in", format!("c{instance}").into_bytes())],
                    cold_binary: false,
                    timeout: Duration::from_secs(5),
                },
                reply: reply.clone(),
            });
        }
        pool.resize(1);
        let batch = results.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            batch.len(),
            6,
            "all six queued same-invocation results must arrive as one batch"
        );
        let mut instances: Vec<usize> = batch.iter().map(|result| result.instance).collect();
        instances.sort_unstable();
        assert_eq!(instances, (0..6).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn different_invocations_do_not_coalesce() {
        let pool = compute_pool();
        let (reply, results) = unbounded();
        for (index, invocation) in [7u64, 7, 9, 9].into_iter().enumerate() {
            pool.queue().push(Task {
                invocation: InvocationId::from_raw(invocation),
                node: 0,
                instance: index,
                payload: TaskPayload::Compute {
                    artifact: echo_artifact(),
                    inputs: vec![DataSet::single("in", vec![index as u8])],
                    cold_binary: false,
                    timeout: Duration::from_secs(5),
                },
                reply: reply.clone(),
            });
        }
        pool.resize(1);
        let first = results.recv_timeout(Duration::from_secs(5)).unwrap();
        let second = results.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(first.len(), 2);
        assert!(first.iter().all(|r| r.invocation.as_u64() == 7));
        assert_eq!(second.len(), 2);
        assert!(second.iter().all(|r| r.invocation.as_u64() == 9));
        pool.shutdown();
    }

    #[test]
    fn communication_pool_performs_http_requests() {
        let (pool, _store) = comm_pool_with_store();
        pool.resize(1);
        let (reply, results) = unbounded();
        let good = HttpRequest::get("http://s3.internal/bucket/hello.txt").to_bytes();
        let missing = HttpRequest::get("http://s3.internal/bucket/none").to_bytes();
        let invalid = b"NOT A REQUEST".to_vec();
        pool.queue().push(Task {
            invocation: InvocationId::from_raw(1),
            node: 1,
            instance: 0,
            payload: TaskPayload::Http {
                inputs: vec![DataSet::with_items(
                    "Request",
                    vec![
                        DataItem::new("r0", good),
                        DataItem::new("r1", missing),
                        DataItem::new("r2", invalid),
                    ],
                )],
                response_set: "Response".to_string(),
            },
            reply,
        });
        let batch = results.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(batch.len(), 1);
        let result = &batch[0];
        let outputs = result.outcome.clone().unwrap();
        assert_eq!(outputs[0].name, "Response");
        assert_eq!(outputs[0].len(), 3);
        let parse = |item: &DataItem| dandelion_http::parse_response(&item.data).unwrap();
        assert_eq!(parse(&outputs[0].items[0]).status.0, 200);
        assert_eq!(parse(&outputs[0].items[0]).body, b"stored bytes");
        assert_eq!(parse(&outputs[0].items[1]).status.0, 404);
        assert_eq!(parse(&outputs[0].items[2]).status.0, 400);
        assert!(result.modeled_latency > Duration::ZERO);
        pool.shutdown();
    }

    #[test]
    fn misrouted_tasks_report_dispatch_errors() {
        let (pool, _store) = comm_pool_with_store();
        pool.resize(1);
        let (reply, results) = unbounded();
        pool.queue().push(Task {
            invocation: InvocationId::from_raw(2),
            node: 0,
            instance: 0,
            payload: TaskPayload::Compute {
                artifact: echo_artifact(),
                inputs: vec![],
                cold_binary: false,
                timeout: Duration::from_secs(1),
            },
            reply,
        });
        let batch = results.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(batch[0].outcome, Err(DandelionError::Dispatch(_))));
        pool.shutdown();
    }

    #[test]
    fn shrink_delivers_shutdown_markers_without_polling() {
        let pool = compute_pool();
        pool.resize(3);
        assert_eq!(pool.engine_count(), 3);
        // Shrinking enqueues exactly the marker delta: the pool settles on
        // the target without any engine busy-waiting (engines park on the
        // queue's condition variable until a marker or task arrives).
        pool.resize(1);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.engine_count() > 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.engine_count(), 1);
        // No marker is left over: a task pushed now is executed, not eaten
        // by a stale shutdown marker.
        let (reply, results) = unbounded();
        pool.queue().push(Task {
            invocation: InvocationId::from_raw(9),
            node: 0,
            instance: 0,
            payload: TaskPayload::Compute {
                artifact: echo_artifact(),
                inputs: vec![DataSet::single("in", b"alive".to_vec())],
                cold_binary: false,
                timeout: Duration::from_secs(5),
            },
            reply,
        });
        let batch = results.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(batch[0].outcome.is_ok());
        pool.shutdown();
    }

    #[test]
    fn shrink_then_grow_never_loses_queued_tasks() {
        let pool = compute_pool();
        pool.resize(2);
        let (reply, results) = unbounded();
        let total = 50usize;
        for index in 0..total {
            pool.queue().push(Task {
                invocation: InvocationId::from_raw(11),
                node: 0,
                instance: index,
                payload: TaskPayload::Compute {
                    artifact: echo_artifact(),
                    inputs: vec![DataSet::single("in", format!("t{index}").into_bytes())],
                    cold_binary: false,
                    timeout: Duration::from_secs(5),
                },
                reply: reply.clone(),
            });
        }
        // Shrink while the queue is full, then immediately grow again. The
        // grow is computed against the desired count, so the pool converges
        // back to 3 engines even though the shutdown markers from the
        // shrink are still queued behind the tasks.
        pool.resize(1);
        pool.resize(3);
        let mut instances: Vec<usize> = Vec::new();
        while instances.len() < total {
            let batch = results
                .recv_timeout(Duration::from_secs(10))
                .expect("every queued task completes");
            instances.extend(batch.into_iter().map(|result| result.instance));
        }
        instances.sort_unstable();
        assert_eq!(instances, (0..total).collect::<Vec<_>>());
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.engine_count() != 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.engine_count(), 3);
        pool.shutdown();
        assert_eq!(pool.engine_count(), 0);
    }

    #[test]
    fn resize_shrinks_and_grows() {
        let pool = compute_pool();
        pool.resize(3);
        assert_eq!(pool.engine_count(), 3);
        pool.resize(1);
        // Shrinking happens as idle engines pick up the shutdown markers.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.engine_count() > 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(pool.engine_count(), 1);
        assert_eq!(pool.engines_started_total(), 3);
        pool.resize(2);
        assert_eq!(pool.engine_count(), 2);
        pool.shutdown();
    }
}
