//! The HTTP frontend.
//!
//! "The frontend manages client communication, handling requests for
//! composition/function registration and invocation. It forwards these
//! requests to the dispatcher and serializes and returns the final result to
//! the client." (paper §5)
//!
//! The frontend is transport-agnostic: it maps [`HttpRequest`]s to worker
//! operations and produces [`HttpResponse`]s. Examples and tests drive it
//! directly; a deployment would put a socket listener in front of it.
//!
//! Endpoints:
//!
//! * `POST /v1/compositions` — register a composition; the body is DSL text.
//! * `GET /v1/compositions` — list registered compositions.
//! * `POST /v1/invoke/{name}` — invoke a composition. With
//!   `Content-Type: application/x-dandelion-sets` the body is the binary
//!   set-list descriptor (the same format functions use for their outputs);
//!   otherwise the raw body becomes the single item of the composition's
//!   first external input.
//! * `GET /v1/stats` — worker statistics in a plain-text format.
//! * `GET /healthz` — liveness probe.

use std::sync::Arc;

use dandelion_common::{DataSet, DandelionError};
use dandelion_http::{HttpRequest, HttpResponse, Method, StatusCode};
use dandelion_isolation::output_parser;

use crate::worker::WorkerNode;

/// Content type for binary-encoded set lists.
pub const SET_LIST_CONTENT_TYPE: &str = "application/x-dandelion-sets";

/// The HTTP frontend of a worker node.
pub struct Frontend {
    worker: Arc<WorkerNode>,
}

impl Frontend {
    /// Creates a frontend serving the given worker.
    pub fn new(worker: Arc<WorkerNode>) -> Self {
        Self { worker }
    }

    /// Handles one client request.
    pub fn handle(&self, request: &HttpRequest) -> HttpResponse {
        let path = request
            .target
            .split_once("://")
            .map(|(_, rest)| rest.split_once('/').map(|(_, p)| format!("/{p}")))
            .unwrap_or(None)
            .unwrap_or_else(|| request.target.clone());
        let path = path.split('?').next().unwrap_or(&path).to_string();

        match (request.method, path.as_str()) {
            (Method::Get, "/healthz") => HttpResponse::ok(b"ok".to_vec()),
            (Method::Get, "/v1/compositions") => {
                let names = self.worker.registry().composition_names().join("\n");
                HttpResponse::ok(names.into_bytes())
            }
            (Method::Post, "/v1/compositions") => self.register_composition(request),
            (Method::Get, "/v1/stats") => self.stats(),
            (Method::Post, path) if path.starts_with("/v1/invoke/") => {
                let name = path.trim_start_matches("/v1/invoke/").to_string();
                self.invoke(&name, request)
            }
            _ => HttpResponse::error(StatusCode::NOT_FOUND, "unknown endpoint"),
        }
    }

    fn register_composition(&self, request: &HttpRequest) -> HttpResponse {
        let source = String::from_utf8_lossy(&request.body);
        match self.worker.register_composition_dsl(&source) {
            Ok(name) => HttpResponse::new(StatusCode::CREATED, name.into_bytes()),
            Err(err) => error_response(&err),
        }
    }

    fn stats(&self) -> HttpResponse {
        let stats = self.worker.stats();
        let body = format!(
            "invocations: {}\nfailures: {}\ncompute_tasks: {}\ncommunication_tasks: {}\n\
             compute_cores: {}\ncommunication_cores: {}\ncompute_queue: {}\ncommunication_queue: {}\n\
             p50_ms: {:.3}\np99_ms: {:.3}\n",
            stats.invocations,
            stats.failures,
            stats.compute_tasks,
            stats.communication_tasks,
            stats.compute_cores,
            stats.communication_cores,
            stats.compute_queue_depth,
            stats.communication_queue_depth,
            stats.latency.p50_ms(),
            stats.latency.p99_ms(),
        );
        HttpResponse::ok(body.into_bytes())
    }

    fn invoke(&self, name: &str, request: &HttpRequest) -> HttpResponse {
        let inputs = match self.decode_inputs(name, request) {
            Ok(inputs) => inputs,
            Err(response) => return response,
        };
        match self.worker.invoke(name, inputs) {
            Ok(outcome) => encode_outputs_response(&outcome.outputs),
            Err(err) => error_response(&err),
        }
    }

    fn decode_inputs(
        &self,
        composition: &str,
        request: &HttpRequest,
    ) -> Result<Vec<DataSet>, HttpResponse> {
        let content_type = request.headers.get("content-type").unwrap_or("");
        if content_type == SET_LIST_CONTENT_TYPE {
            return output_parser::parse_outputs(&request.body)
                .map_err(|err| error_response(&err));
        }
        // Raw body → single item of the composition's first external input.
        let graph = self
            .worker
            .registry()
            .composition(composition)
            .map_err(|err| error_response(&err))?;
        let Some(first_input) = graph.external_inputs.first() else {
            return Ok(Vec::new());
        };
        Ok(vec![DataSet::single(
            first_input.clone(),
            request.body.clone(),
        )])
    }
}

fn error_response(err: &DandelionError) -> HttpResponse {
    HttpResponse::error(StatusCode(err.status_code()), &err.to_string())
}

/// Encodes a set list as the invoke response: a single item of a single set
/// is returned raw; anything else uses the binary set-list descriptor.
fn encode_outputs_response(outputs: &[DataSet]) -> HttpResponse {
    if outputs.len() == 1 && outputs[0].len() == 1 {
        return HttpResponse::ok(outputs[0].items[0].data.as_slice().to_vec())
            .with_header("Content-Type", "application/octet-stream");
    }
    HttpResponse::ok(output_parser::encode_outputs(outputs))
        .with_header("Content-Type", SET_LIST_CONTENT_TYPE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::{default_test_services, WorkerNode};
    use dandelion_common::config::{IsolationKind, WorkerConfig};
    use dandelion_common::DataItem;
    use dandelion_isolation::{FunctionArtifact, FunctionCtx};

    fn frontend() -> Frontend {
        let config = WorkerConfig {
            total_cores: 4,
            initial_communication_cores: 1,
            isolation: IsolationKind::Native,
            ..WorkerConfig::default()
        };
        let worker =
            WorkerNode::start_with_control(config, default_test_services(), false).unwrap();
        worker
            .register_function(FunctionArtifact::new(
                "Upper",
                &["Out"],
                |ctx: &mut FunctionCtx| {
                    let text = ctx.single_input("Text")?.as_str().unwrap_or("").to_uppercase();
                    ctx.push_output_bytes("Out", "upper", text.into_bytes())
                },
            ))
            .unwrap();
        Frontend::new(worker)
    }

    const UPPER_DSL: &str =
        "composition Shout(Input) => Output { Upper(Text = all Input) => (Output = Out); }";

    #[test]
    fn health_and_listing() {
        let frontend = frontend();
        let health = frontend.handle(&HttpRequest::get("http://worker/healthz"));
        assert_eq!(health.status, StatusCode::OK);
        let empty = frontend.handle(&HttpRequest::get("http://worker/v1/compositions"));
        assert_eq!(empty.body_text(), "");
    }

    #[test]
    fn register_then_invoke_with_raw_body() {
        let frontend = frontend();
        let register = frontend.handle(&HttpRequest::post(
            "http://worker/v1/compositions",
            UPPER_DSL.as_bytes().to_vec(),
        ));
        assert_eq!(register.status, StatusCode::CREATED);
        assert_eq!(register.body_text(), "Shout");

        let listing = frontend.handle(&HttpRequest::get("http://worker/v1/compositions"));
        assert_eq!(listing.body_text(), "Shout");

        let invoke = frontend.handle(&HttpRequest::post(
            "http://worker/v1/invoke/Shout",
            b"hello dandelion".to_vec(),
        ));
        assert_eq!(invoke.status, StatusCode::OK);
        assert_eq!(invoke.body_text(), "HELLO DANDELION");

        let stats = frontend.handle(&HttpRequest::get("http://worker/v1/stats"));
        assert!(stats.body_text().contains("invocations: 1"));
    }

    #[test]
    fn invoke_with_set_list_body() {
        let frontend = frontend();
        frontend.handle(&HttpRequest::post(
            "http://worker/v1/compositions",
            UPPER_DSL.as_bytes().to_vec(),
        ));
        let sets = vec![DataSet::with_items(
            "Input",
            vec![DataItem::new("text", b"mixed Case".to_vec())],
        )];
        let body = output_parser::encode_outputs(&sets);
        let request = HttpRequest::post("http://worker/v1/invoke/Shout", body)
            .with_header("Content-Type", SET_LIST_CONTENT_TYPE);
        let response = frontend.handle(&request);
        assert_eq!(response.status, StatusCode::OK);
        assert_eq!(response.body_text(), "MIXED CASE");
    }

    #[test]
    fn errors_map_to_http_statuses() {
        let frontend = frontend();
        // Invoking an unregistered composition is a 404.
        let missing = frontend.handle(&HttpRequest::post(
            "http://worker/v1/invoke/Nope",
            b"x".to_vec(),
        ));
        assert_eq!(missing.status, StatusCode::NOT_FOUND);
        // Registering invalid DSL is a 400.
        let invalid = frontend.handle(&HttpRequest::post(
            "http://worker/v1/compositions",
            b"composition Broken {".to_vec(),
        ));
        assert_eq!(invalid.status, StatusCode::BAD_REQUEST);
        // Unknown endpoints are 404s.
        let unknown = frontend.handle(&HttpRequest::get("http://worker/v2/other"));
        assert_eq!(unknown.status, StatusCode::NOT_FOUND);
        // Malformed set-list bodies are rejected.
        frontend.handle(&HttpRequest::post(
            "http://worker/v1/compositions",
            UPPER_DSL.as_bytes().to_vec(),
        ));
        let bad_sets = HttpRequest::post("http://worker/v1/invoke/Shout", b"garbage".to_vec())
            .with_header("Content-Type", SET_LIST_CONTENT_TYPE);
        assert_eq!(frontend.handle(&bad_sets).status, StatusCode::BAD_REQUEST);
    }
}
