//! The HTTP frontend.
//!
//! "The frontend manages client communication, handling requests for
//! composition/function registration and invocation. It forwards these
//! requests to the dispatcher and serializes and returns the final result to
//! the client." (paper §5)
//!
//! The frontend is transport-agnostic: it maps [`HttpRequest`]s to worker
//! operations and produces [`HttpResponse`]s. Examples and tests drive it
//! directly; a deployment would put a socket listener in front of it.
//! Request targets are parsed with [`dandelion_http::Uri`] (absolute-form
//! and origin-form both work); query strings are rejected on every endpoint.
//!
//! # v1 JSON API
//!
//! | Method & path | Purpose | Success |
//! |---|---|---|
//! | `GET /healthz` | Liveness probe | `200`, plain `ok` |
//! | `GET /v1/compositions` | List registered compositions | `200`, `{"compositions": [..]}` |
//! | `POST /v1/compositions` | Register a composition (body: DSL text) | `201`, `{"name": ".."}` |
//! | `POST /v1/invocations/{name}` | Submit an invocation (non-blocking) | `202`, `{"invocation_id": "inv-N", "status": "..", "href": ".."}` |
//! | `GET /v1/invocations/{id}` | Poll status/result of an invocation | `200`, status document (see below) |
//! | `POST /v1/invoke/{name}` | Synchronous invocation (compatibility) | `200`, raw output bytes |
//! | `GET /v1/stats` | Worker statistics | `200`, JSON object |
//!
//! Invocation inputs (for both invocation endpoints): with
//! `Content-Type: application/x-dandelion-sets` the body is the binary
//! set-list descriptor (the same format functions use for their outputs);
//! otherwise the raw body becomes the single item of the composition's first
//! external input.
//!
//! The status document carries `invocation_id`, `composition` and `status`
//! (`queued` | `running` | `completed` | `failed`); once completed it adds
//! `outputs` (sets of base64-encoded items) and a `report`, and once failed
//! it adds the error object. Results are retained for polling up to the
//! worker's `completed_retention`; polling an unknown or expired id yields
//! `404` with code `not_found`.
//!
//! Every error is a structured JSON body with a stable machine-readable
//! code derived from [`DandelionError::code`]:
//! `{"error": {"code": "..", "message": "..", "retryable": bool}}`.

use std::sync::Arc;

use dandelion_common::{DandelionError, DandelionResult, DataSet, InvocationId, JsonValue};
use dandelion_http::{HttpRequest, HttpResponse, Method, StatusCode, Uri};
use dandelion_isolation::output_parser;
use parking_lot::RwLock;

use crate::dispatcher::{InvocationHandle, InvocationOutcome, InvocationSnapshot};
use crate::worker::WorkerNode;

/// Content type for binary-encoded set lists.
pub const SET_LIST_CONTENT_TYPE: &str = "application/x-dandelion-sets";

/// Content type for JSON documents.
pub const JSON_CONTENT_TYPE: &str = "application/json";

/// The typed routes of the frontend, as resolved by [`Route::resolve`].
#[derive(Debug, Clone, PartialEq, Eq)]
enum Route {
    Health,
    ListCompositions,
    RegisterComposition,
    Stats,
    Drain,
    InvokeSync(String),
    SubmitInvocation(String),
    PollInvocation(String),
}

impl Route {
    /// Resolves a method and an already-parsed URI path to a route.
    fn resolve(method: Method, path: &str) -> Result<Route, HttpResponse> {
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        let route = match (method, segments.as_slice()) {
            (Method::Get, ["healthz"]) => Route::Health,
            (Method::Get, ["v1", "compositions"]) => Route::ListCompositions,
            (Method::Post, ["v1", "compositions"]) => Route::RegisterComposition,
            (Method::Get, ["v1", "stats"]) => Route::Stats,
            (Method::Post, ["v1", "drain"]) => Route::Drain,
            (Method::Post, ["v1", "invoke", name]) if !name.is_empty() => {
                Route::InvokeSync((*name).to_string())
            }
            (Method::Post, ["v1", "invocations", name]) if !name.is_empty() => {
                Route::SubmitInvocation((*name).to_string())
            }
            (Method::Get, ["v1", "invocations", id]) if !id.is_empty() => {
                Route::PollInvocation((*id).to_string())
            }
            _ => {
                return Err(error_response(&DandelionError::NotFound {
                    kind: "endpoint",
                    name: path.to_string(),
                }))
            }
        };
        Ok(route)
    }
}

/// A named provider of extra key/value pairs merged into the `/v1/stats`
/// document (e.g. the network server contributing connection gauges).
pub type StatsSource = Arc<dyn Fn() -> JsonValue + Send + Sync>;

/// The outcome of [`Frontend::begin`]: either the response is already in
/// hand, or a synchronous invocation is executing and the caller decides how
/// to wait for it.
pub enum FrontendReply {
    /// The response is complete; deliver it.
    Ready(HttpResponse),
    /// A `POST /v1/invoke/{name}` is running on the worker. Block on the
    /// handle (what [`Frontend::handle`] does) or register an
    /// [`InvocationHandle::on_settle`] callback and encode the outcome with
    /// [`sync_invoke_response`] — the readiness-driven server's path, which
    /// parks the connection instead of a thread.
    Pending(InvocationHandle),
}

/// The HTTP frontend of a worker node.
pub struct Frontend {
    worker: Arc<WorkerNode>,
    /// Extra named objects merged into the `/v1/stats` document.
    stats_sources: RwLock<Vec<(String, StatsSource)>>,
}

impl Frontend {
    /// Creates a frontend serving the given worker.
    pub fn new(worker: Arc<WorkerNode>) -> Self {
        Self {
            worker,
            stats_sources: RwLock::new(Vec::new()),
        }
    }

    /// The worker behind this frontend.
    pub fn worker(&self) -> &Arc<WorkerNode> {
        &self.worker
    }

    /// Registers (or replaces) a named stats source whose JSON value is
    /// merged into the `/v1/stats` document under `name`. The serving layer
    /// uses this to surface connection gauges next to the worker counters.
    pub fn add_stats_source(&self, name: &str, source: StatsSource) {
        let mut sources = self.stats_sources.write();
        if let Some(slot) = sources.iter_mut().find(|(existing, _)| existing == name) {
            slot.1 = source;
        } else {
            sources.push((name.to_string(), source));
        }
    }

    /// Removes a stats source registered under `name` (a stopped server
    /// must not keep reporting frozen gauges through a frontend that may
    /// be served elsewhere).
    pub fn remove_stats_source(&self, name: &str) {
        self.stats_sources
            .write()
            .retain(|(existing, _)| existing != name);
    }

    /// Handles one client request, blocking until the response is complete
    /// (synchronous invocations wait for the worker).
    pub fn handle(&self, request: &HttpRequest) -> HttpResponse {
        match self.begin(request) {
            FrontendReply::Ready(response) => response,
            FrontendReply::Pending(handle) => sync_invoke_response(handle.wait(None)),
        }
    }

    /// Handles one client request without ever blocking on the worker.
    ///
    /// Every endpoint except the synchronous `POST /v1/invoke/{name}`
    /// completes immediately; the sync invoke is submitted and returned as
    /// [`FrontendReply::Pending`] for the caller to await however it wants.
    pub fn begin(&self, request: &HttpRequest) -> FrontendReply {
        let Some(uri) = Uri::parse(&request.target) else {
            return FrontendReply::Ready(error_response(&DandelionError::InvalidRequest(format!(
                "unparseable request target `{}`",
                request.target
            ))));
        };
        if let Some(query) = &uri.query {
            return FrontendReply::Ready(error_response(&DandelionError::InvalidRequest(format!(
                "query strings are not accepted (got `?{query}`)"
            ))));
        }
        let route = match Route::resolve(request.method, &uri.path) {
            Ok(route) => route,
            Err(response) => return FrontendReply::Ready(response),
        };
        FrontendReply::Ready(match route {
            Route::Health => HttpResponse::ok(b"ok".to_vec()),
            Route::ListCompositions => {
                let names = self.worker.registry().composition_names();
                json_response(
                    StatusCode::OK,
                    &JsonValue::object([(
                        "compositions",
                        JsonValue::array(names.into_iter().map(JsonValue::string)),
                    )]),
                )
            }
            Route::RegisterComposition => self.register_composition(request),
            Route::Stats => self.stats(),
            Route::Drain => self.drain(),
            Route::InvokeSync(name) => return self.invoke_sync(&name, request),
            Route::SubmitInvocation(name) => self.submit_invocation(&name, request),
            Route::PollInvocation(id) => self.poll_invocation(&id),
        })
    }

    fn register_composition(&self, request: &HttpRequest) -> HttpResponse {
        let source = String::from_utf8_lossy(&request.body);
        match self.worker.register_composition_dsl(&source) {
            Ok(name) => json_response(
                StatusCode::CREATED,
                &JsonValue::object([("name", JsonValue::string(name))]),
            ),
            Err(err) => error_response(&err),
        }
    }

    /// `POST /v1/drain`: raise the node's drain signal. New invocations are
    /// refused with a retryable `503` while in-flight work completes; the
    /// cluster gateway sends this before taking a member out of rotation.
    fn drain(&self) -> HttpResponse {
        self.worker.begin_drain();
        json_response(
            StatusCode::ACCEPTED,
            &JsonValue::object([
                ("status", JsonValue::string("draining")),
                ("inflight", JsonValue::from(self.worker.inflight())),
            ]),
        )
    }

    fn stats(&self) -> HttpResponse {
        let stats = self.worker.stats();
        let mut pairs: Vec<(String, JsonValue)> = vec![
            ("inflight".into(), JsonValue::from(self.worker.inflight())),
            (
                "draining".into(),
                JsonValue::from(self.worker.is_draining()),
            ),
            ("invocations".into(), JsonValue::from(stats.invocations)),
            ("failures".into(), JsonValue::from(stats.failures)),
            ("compute_tasks".into(), JsonValue::from(stats.compute_tasks)),
            (
                "communication_tasks".into(),
                JsonValue::from(stats.communication_tasks),
            ),
            ("compute_cores".into(), JsonValue::from(stats.compute_cores)),
            (
                "communication_cores".into(),
                JsonValue::from(stats.communication_cores),
            ),
            (
                "compute_queue_depth".into(),
                JsonValue::from(stats.compute_queue_depth),
            ),
            (
                "communication_queue_depth".into(),
                JsonValue::from(stats.communication_queue_depth),
            ),
            ("p50_ms".into(), JsonValue::from(stats.latency.p50_ms())),
            ("p99_ms".into(), JsonValue::from(stats.latency.p99_ms())),
        ];
        // Registered sources (e.g. the network server's connection gauges)
        // ride along in the same document under their registered name.
        for (name, source) in self.stats_sources.read().iter() {
            pairs.push((name.clone(), source()));
        }
        // Only present when fault injection is configured: per-failpoint
        // hit counters so a chaos run can reconcile what actually fired.
        if let Some(failpoints) = dandelion_common::failpoint::stats_json() {
            pairs.push(("failpoints".into(), failpoints));
        }
        json_response(StatusCode::OK, &JsonValue::Object(pairs))
    }

    /// `POST /v1/invocations/{name}`: submit and return `202 Accepted` with
    /// the invocation id; the client polls `GET /v1/invocations/{id}`.
    fn submit_invocation(&self, name: &str, request: &HttpRequest) -> HttpResponse {
        let inputs = match self.decode_inputs(name, request) {
            Ok(inputs) => inputs,
            Err(response) => return response,
        };
        match self.worker.submit(name, inputs) {
            Ok(handle) => json_response(
                StatusCode::ACCEPTED,
                &JsonValue::object([
                    ("invocation_id", JsonValue::string(handle.id().to_string())),
                    ("status", JsonValue::string(handle.status().as_str())),
                    (
                        "href",
                        JsonValue::string(format!("/v1/invocations/{}", handle.id())),
                    ),
                ]),
            ),
            Err(err) => error_response(&err),
        }
    }

    /// `GET /v1/invocations/{id}`: non-consuming status/result polling.
    fn poll_invocation(&self, id_text: &str) -> HttpResponse {
        let Some(id) = InvocationId::parse(id_text) else {
            return error_response(&DandelionError::InvalidRequest(format!(
                "malformed invocation id `{id_text}`"
            )));
        };
        match self.worker.poll(id) {
            Some(snapshot) => json_response(StatusCode::OK, &snapshot_json(&snapshot)),
            None => error_response(&DandelionError::NotFound {
                kind: "invocation",
                name: id.to_string(),
            }),
        }
    }

    /// `POST /v1/invoke/{name}`: the synchronous compatibility path. The
    /// invocation is *submitted* here; how to wait is the caller's choice
    /// (see [`FrontendReply::Pending`]), so an event-loop server never parks
    /// a thread on it.
    fn invoke_sync(&self, name: &str, request: &HttpRequest) -> FrontendReply {
        let inputs = match self.decode_inputs(name, request) {
            Ok(inputs) => inputs,
            Err(response) => return FrontendReply::Ready(response),
        };
        match self.worker.submit(name, inputs) {
            Ok(handle) => FrontendReply::Pending(handle),
            Err(err) => FrontendReply::Ready(error_response(&err)),
        }
    }

    fn decode_inputs(
        &self,
        composition: &str,
        request: &HttpRequest,
    ) -> Result<Vec<DataSet>, HttpResponse> {
        let content_type = request.headers.get("content-type").unwrap_or("");
        if content_type == SET_LIST_CONTENT_TYPE {
            // Zero-copy: input items are views of the request's receive
            // buffer, not copies of each payload.
            return output_parser::parse_outputs_shared(&request.body)
                .map_err(|err| error_response(&err));
        }
        // Raw body → single item of the composition's first external input;
        // the item shares the receive buffer.
        let graph = self
            .worker
            .registry()
            .composition(composition)
            .map_err(|err| error_response(&err))?;
        let Some(first_input) = graph.external_inputs.first() else {
            return Ok(Vec::new());
        };
        Ok(vec![DataSet::single(
            first_input.clone(),
            request.body.clone(),
        )])
    }
}

fn json_response(status: StatusCode, value: &JsonValue) -> HttpResponse {
    // Exact-capacity serialization: the document size is computed first, so
    // even status documents carrying base64 payloads are written into one
    // right-sized buffer instead of growing a `String` incrementally.
    HttpResponse::new(status, value.to_json_string().into_bytes())
        .with_header("Content-Type", JSON_CONTENT_TYPE)
}

/// Structured JSON error body with a stable machine-readable code.
fn error_response(err: &DandelionError) -> HttpResponse {
    json_response(
        StatusCode(err.status_code()),
        &JsonValue::object([("error", error_json(err))]),
    )
}

/// The wire-format error object shared by error responses and failed
/// invocations' status documents.
fn error_json(err: &DandelionError) -> JsonValue {
    JsonValue::object([
        ("code", JsonValue::string(err.code())),
        ("message", JsonValue::string(err.to_string())),
        ("retryable", JsonValue::from(err.is_retryable())),
    ])
}

/// Renders outputs as JSON sets with base64-encoded item payloads.
///
/// Item payloads are held as zero-copy [`JsonValue::Bytes`] views until the
/// document is serialized, at which point base64 streams straight from each
/// item's slice into the response body — no intermediate `String` or `Vec`
/// per item.
pub(crate) fn outputs_json(outputs: &[DataSet]) -> JsonValue {
    JsonValue::array(outputs.iter().map(|set| {
        JsonValue::object([
            ("set", JsonValue::string(set.name.clone())),
            (
                "items",
                JsonValue::array(set.items.iter().map(|item| {
                    let mut pairs = vec![
                        ("name".to_string(), JsonValue::string(item.name.clone())),
                        (
                            "data_base64".to_string(),
                            JsonValue::bytes(item.data.clone()),
                        ),
                    ];
                    if let Some(key) = &item.key {
                        pairs.push(("key".to_string(), JsonValue::string(key.clone())));
                    }
                    JsonValue::Object(pairs)
                })),
            ),
        ])
    }))
}

fn report_json(outcome: &InvocationOutcome) -> JsonValue {
    JsonValue::object([
        (
            "compute_tasks",
            JsonValue::from(outcome.report.compute_tasks),
        ),
        (
            "communication_tasks",
            JsonValue::from(outcome.report.communication_tasks),
        ),
        (
            "peak_context_bytes",
            JsonValue::from(outcome.report.peak_context_bytes),
        ),
        (
            "modeled_busy_us",
            JsonValue::from(outcome.report.modeled_busy_time.as_micros() as u64),
        ),
    ])
}

/// Renders an invocation snapshot as the v1 status document.
fn snapshot_json(snapshot: &InvocationSnapshot) -> JsonValue {
    let mut pairs = vec![
        (
            "invocation_id".to_string(),
            JsonValue::string(snapshot.id.to_string()),
        ),
        (
            "composition".to_string(),
            JsonValue::string(snapshot.composition.clone()),
        ),
        (
            "status".to_string(),
            JsonValue::string(snapshot.status.as_str()),
        ),
    ];
    match &snapshot.outcome {
        Some(Ok(outcome)) => {
            pairs.push(("outputs".to_string(), outputs_json(&outcome.outputs)));
            pairs.push(("report".to_string(), report_json(outcome)));
        }
        Some(Err(err)) => {
            pairs.push(("error".to_string(), error_json(err)));
        }
        None => {}
    }
    JsonValue::Object(pairs)
}

/// Encodes a settled synchronous invocation as its HTTP response — the
/// shared tail of the blocking [`Frontend::handle`] path and the event-loop
/// completion callback.
pub fn sync_invoke_response(outcome: DandelionResult<InvocationOutcome>) -> HttpResponse {
    match outcome {
        Ok(outcome) => encode_outputs_response(&outcome.outputs),
        Err(err) => error_response(&err),
    }
}

/// Encodes a set list as the synchronous invoke response: a single item of a
/// single set is returned raw; anything else uses the binary set-list
/// descriptor.
fn encode_outputs_response(outputs: &[DataSet]) -> HttpResponse {
    if outputs.len() == 1 && outputs[0].len() == 1 {
        // Zero-copy: the response body is a view of the output item.
        return HttpResponse::ok(outputs[0].items[0].data.clone())
            .with_header("Content-Type", "application/octet-stream");
    }
    HttpResponse::ok(output_parser::encode_outputs(outputs))
        .with_header("Content-Type", SET_LIST_CONTENT_TYPE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::{default_test_services, WorkerNode};
    use dandelion_common::config::{IsolationKind, WorkerConfig};
    use dandelion_common::encoding::base64_decode;
    use dandelion_common::DataItem;
    use dandelion_isolation::{FunctionArtifact, FunctionCtx};
    use std::time::{Duration, Instant};

    fn frontend() -> Frontend {
        let config = WorkerConfig {
            total_cores: 4,
            initial_communication_cores: 1,
            isolation: IsolationKind::Native,
            ..WorkerConfig::default()
        };
        let worker =
            WorkerNode::start_with_control(config, default_test_services(), false).unwrap();
        worker
            .register_function(FunctionArtifact::new(
                "Upper",
                &["Out"],
                |ctx: &mut FunctionCtx| {
                    let text = ctx
                        .single_input("Text")?
                        .as_str()
                        .unwrap_or("")
                        .to_uppercase();
                    ctx.push_output_bytes("Out", "upper", text.into_bytes())
                },
            ))
            .unwrap();
        Frontend::new(worker)
    }

    const UPPER_DSL: &str =
        "composition Shout(Input) => Output { Upper(Text = all Input) => (Output = Out); }";

    fn body_json(response: &HttpResponse) -> JsonValue {
        JsonValue::parse(&response.body_text()).expect("response body is JSON")
    }

    #[test]
    fn health_and_listing() {
        let frontend = frontend();
        let health = frontend.handle(&HttpRequest::get("http://worker/healthz"));
        assert_eq!(health.status, StatusCode::OK);
        assert_eq!(health.body_text(), "ok");
        let empty = frontend.handle(&HttpRequest::get("http://worker/v1/compositions"));
        assert_eq!(empty.status, StatusCode::OK);
        assert_eq!(
            body_json(&empty)
                .get("compositions")
                .and_then(|c| c.as_array())
                .map(<[JsonValue]>::len),
            Some(0)
        );
    }

    #[test]
    fn register_then_invoke_with_raw_body() {
        let frontend = frontend();
        let register = frontend.handle(&HttpRequest::post(
            "http://worker/v1/compositions",
            UPPER_DSL.as_bytes().to_vec(),
        ));
        assert_eq!(register.status, StatusCode::CREATED);
        assert_eq!(
            body_json(&register).get("name").and_then(JsonValue::as_str),
            Some("Shout")
        );

        let listing = frontend.handle(&HttpRequest::get("http://worker/v1/compositions"));
        assert!(listing.body_text().contains("Shout"));

        let invoke = frontend.handle(&HttpRequest::post(
            "http://worker/v1/invoke/Shout",
            b"hello dandelion".to_vec(),
        ));
        assert_eq!(invoke.status, StatusCode::OK);
        assert_eq!(invoke.body_text(), "HELLO DANDELION");

        let stats = frontend.handle(&HttpRequest::get("http://worker/v1/stats"));
        assert_eq!(
            body_json(&stats)
                .get("invocations")
                .and_then(JsonValue::as_u64),
            Some(1)
        );
    }

    #[test]
    fn invoke_with_set_list_body() {
        let frontend = frontend();
        frontend.handle(&HttpRequest::post(
            "http://worker/v1/compositions",
            UPPER_DSL.as_bytes().to_vec(),
        ));
        let sets = vec![DataSet::with_items(
            "Input",
            vec![DataItem::new("text", b"mixed Case".to_vec())],
        )];
        let body = output_parser::encode_outputs(&sets);
        let request = HttpRequest::post("http://worker/v1/invoke/Shout", body)
            .with_header("Content-Type", SET_LIST_CONTENT_TYPE);
        let response = frontend.handle(&request);
        assert_eq!(response.status, StatusCode::OK);
        assert_eq!(response.body_text(), "MIXED CASE");
    }

    #[test]
    fn submit_then_poll_roundtrip() {
        let frontend = frontend();
        frontend.handle(&HttpRequest::post(
            "http://worker/v1/compositions",
            UPPER_DSL.as_bytes().to_vec(),
        ));
        let submitted = frontend.handle(&HttpRequest::post(
            "http://worker/v1/invocations/Shout",
            b"async path".to_vec(),
        ));
        assert_eq!(submitted.status, StatusCode::ACCEPTED);
        let submitted_json = body_json(&submitted);
        let id = submitted_json
            .get("invocation_id")
            .and_then(JsonValue::as_str)
            .expect("202 body carries the invocation id")
            .to_string();
        assert!(id.starts_with("inv-"));
        assert_eq!(
            submitted_json.get("href").and_then(JsonValue::as_str),
            Some(format!("/v1/invocations/{id}").as_str())
        );

        // Poll until the invocation settles.
        let deadline = Instant::now() + Duration::from_secs(10);
        let document = loop {
            let poll = frontend.handle(&HttpRequest::get(format!(
                "http://worker/v1/invocations/{id}"
            )));
            assert_eq!(poll.status, StatusCode::OK);
            let document = body_json(&poll);
            let status = document
                .get("status")
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_string();
            if status == "completed" {
                break document;
            }
            assert_ne!(status, "failed");
            assert!(Instant::now() < deadline, "invocation did not settle");
            std::thread::yield_now();
        };
        let data = document
            .get("outputs")
            .and_then(|o| o.as_array())
            .and_then(|sets| sets[0].get("items"))
            .and_then(|items| items.as_array())
            .and_then(|items| items[0].get("data_base64"))
            .and_then(JsonValue::as_str)
            .expect("completed document carries outputs");
        assert_eq!(base64_decode(data).unwrap(), b"ASYNC PATH");
        // Polling is non-consuming.
        let again = frontend.handle(&HttpRequest::get(format!(
            "http://worker/v1/invocations/{id}"
        )));
        assert_eq!(again.status, StatusCode::OK);
    }

    #[test]
    fn polling_unknown_ids_is_a_typed_not_found() {
        let frontend = frontend();
        let response =
            frontend.handle(&HttpRequest::get("http://worker/v1/invocations/inv-999999"));
        assert_eq!(response.status, StatusCode::NOT_FOUND);
        let error = body_json(&response);
        assert_eq!(
            error
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(JsonValue::as_str),
            Some("not_found")
        );
        // Malformed ids are a 400 with their own code.
        let bad = frontend.handle(&HttpRequest::get("http://worker/v1/invocations/not-an-id"));
        assert_eq!(bad.status, StatusCode::BAD_REQUEST);
        assert_eq!(
            body_json(&bad)
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(JsonValue::as_str),
            Some("invalid_request")
        );
    }

    #[test]
    fn failed_invocations_surface_their_error_in_the_status_document() {
        let frontend = frontend();
        frontend
            .worker()
            .register_function(FunctionArtifact::new(
                "Boom",
                &["Out"],
                |_ctx: &mut FunctionCtx| Err("kaboom".into()),
            ))
            .unwrap();
        frontend.handle(&HttpRequest::post(
            "http://worker/v1/compositions",
            b"composition Explode(In) => Out { Boom(X = all In) => (Out = Out); }".to_vec(),
        ));
        let submitted = frontend.handle(&HttpRequest::post(
            "http://worker/v1/invocations/Explode",
            b"x".to_vec(),
        ));
        assert_eq!(submitted.status, StatusCode::ACCEPTED);
        let id = body_json(&submitted)
            .get("invocation_id")
            .and_then(JsonValue::as_str)
            .unwrap()
            .to_string();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let poll = frontend.handle(&HttpRequest::get(format!(
                "http://worker/v1/invocations/{id}"
            )));
            let document = body_json(&poll);
            if document.get("status").and_then(JsonValue::as_str) == Some("failed") {
                assert_eq!(
                    document
                        .get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(JsonValue::as_str),
                    Some("function_fault")
                );
                break;
            }
            assert!(Instant::now() < deadline, "invocation did not fail in time");
            std::thread::yield_now();
        }
    }

    #[test]
    fn errors_map_to_http_statuses_with_stable_codes() {
        let frontend = frontend();
        // Invoking an unregistered composition is a 404.
        let missing = frontend.handle(&HttpRequest::post(
            "http://worker/v1/invoke/Nope",
            b"x".to_vec(),
        ));
        assert_eq!(missing.status, StatusCode::NOT_FOUND);
        assert_eq!(
            body_json(&missing)
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(JsonValue::as_str),
            Some("not_found")
        );
        // Registering invalid DSL is a 400 parse error.
        let invalid = frontend.handle(&HttpRequest::post(
            "http://worker/v1/compositions",
            b"composition Broken {".to_vec(),
        ));
        assert_eq!(invalid.status, StatusCode::BAD_REQUEST);
        assert_eq!(
            body_json(&invalid)
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(JsonValue::as_str),
            Some("parse_error")
        );
        // Unknown endpoints are 404s.
        let unknown = frontend.handle(&HttpRequest::get("http://worker/v2/other"));
        assert_eq!(unknown.status, StatusCode::NOT_FOUND);
        // Query strings are rejected consistently.
        let query = frontend.handle(&HttpRequest::get("http://worker/v1/stats?verbose=1"));
        assert_eq!(query.status, StatusCode::BAD_REQUEST);
        // Malformed set-list bodies are rejected.
        frontend.handle(&HttpRequest::post(
            "http://worker/v1/compositions",
            UPPER_DSL.as_bytes().to_vec(),
        ));
        let bad_sets = HttpRequest::post("http://worker/v1/invoke/Shout", b"garbage".to_vec())
            .with_header("Content-Type", SET_LIST_CONTENT_TYPE);
        assert_eq!(frontend.handle(&bad_sets).status, StatusCode::BAD_REQUEST);
    }
}
