//! Per-invocation dataflow state.
//!
//! The dispatcher "schedules functions by tracking input/output dependencies
//! and determines when a function is ready to run (i.e., when all its inputs
//! are available)" (paper §5). [`InvocationState`] is that bookkeeping as a
//! pure state machine: the threaded dispatcher and the discrete-event
//! simulator both drive it, so the scheduling semantics — `all`/`each`/`key`
//! distribution, optional sets, skip-on-empty failure handling (§4.4) — are
//! implemented exactly once.

use std::collections::HashMap;
use std::sync::Arc;

use dandelion_common::{DandelionError, DandelionResult, DataSet, InvocationId};
use dandelion_dsl::graph::{CompositionGraph, GraphNode, InputSource};
use dandelion_dsl::Distribution;

/// One executable instance of a node, with materialized inputs.
#[derive(Debug, Clone)]
pub struct InstanceSpec {
    /// The node index in the composition graph.
    pub node: usize,
    /// The instance index within the node (0-based).
    pub instance: usize,
    /// The vertex name (compute function, communication function, or nested
    /// composition).
    pub vertex: String,
    /// Materialized input sets, named after the node's declared input sets.
    pub inputs: Vec<DataSet>,
    /// The node's declared output set names, in declaration order.
    pub output_sets: Vec<String>,
}

#[derive(Debug, Clone, PartialEq)]
enum NodeStatus {
    /// Waiting for upstream nodes to finish.
    Waiting,
    /// Instances have been handed out; `completed` of `total` finished.
    Running { total: usize, completed: usize },
    /// The node was skipped because a required input set was empty.
    Skipped,
    /// All instances finished and outputs are merged.
    Completed,
}

/// The dataflow state of one composition invocation.
#[derive(Debug)]
pub struct InvocationState {
    id: InvocationId,
    graph: Arc<CompositionGraph>,
    external_inputs: Vec<DataSet>,
    status: Vec<NodeStatus>,
    /// Merged outputs per node, keyed by output-set name.
    outputs: Vec<HashMap<String, DataSet>>,
    /// Per-node, per-instance partial results while a node is running.
    partial: Vec<Vec<Option<Vec<DataSet>>>>,
    error: Option<DandelionError>,
}

impl InvocationState {
    /// Creates the state for invoking `graph` with the client's inputs.
    ///
    /// Inputs are matched to the composition's external input names by set
    /// name; declared inputs that the client did not provide are treated as
    /// empty sets (which will skip any node that requires them).
    pub fn new(
        id: InvocationId,
        graph: Arc<CompositionGraph>,
        inputs: Vec<DataSet>,
    ) -> DandelionResult<Self> {
        for provided in &inputs {
            if !graph.external_inputs.contains(&provided.name) {
                return Err(DandelionError::DataLayout(format!(
                    "`{}` is not an input of composition `{}`",
                    provided.name, graph.name
                )));
            }
        }
        let external_inputs = graph
            .external_inputs
            .iter()
            .map(|name| {
                inputs
                    .iter()
                    .find(|set| &set.name == name)
                    .cloned()
                    .unwrap_or_else(|| DataSet::new(name.clone()))
            })
            .collect();
        let node_count = graph.nodes.len();
        Ok(Self {
            id,
            graph,
            external_inputs,
            status: vec![NodeStatus::Waiting; node_count],
            outputs: vec![HashMap::new(); node_count],
            partial: vec![Vec::new(); node_count],
            error: None,
        })
    }

    /// The invocation identifier.
    pub fn id(&self) -> InvocationId {
        self.id
    }

    /// The composition being executed.
    pub fn graph(&self) -> &CompositionGraph {
        &self.graph
    }

    /// Returns `true` once every node has completed or been skipped, or an
    /// error occurred.
    pub fn is_complete(&self) -> bool {
        self.error.is_some()
            || self
                .status
                .iter()
                .all(|status| matches!(status, NodeStatus::Completed | NodeStatus::Skipped))
    }

    /// The error that aborted the invocation, if any.
    pub fn error(&self) -> Option<&DandelionError> {
        self.error.as_ref()
    }

    /// Records an invocation-fatal error.
    pub fn fail(&mut self, error: DandelionError) {
        if self.error.is_none() {
            self.error = Some(error);
        }
    }

    fn source_data(&self, node: &GraphNode, binding_index: usize) -> Option<DataSet> {
        let binding = &node.inputs[binding_index];
        match &binding.source {
            InputSource::External { name } => self
                .external_inputs
                .iter()
                .find(|set| &set.name == name)
                .cloned(),
            InputSource::Node {
                node: producer,
                set,
            } => match &self.status[*producer] {
                NodeStatus::Completed => Some(
                    self.outputs[*producer]
                        .get(set)
                        .cloned()
                        .unwrap_or_else(|| DataSet::new(set.clone())),
                ),
                NodeStatus::Skipped => Some(DataSet::new(set.clone())),
                _ => None,
            },
        }
    }

    fn dependencies_satisfied(&self, node: &GraphNode) -> bool {
        node.dependencies().iter().all(|dep| {
            matches!(
                self.status[*dep],
                NodeStatus::Completed | NodeStatus::Skipped
            )
        })
    }

    /// Returns the instances that became ready, transitioning their nodes to
    /// the running (or skipped) state.
    ///
    /// Call this after construction and after every completed instance; it
    /// cascades skip decisions through the DAG, so one call may settle
    /// several nodes.
    pub fn ready_instances(&mut self) -> DandelionResult<Vec<InstanceSpec>> {
        if self.error.is_some() {
            return Ok(Vec::new());
        }
        let mut ready = Vec::new();
        let mut progressed = true;
        while progressed {
            progressed = false;
            for index in 0..self.graph.nodes.len() {
                if self.status[index] != NodeStatus::Waiting {
                    continue;
                }
                let node = self.graph.nodes[index].clone();
                if !self.dependencies_satisfied(&node) {
                    continue;
                }
                // Materialize every input binding.
                let mut sources = Vec::with_capacity(node.inputs.len());
                for binding_index in 0..node.inputs.len() {
                    let Some(data) = self.source_data(&node, binding_index) else {
                        return Err(DandelionError::Dispatch(format!(
                            "node {index} considered ready but an input was unavailable"
                        )));
                    };
                    sources.push(data);
                }
                // Skip the node if any required set is empty (paper §4.4).
                let must_skip = node
                    .inputs
                    .iter()
                    .zip(&sources)
                    .any(|(binding, data)| !binding.optional && data.is_empty());
                if must_skip {
                    self.status[index] = NodeStatus::Skipped;
                    progressed = true;
                    continue;
                }
                let instances = expand_instances(&node, &sources)?;
                if instances.is_empty() {
                    // e.g. an `each` over an empty optional set: nothing to
                    // run, the node completes with empty outputs.
                    self.status[index] = NodeStatus::Completed;
                    self.outputs[index] = node
                        .outputs
                        .iter()
                        .map(|output| (output.set.clone(), DataSet::new(output.set.clone())))
                        .collect();
                    progressed = true;
                    continue;
                }
                let total = instances.len();
                self.partial[index] = vec![None; total];
                self.status[index] = NodeStatus::Running {
                    total,
                    completed: 0,
                };
                let output_sets: Vec<String> = node
                    .outputs
                    .iter()
                    .map(|output| output.set.clone())
                    .collect();
                for (instance_index, inputs) in instances.into_iter().enumerate() {
                    ready.push(InstanceSpec {
                        node: index,
                        instance: instance_index,
                        vertex: node.vertex.clone(),
                        inputs,
                        output_sets: output_sets.clone(),
                    });
                }
                progressed = true;
            }
        }
        Ok(ready)
    }

    /// Records the completion of one instance.
    ///
    /// Returns `true` if this completion finished the node (so the caller
    /// should ask for newly ready instances).
    pub fn complete_instance(
        &mut self,
        node: usize,
        instance: usize,
        outcome: DandelionResult<Vec<DataSet>>,
    ) -> DandelionResult<bool> {
        if self.error.is_some() {
            return Ok(false);
        }
        let outputs = match outcome {
            Ok(outputs) => outputs,
            Err(error) => {
                self.fail(error.clone());
                return Err(error);
            }
        };
        let NodeStatus::Running { total, completed } = self.status[node].clone() else {
            return Err(DandelionError::Dispatch(format!(
                "completion for node {node} which is not running"
            )));
        };
        let slot = self.partial[node]
            .get_mut(instance)
            .ok_or_else(|| DandelionError::Dispatch(format!("instance {instance} out of range")))?;
        if slot.is_some() {
            return Err(DandelionError::Dispatch(format!(
                "instance {instance} of node {node} completed twice"
            )));
        }
        *slot = Some(outputs);
        let completed = completed + 1;
        if completed < total {
            self.status[node] = NodeStatus::Running { total, completed };
            return Ok(false);
        }
        // Merge instance outputs per declared output set, instance order.
        let graph_node = &self.graph.nodes[node];
        let mut merged: HashMap<String, DataSet> = graph_node
            .outputs
            .iter()
            .map(|output| (output.set.clone(), DataSet::new(output.set.clone())))
            .collect();
        for instance_outputs in self.partial[node].iter().flatten() {
            for set in instance_outputs {
                if let Some(target) = merged.get_mut(&set.name) {
                    target.items.extend(set.items.iter().cloned());
                }
            }
        }
        self.outputs[node] = merged;
        self.partial[node].clear();
        self.status[node] = NodeStatus::Completed;
        Ok(true)
    }

    /// Assembles the composition's external outputs once complete.
    pub fn external_outputs(&self) -> DandelionResult<Vec<DataSet>> {
        if let Some(error) = &self.error {
            return Err(error.clone());
        }
        if !self.is_complete() {
            return Err(DandelionError::Dispatch(
                "invocation is not complete yet".to_string(),
            ));
        }
        let mut outputs = Vec::with_capacity(self.graph.output_bindings.len());
        for binding in &self.graph.output_bindings {
            let mut set = self.outputs[binding.node]
                .get(&binding.set)
                .cloned()
                .unwrap_or_else(|| DataSet::new(binding.set.clone()));
            set.name = binding.name.clone();
            outputs.push(set);
        }
        Ok(outputs)
    }
}

/// Expands a node's materialized source sets into per-instance input sets
/// according to the distribution keywords.
fn expand_instances(node: &GraphNode, sources: &[DataSet]) -> DandelionResult<Vec<Vec<DataSet>>> {
    let fanout_bindings: Vec<usize> = node
        .inputs
        .iter()
        .enumerate()
        .filter(|(_, binding)| binding.distribution != Distribution::All)
        .map(|(index, _)| index)
        .collect();
    if fanout_bindings.len() > 1 {
        return Err(DandelionError::Validation(format!(
            "vertex `{}` uses more than one `each`/`key` input, which is not supported",
            node.vertex
        )));
    }

    // Rename each source set to the function-facing input set name.
    let renamed: Vec<DataSet> = node
        .inputs
        .iter()
        .zip(sources)
        .map(|(binding, data)| DataSet {
            name: binding.set.clone(),
            items: data.items.clone(),
        })
        .collect();

    let Some(&fanout_index) = fanout_bindings.first() else {
        // All bindings are `all`: one instance receives everything.
        return Ok(vec![renamed]);
    };

    let binding = &node.inputs[fanout_index];
    let fanout_set = &renamed[fanout_index];
    let mut instances = Vec::new();
    match binding.distribution {
        Distribution::Each => {
            for item in &fanout_set.items {
                let mut inputs = renamed.clone();
                inputs[fanout_index] = DataSet {
                    name: binding.set.clone(),
                    items: vec![item.clone()],
                };
                instances.push(inputs);
            }
        }
        Distribution::Key => {
            for (_, items) in fanout_set.group_by_key() {
                let mut inputs = renamed.clone();
                inputs[fanout_index] = DataSet {
                    name: binding.set.clone(),
                    items,
                };
                instances.push(inputs);
            }
        }
        Distribution::All => unreachable!("all-bindings are handled above"),
    }
    Ok(instances)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dandelion_common::DataItem;
    use dandelion_dsl::builder::render_logs_composition;
    use dandelion_dsl::{CompositionBuilder, Distribution};

    fn invocation(graph: CompositionGraph, inputs: Vec<DataSet>) -> InvocationState {
        InvocationState::new(InvocationId::next(), Arc::new(graph), inputs).unwrap()
    }

    #[test]
    fn linear_pipeline_runs_node_by_node() {
        let mut state = invocation(
            render_logs_composition(),
            vec![DataSet::single("AccessToken", b"token".to_vec())],
        );
        // First only the Access node is ready.
        let ready = state.ready_instances().unwrap();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].vertex, "Access");
        assert_eq!(ready[0].inputs[0].name, "AccessToken");
        assert!(!state.is_complete());

        // Completing Access readies the first HTTP node with `each` fan-out.
        let finished = state
            .complete_instance(
                0,
                0,
                Ok(vec![DataSet::with_items(
                    "HTTPRequest",
                    vec![DataItem::new(
                        "req",
                        b"GET http://auth/ HTTP/1.1\r\n\r\n".to_vec(),
                    )],
                )]),
            )
            .unwrap();
        assert!(finished);
        let ready = state.ready_instances().unwrap();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].vertex, "HTTP");
        assert_eq!(ready[0].output_sets, vec!["Response"]);
    }

    #[test]
    fn each_distribution_creates_one_instance_per_item() {
        let graph = CompositionBuilder::new("Fan")
            .input("Items")
            .output("Out")
            .node("Work", |node| {
                node.bind("item", Distribution::Each, "Items")
                    .publish("Out", "result")
            })
            .build()
            .unwrap();
        let mut state = invocation(
            graph,
            vec![DataSet::with_items(
                "Items",
                vec![
                    DataItem::new("a", vec![1]),
                    DataItem::new("b", vec![2]),
                    DataItem::new("c", vec![3]),
                ],
            )],
        );
        let ready = state.ready_instances().unwrap();
        assert_eq!(ready.len(), 3);
        assert!(ready.iter().all(|spec| spec.inputs[0].len() == 1));
        // Completing out of order still merges in instance order.
        for spec in ready.iter().rev() {
            state
                .complete_instance(
                    spec.node,
                    spec.instance,
                    Ok(vec![DataSet::with_items(
                        "result",
                        vec![DataItem::new(
                            format!("r{}", spec.instance),
                            vec![spec.instance as u8],
                        )],
                    )]),
                )
                .unwrap();
        }
        assert!(state.is_complete());
        let outputs = state.external_outputs().unwrap();
        assert_eq!(outputs[0].name, "Out");
        let order: Vec<u8> = outputs[0].items.iter().map(|item| item.data[0]).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn key_distribution_groups_items() {
        let graph = CompositionBuilder::new("Grouped")
            .input("Parts")
            .output("Out")
            .node("Reduce", |node| {
                node.bind("group", Distribution::Key, "Parts")
                    .publish("Out", "result")
            })
            .build()
            .unwrap();
        let mut state = invocation(
            graph,
            vec![DataSet::with_items(
                "Parts",
                vec![
                    DataItem::with_key("a", "k1", vec![1]),
                    DataItem::with_key("b", "k2", vec![2]),
                    DataItem::with_key("c", "k1", vec![3]),
                ],
            )],
        );
        let ready = state.ready_instances().unwrap();
        assert_eq!(ready.len(), 2);
        let sizes: Vec<usize> = ready.iter().map(|spec| spec.inputs[0].len()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
    }

    #[test]
    fn empty_required_input_skips_node_and_cascades() {
        let mut state = invocation(render_logs_composition(), vec![DataSet::new("AccessToken")]);
        // The Access node requires a token item; with none, everything skips.
        let ready = state.ready_instances().unwrap();
        assert!(ready.is_empty());
        assert!(state.is_complete());
        let outputs = state.external_outputs().unwrap();
        assert_eq!(outputs.len(), 1);
        assert!(outputs[0].is_empty());
    }

    #[test]
    fn optional_inputs_do_not_block_execution() {
        let graph = CompositionBuilder::new("WithErrors")
            .input("Data")
            .input("Errors")
            .output("Out")
            .node("Handle", |node| {
                node.bind("data", Distribution::All, "Data")
                    .bind_optional("errors", Distribution::All, "Errors")
                    .publish("Out", "report")
            })
            .build()
            .unwrap();
        let mut state = invocation(graph, vec![DataSet::single("Data", vec![1])]);
        let ready = state.ready_instances().unwrap();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].inputs.len(), 2);
        assert!(ready[0].inputs[1].is_empty());
    }

    #[test]
    fn errors_abort_the_invocation() {
        let mut state = invocation(
            render_logs_composition(),
            vec![DataSet::single("AccessToken", b"t".to_vec())],
        );
        let ready = state.ready_instances().unwrap();
        assert_eq!(ready.len(), 1);
        let err = state
            .complete_instance(
                0,
                0,
                Err(DandelionError::FunctionFault {
                    function: "Access".into(),
                    reason: "bad token".into(),
                }),
            )
            .unwrap_err();
        assert!(matches!(err, DandelionError::FunctionFault { .. }));
        assert!(state.is_complete());
        assert!(state.external_outputs().is_err());
    }

    #[test]
    fn duplicate_and_unknown_completions_are_rejected() {
        let graph = CompositionBuilder::new("One")
            .input("In")
            .output("Out")
            .node("F", |node| {
                node.bind("x", Distribution::All, "In").publish("Out", "o")
            })
            .build()
            .unwrap();
        let mut state = invocation(graph, vec![DataSet::single("In", vec![1])]);
        let _ = state.ready_instances().unwrap();
        state
            .complete_instance(0, 0, Ok(vec![DataSet::single("o", vec![2])]))
            .unwrap();
        assert!(state
            .complete_instance(0, 0, Ok(vec![DataSet::single("o", vec![2])]))
            .is_err());
    }

    #[test]
    fn unknown_client_inputs_are_rejected() {
        let result = InvocationState::new(
            InvocationId::next(),
            Arc::new(render_logs_composition()),
            vec![DataSet::single("NotAnInput", vec![1])],
        );
        assert!(result.is_err());
    }

    #[test]
    fn multiple_fanout_bindings_are_rejected() {
        let graph = CompositionBuilder::new("TwoEach")
            .input("A")
            .input("B")
            .output("Out")
            .node("Zip", |node| {
                node.bind("a", Distribution::Each, "A")
                    .bind("b", Distribution::Each, "B")
                    .publish("Out", "o")
            })
            .build()
            .unwrap();
        let mut state = invocation(
            graph,
            vec![DataSet::single("A", vec![1]), DataSet::single("B", vec![2])],
        );
        assert!(state.ready_instances().is_err());
    }

    #[test]
    fn diamond_joins_wait_for_both_branches() {
        let graph = CompositionBuilder::new("Diamond")
            .input("In")
            .output("Out")
            .node("Split", |node| {
                node.bind("data", Distribution::All, "In")
                    .publish("Left", "l")
                    .publish("Right", "r")
            })
            .node("A", |node| {
                node.bind("x", Distribution::All, "Left")
                    .publish("ADone", "o")
            })
            .node("B", |node| {
                node.bind("x", Distribution::All, "Right")
                    .publish("BDone", "o")
            })
            .node("Join", |node| {
                node.bind("a", Distribution::All, "ADone")
                    .bind("b", Distribution::All, "BDone")
                    .publish("Out", "merged")
            })
            .build()
            .unwrap();
        let mut state = invocation(graph, vec![DataSet::single("In", vec![7])]);
        let ready = state.ready_instances().unwrap();
        assert_eq!(ready.len(), 1);
        state
            .complete_instance(
                0,
                0,
                Ok(vec![
                    DataSet::single("l", vec![1]),
                    DataSet::single("r", vec![2]),
                ]),
            )
            .unwrap();
        let ready = state.ready_instances().unwrap();
        assert_eq!(ready.len(), 2);
        // Join is not ready until both branches are done.
        state
            .complete_instance(1, 0, Ok(vec![DataSet::single("o", vec![1])]))
            .unwrap();
        assert!(state.ready_instances().unwrap().is_empty());
        state
            .complete_instance(2, 0, Ok(vec![DataSet::single("o", vec![2])]))
            .unwrap();
        let ready = state.ready_instances().unwrap();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].vertex, "Join");
    }
}
