//! The Dandelion worker runtime.
//!
//! This crate implements the execution system of the paper (§5, Figure 4):
//!
//! * the **registry** of compute functions, communication functions and
//!   composition DAGs ([`registry`]);
//! * the **dispatcher**, which tracks per-invocation dataflow state, prepares
//!   isolated memory contexts, and moves data between functions
//!   ([`invocation`], [`dispatcher`]);
//! * **compute engines** that execute untrusted functions one at a time to
//!   completion inside an isolation backend, and **communication engines**
//!   that execute trusted I/O functions cooperatively ([`engine`], [`task`]);
//! * the **control plane**: a PI controller that re-balances CPU cores
//!   between compute and communication engines every 30 ms based on queue
//!   growth ([`control`]);
//! * the **HTTP frontend** for registration and invocation ([`frontend`]),
//!   exposing the versioned v1 JSON API with non-blocking
//!   submit/poll invocation endpoints;
//! * a small **cluster manager** that load-balances invocations across
//!   worker nodes, in the spirit of Dirigent ([`cluster`]);
//! * the **client facade** [`client::DandelionClient`] wrapping a frontend
//!   or a cluster behind one typed submit/poll/invoke interface.
//!
//! The crate is usable both as a real multi-threaded runtime (see
//! [`worker::WorkerNode`]) and as a library of policy components (the PI
//! controller, the invocation state machine) that the discrete-event
//! simulator in `dandelion-sim` reuses under virtual time.

pub mod client;
pub mod cluster;
pub mod control;
pub mod dispatcher;
pub mod engine;
pub mod frontend;
pub mod invocation;
pub mod registry;
pub mod task;
pub mod worker;

pub use client::{ClientHandle, ClientPoll, DandelionClient};
pub use cluster::{composition_affinity_hash, ClusterManager};
pub use control::PiController;
pub use dispatcher::{
    DispatchMetrics, Dispatcher, InvocationHandle, InvocationOutcome, InvocationSnapshot,
    InvocationStatus,
};
pub use frontend::{sync_invoke_response, Frontend, FrontendReply, StatsSource};
pub use registry::{CommunicationKind, Registry, Vertex};
pub use worker::{WorkerNode, WorkerStats};
