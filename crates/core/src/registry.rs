//! Registration of functions and compositions.
//!
//! The dispatcher keeps "a registry of all registered composition DAGs,
//! function binaries, and associated metadata" (paper §5). Vertices in a
//! composition resolve to one of three kinds: a user compute function, a
//! platform communication function (currently `HTTP`), or another
//! composition (nesting, paper §4.1).

use std::collections::HashMap;
use std::sync::Arc;

use dandelion_common::{DandelionError, DandelionResult};
use dandelion_dsl::CompositionGraph;
use dandelion_isolation::FunctionArtifact;
use parking_lot::RwLock;

/// The built-in communication functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommunicationKind {
    /// The HTTP communication function (GET/PUT/POST/DELETE over REST).
    Http,
}

impl CommunicationKind {
    /// The vertex name used in compositions.
    pub fn vertex_name(&self) -> &'static str {
        match self {
            CommunicationKind::Http => "HTTP",
        }
    }
}

/// What a composition vertex resolves to.
#[derive(Clone)]
pub enum Vertex {
    /// An untrusted compute function executed in a sandbox.
    Compute(Arc<FunctionArtifact>),
    /// A trusted communication function executed by a communication engine.
    Communication(CommunicationKind),
    /// A nested composition executed as a sub-invocation.
    Composition(Arc<CompositionGraph>),
}

impl std::fmt::Debug for Vertex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Vertex::Compute(artifact) => write!(f, "Compute({})", artifact.name),
            Vertex::Communication(kind) => write!(f, "Communication({})", kind.vertex_name()),
            Vertex::Composition(graph) => write!(f, "Composition({})", graph.name),
        }
    }
}

/// Thread-safe registry of functions and compositions.
#[derive(Default)]
pub struct Registry {
    functions: RwLock<HashMap<String, Arc<FunctionArtifact>>>,
    compositions: RwLock<HashMap<String, Arc<CompositionGraph>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a compute function.
    ///
    /// Fails if the name collides with an existing function, a composition,
    /// or a built-in communication function.
    pub fn register_function(&self, artifact: FunctionArtifact) -> DandelionResult<()> {
        let name = artifact.name.clone();
        if name == CommunicationKind::Http.vertex_name() {
            return Err(DandelionError::AlreadyRegistered {
                kind: "communication function",
                name,
            });
        }
        if self.compositions.read().contains_key(&name) {
            return Err(DandelionError::AlreadyRegistered {
                kind: "composition",
                name,
            });
        }
        let mut functions = self.functions.write();
        if functions.contains_key(&name) {
            return Err(DandelionError::AlreadyRegistered {
                kind: "function",
                name,
            });
        }
        functions.insert(name, Arc::new(artifact));
        Ok(())
    }

    /// Registers a composition DAG.
    ///
    /// Every vertex referenced by the composition must already resolve
    /// (compute function, communication function, or previously registered
    /// composition); this is where dangling names are caught, mirroring the
    /// paper's registration flow where binaries are uploaded before the DAG.
    pub fn register_composition(&self, graph: CompositionGraph) -> DandelionResult<()> {
        let name = graph.name.clone();
        if self.functions.read().contains_key(&name)
            || name == CommunicationKind::Http.vertex_name()
        {
            return Err(DandelionError::AlreadyRegistered {
                kind: "function",
                name,
            });
        }
        for vertex in graph.referenced_vertices() {
            if vertex == name {
                return Err(DandelionError::Validation(format!(
                    "composition `{name}` cannot invoke itself"
                )));
            }
            if self.resolve(&vertex).is_none() {
                return Err(DandelionError::NotFound {
                    kind: "vertex",
                    name: vertex,
                });
            }
        }
        let mut compositions = self.compositions.write();
        if compositions.contains_key(&name) {
            return Err(DandelionError::AlreadyRegistered {
                kind: "composition",
                name,
            });
        }
        compositions.insert(name, Arc::new(graph));
        Ok(())
    }

    /// Resolves a vertex name to its kind.
    pub fn resolve(&self, name: &str) -> Option<Vertex> {
        if name == CommunicationKind::Http.vertex_name() {
            return Some(Vertex::Communication(CommunicationKind::Http));
        }
        if let Some(artifact) = self.functions.read().get(name) {
            return Some(Vertex::Compute(Arc::clone(artifact)));
        }
        if let Some(graph) = self.compositions.read().get(name) {
            return Some(Vertex::Composition(Arc::clone(graph)));
        }
        None
    }

    /// Looks up a registered composition.
    pub fn composition(&self, name: &str) -> DandelionResult<Arc<CompositionGraph>> {
        self.compositions
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DandelionError::NotFound {
                kind: "composition",
                name: name.to_string(),
            })
    }

    /// Looks up a registered compute function.
    pub fn function(&self, name: &str) -> DandelionResult<Arc<FunctionArtifact>> {
        self.functions
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DandelionError::NotFound {
                kind: "function",
                name: name.to_string(),
            })
    }

    /// Names of all registered compositions, sorted.
    pub fn composition_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.compositions.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Names of all registered compute functions, sorted.
    pub fn function_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.functions.read().keys().cloned().collect();
        names.sort();
        names
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("functions", &self.function_names())
            .field("compositions", &self.composition_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dandelion_dsl::builder::render_logs_composition;
    use dandelion_isolation::FunctionCtx;

    fn noop(name: &str) -> FunctionArtifact {
        FunctionArtifact::new(name, &["out"], |_ctx: &mut FunctionCtx| Ok(()))
    }

    fn registry_with_log_functions() -> Registry {
        let registry = Registry::new();
        for name in ["Access", "FanOut", "Render"] {
            registry.register_function(noop(name)).unwrap();
        }
        registry
    }

    #[test]
    fn registers_and_resolves_functions() {
        let registry = registry_with_log_functions();
        assert!(matches!(
            registry.resolve("Access"),
            Some(Vertex::Compute(_))
        ));
        assert!(matches!(
            registry.resolve("HTTP"),
            Some(Vertex::Communication(CommunicationKind::Http))
        ));
        assert!(registry.resolve("Unknown").is_none());
        assert_eq!(
            registry.function_names(),
            vec!["Access", "FanOut", "Render"]
        );
    }

    #[test]
    fn duplicate_registrations_are_rejected() {
        let registry = registry_with_log_functions();
        assert!(registry.register_function(noop("Access")).is_err());
        assert!(registry.register_function(noop("HTTP")).is_err());
    }

    #[test]
    fn composition_requires_resolvable_vertices() {
        let registry = Registry::new();
        let err = registry
            .register_composition(render_logs_composition())
            .unwrap_err();
        assert!(matches!(err, DandelionError::NotFound { .. }));

        let registry = registry_with_log_functions();
        registry
            .register_composition(render_logs_composition())
            .unwrap();
        assert!(matches!(
            registry.resolve("RenderLogs"),
            Some(Vertex::Composition(_))
        ));
        assert_eq!(registry.composition_names(), vec!["RenderLogs"]);
        assert!(registry.composition("RenderLogs").is_ok());
        assert!(registry.composition("Nope").is_err());
    }

    #[test]
    fn composition_name_collisions_are_rejected() {
        let registry = registry_with_log_functions();
        registry
            .register_composition(render_logs_composition())
            .unwrap();
        assert!(registry
            .register_composition(render_logs_composition())
            .is_err());
        // A function may not shadow an existing composition either.
        assert!(registry.register_function(noop("RenderLogs")).is_err());
    }

    #[test]
    fn nested_compositions_resolve() {
        use dandelion_dsl::{CompositionBuilder, Distribution};
        let registry = registry_with_log_functions();
        registry
            .register_composition(render_logs_composition())
            .unwrap();
        let outer = CompositionBuilder::new("Outer")
            .input("Token")
            .output("Page")
            .node("RenderLogs", |node| {
                node.bind("AccessToken", Distribution::All, "Token")
                    .publish("Page", "HTMLOutput")
            })
            .build()
            .unwrap();
        registry.register_composition(outer).unwrap();
        assert!(matches!(
            registry.resolve("Outer"),
            Some(Vertex::Composition(_))
        ));
    }
}
