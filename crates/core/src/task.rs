//! Tasks, task queues and the engine/dispatcher wire format.
//!
//! The dispatcher enqueues tasks (a prepared set of inputs plus metadata) to
//! per-engine-kind queues; engines poll their type-specific queue to ensure
//! late binding of tasks to cores (paper §5, "Engines"). Queue lengths are
//! also the control plane's only input signal, so the queues track the
//! statistics the PI controller needs.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender, TrySendError};
use dandelion_common::config::EngineKind;
use dandelion_common::{DandelionResult, DataSet, InvocationId};
use dandelion_isolation::FunctionArtifact;

/// The work carried by a task.
#[derive(Debug, Clone)]
pub enum TaskPayload {
    /// Execute a compute function instance in a sandbox.
    Compute {
        /// The function to run.
        artifact: Arc<FunctionArtifact>,
        /// Materialized inputs for this instance.
        inputs: Vec<DataSet>,
        /// Whether the binary must be loaded from disk.
        cold_binary: bool,
        /// Execution timeout.
        timeout: Duration,
    },
    /// Execute an HTTP communication function instance.
    Http {
        /// Materialized inputs; every item is a serialized HTTP request.
        inputs: Vec<DataSet>,
        /// The output set name the responses are collected into.
        response_set: String,
    },
    /// Ask an engine of this kind to shut down (used to shrink a pool).
    Shutdown,
}

impl TaskPayload {
    /// Which engine kind must execute this payload.
    pub fn engine_kind(&self) -> EngineKind {
        match self {
            TaskPayload::Compute { .. } => EngineKind::Compute,
            TaskPayload::Http { .. } | TaskPayload::Shutdown => EngineKind::Communication,
        }
    }
}

/// The reply channel engines send completed task results on.
///
/// Results cross the channel in *batches*: an engine coalesces the results
/// of consecutively executed same-invocation tasks into one message, so a
/// fan-out of N small instances costs one channel round-trip instead of N.
/// The driver drains whole batches per wakeup on the receiving side.
pub type ReplySender = Sender<Vec<TaskResult>>;

/// A schedulable unit of work.
#[derive(Debug, Clone)]
pub struct Task {
    /// The invocation this task belongs to.
    pub invocation: InvocationId,
    /// The graph node index within the invocation.
    pub node: usize,
    /// The instance index within the node (for `each`/`key` fan-out).
    pub instance: usize,
    /// The work itself.
    pub payload: TaskPayload,
    /// Channel the executing engine replies on (in batches).
    pub reply: ReplySender,
}

/// The result an engine sends back to the dispatcher.
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// The invocation the task belonged to.
    pub invocation: InvocationId,
    /// The graph node index.
    pub node: usize,
    /// The instance index.
    pub instance: usize,
    /// The produced output sets, or the failure.
    pub outcome: DandelionResult<Vec<DataSet>>,
    /// Peak context bytes used (compute tasks only).
    pub context_high_water: usize,
    /// Modeled latency of the task (sandbox lifecycle / service latency).
    pub modeled_latency: Duration,
}

/// A task queue with the statistics the control plane samples.
///
/// Built on an unbounded crossbeam channel: `push` never blocks the
/// dispatcher; capacity-induced back-pressure is applied explicitly via
/// [`TaskQueue::try_push`] when a maximum depth is configured.
#[derive(Clone)]
pub struct TaskQueue {
    kind: EngineKind,
    sender: Sender<Task>,
    receiver: Receiver<Task>,
    depth: Arc<AtomicI64>,
    enqueued_total: Arc<AtomicU64>,
    capacity: usize,
}

impl TaskQueue {
    /// Creates a queue for the given engine kind with a maximum depth.
    pub fn new(kind: EngineKind, capacity: usize) -> Self {
        let (sender, receiver) = unbounded();
        Self {
            kind,
            sender,
            receiver,
            depth: Arc::new(AtomicI64::new(0)),
            enqueued_total: Arc::new(AtomicU64::new(0)),
            capacity,
        }
    }

    /// The engine kind this queue feeds.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// Enqueues a task, applying back-pressure when the queue is full.
    pub fn try_push(&self, task: Task) -> Result<(), Task> {
        if self.len() >= self.capacity {
            return Err(task);
        }
        self.push(task);
        Ok(())
    }

    /// Enqueues a task unconditionally.
    pub fn push(&self, task: Task) {
        self.depth.fetch_add(1, Ordering::SeqCst);
        self.enqueued_total.fetch_add(1, Ordering::Relaxed);
        match self.sender.try_send(task) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                // Unbounded channel with a live receiver handle held by the
                // queue itself: this cannot happen.
                self.depth.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    /// Dequeues the next task, waiting up to `timeout`.
    pub fn pop(&self, timeout: Duration) -> Option<Task> {
        match self.receiver.recv_timeout(timeout) {
            Ok(task) => {
                self.depth.fetch_sub(1, Ordering::SeqCst);
                Some(task)
            }
            Err(_) => None,
        }
    }

    /// Dequeues the next task if one is immediately available, without
    /// blocking.
    ///
    /// Engines use this after finishing a task to coalesce further
    /// already-queued work of the same invocation into one reply batch.
    pub fn try_pop(&self) -> Option<Task> {
        match self.receiver.try_recv() {
            Ok(task) => {
                self.depth.fetch_sub(1, Ordering::SeqCst);
                Some(task)
            }
            Err(_) => None,
        }
    }

    /// Dequeues the next task, blocking until one arrives.
    ///
    /// Engines use this instead of polling [`TaskQueue::pop`] in a loop: an
    /// idle engine parks on the queue's condition variable and is woken by
    /// either real work or a [`TaskPayload::Shutdown`] marker.
    pub fn pop_wait(&self) -> Option<Task> {
        match self.receiver.recv() {
            Ok(task) => {
                self.depth.fetch_sub(1, Ordering::SeqCst);
                Some(task)
            }
            // The queue holds its own sender, so a disconnect can only
            // happen while the queue itself is being torn down.
            Err(_) => None,
        }
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.depth.load(Ordering::SeqCst).max(0) as usize
    }

    /// Returns `true` if the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of tasks ever enqueued (monotonic).
    pub fn enqueued_total(&self) -> u64 {
        self.enqueued_total.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for TaskQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskQueue")
            .field("kind", &self.kind)
            .field("len", &self.len())
            .field("enqueued_total", &self.enqueued_total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dandelion_isolation::FunctionCtx;

    fn dummy_task(reply: ReplySender) -> Task {
        Task {
            invocation: InvocationId::from_raw(1),
            node: 0,
            instance: 0,
            payload: TaskPayload::Http {
                inputs: vec![],
                response_set: "Response".to_string(),
            },
            reply,
        }
    }

    #[test]
    fn payload_engine_kinds() {
        let compute = TaskPayload::Compute {
            artifact: Arc::new(FunctionArtifact::new("f", &["o"], |_: &mut FunctionCtx| {
                Ok(())
            })),
            inputs: vec![],
            cold_binary: false,
            timeout: Duration::from_secs(1),
        };
        assert_eq!(compute.engine_kind(), EngineKind::Compute);
        assert_eq!(
            TaskPayload::Shutdown.engine_kind(),
            EngineKind::Communication
        );
    }

    #[test]
    fn queue_tracks_depth_and_totals() {
        let queue = TaskQueue::new(EngineKind::Communication, 16);
        let (reply, _rx) = unbounded();
        assert!(queue.is_empty());
        queue.push(dummy_task(reply.clone()));
        queue.push(dummy_task(reply.clone()));
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.enqueued_total(), 2);
        assert!(queue.pop(Duration::from_millis(10)).is_some());
        assert_eq!(queue.len(), 1);
        assert!(queue.pop(Duration::from_millis(10)).is_some());
        assert!(queue.pop(Duration::from_millis(10)).is_none());
        assert_eq!(queue.enqueued_total(), 2);
    }

    #[test]
    fn try_push_applies_back_pressure() {
        let queue = TaskQueue::new(EngineKind::Communication, 1);
        let (reply, _rx) = unbounded();
        assert!(queue.try_push(dummy_task(reply.clone())).is_ok());
        assert!(queue.try_push(dummy_task(reply.clone())).is_err());
        queue.pop(Duration::from_millis(10)).unwrap();
        assert!(queue.try_push(dummy_task(reply)).is_ok());
    }

    #[test]
    fn queue_clones_share_state() {
        let queue = TaskQueue::new(EngineKind::Compute, 8);
        let clone = queue.clone();
        let (reply, _rx) = unbounded();
        queue.push(dummy_task(reply));
        assert_eq!(clone.len(), 1);
        assert!(clone.pop(Duration::from_millis(10)).is_some());
        assert!(queue.is_empty());
    }

    #[test]
    fn try_pop_is_nonblocking() {
        let queue = TaskQueue::new(EngineKind::Compute, 8);
        assert!(queue.try_pop().is_none());
        let (reply, _rx) = unbounded();
        queue.push(dummy_task(reply));
        assert!(queue.try_pop().is_some());
        assert!(queue.try_pop().is_none());
        assert!(queue.is_empty());
    }
}
