//! The Dandelion worker node.
//!
//! A [`WorkerNode`] assembles the pieces of Figure 4: the registry, the
//! dispatcher, the compute and communication engine pools, and the control
//! plane that re-balances cores between them. It exposes the programmatic
//! API used by examples and benchmarks; the HTTP surface lives in
//! [`crate::frontend`].

use std::sync::atomic::Ordering;
use std::sync::Arc;

use dandelion_common::config::{EngineKind, WorkerConfig};
use dandelion_common::stats::LatencySummary;
use dandelion_common::{DandelionError, DandelionResult, DataSet, InvocationId};
use dandelion_dsl::CompositionGraph;
use dandelion_http::validate::ValidationPolicy;
use dandelion_isolation::{create_backend, FunctionArtifact, HardwarePlatform};
use dandelion_services::ServiceRegistry;

use crate::control::{ControlPlane, CoreAllocation};
use crate::dispatcher::{
    DispatchMetrics, Dispatcher, InvocationHandle, InvocationOutcome, InvocationSnapshot,
};
use crate::engine::{EngineExecutor, EnginePool};
use crate::registry::Registry;
use crate::task::TaskQueue;

/// Point-in-time statistics of a worker node.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerStats {
    /// Completed invocations.
    pub invocations: u64,
    /// Failed invocations.
    pub failures: u64,
    /// Total compute tasks executed (sandboxes created).
    pub compute_tasks: u64,
    /// Total communication tasks executed.
    pub communication_tasks: u64,
    /// Cores currently assigned to compute engines.
    pub compute_cores: usize,
    /// Cores currently assigned to communication engines.
    pub communication_cores: usize,
    /// Current compute queue depth.
    pub compute_queue_depth: usize,
    /// Current communication queue depth.
    pub communication_queue_depth: usize,
    /// End-to-end invocation latency summary.
    pub latency: LatencySummary,
}

/// A single Dandelion worker node.
pub struct WorkerNode {
    config: WorkerConfig,
    registry: Arc<Registry>,
    dispatcher: Dispatcher,
    compute_pool: Arc<EnginePool>,
    communication_pool: Arc<EnginePool>,
    control_plane: Option<ControlPlane>,
    metrics: Arc<DispatchMetrics>,
    /// Drain signal: while set, `submit` refuses new work so in-flight
    /// invocations can finish (rolling restarts, gateway-driven draining).
    draining: std::sync::atomic::AtomicBool,
}

impl WorkerNode {
    /// Starts a worker node with the given configuration and remote-service
    /// registry.
    pub fn start(config: WorkerConfig, services: ServiceRegistry) -> DandelionResult<Arc<Self>> {
        Self::start_with_control(config, services, true)
    }

    /// Starts a worker node, optionally without the background control plane
    /// (tests that assert exact core counts disable it).
    pub fn start_with_control(
        config: WorkerConfig,
        services: ServiceRegistry,
        enable_control_plane: bool,
    ) -> DandelionResult<Arc<Self>> {
        config.validate().map_err(DandelionError::Config)?;
        // Chaos runs configure fault injection through the environment; in
        // production no variable is set and every failpoint stays one
        // relaxed atomic load.
        dandelion_common::failpoint::init_from_env();
        let registry = Arc::new(Registry::new());
        let compute_queue = TaskQueue::new(EngineKind::Compute, config.queue_capacity);
        let communication_queue = TaskQueue::new(EngineKind::Communication, config.queue_capacity);

        let backend = create_backend(config.isolation, HardwarePlatform::X86Linux);
        let compute_pool = Arc::new(EnginePool::new(
            EngineExecutor::Compute { backend },
            compute_queue.clone(),
        ));
        compute_pool.resize(config.initial_compute_cores());

        let communication_pool = Arc::new(EnginePool::new(
            EngineExecutor::Communication {
                registry: Arc::new(services),
                policy: Arc::new(ValidationPolicy::default()),
            },
            communication_queue.clone(),
        ));
        communication_pool.resize(config.initial_communication_cores);

        let control_plane = enable_control_plane.then(|| {
            ControlPlane::start(
                config.controller,
                CoreAllocation::new(
                    config.initial_compute_cores(),
                    config.initial_communication_cores,
                ),
                Arc::clone(&compute_pool),
                Arc::clone(&communication_pool),
            )
        });

        let metrics = Arc::new(DispatchMetrics::default());
        let dispatcher = Dispatcher::with_metrics(
            Arc::clone(&registry),
            compute_queue,
            communication_queue,
            config.clone(),
            Arc::clone(&metrics),
        );

        Ok(Arc::new(Self {
            config,
            registry,
            dispatcher,
            compute_pool,
            communication_pool,
            control_plane,
            metrics,
            draining: std::sync::atomic::AtomicBool::new(false),
        }))
    }

    /// The worker's configuration.
    pub fn config(&self) -> &WorkerConfig {
        &self.config
    }

    /// The function/composition registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Registers a compute function.
    pub fn register_function(&self, artifact: FunctionArtifact) -> DandelionResult<()> {
        self.registry.register_function(artifact)
    }

    /// Registers a composition graph.
    pub fn register_composition(&self, graph: CompositionGraph) -> DandelionResult<()> {
        self.registry.register_composition(graph)
    }

    /// Compiles and registers a composition from DSL source text.
    pub fn register_composition_dsl(&self, source: &str) -> DandelionResult<String> {
        let graph = dandelion_dsl::compile(source)?;
        let name = graph.name.clone();
        self.registry.register_composition(graph)?;
        Ok(name)
    }

    /// Submits an invocation of a registered composition without blocking.
    ///
    /// The returned [`InvocationHandle`] tracks the invocation through the
    /// dispatcher's shared in-flight table: poll it with
    /// [`InvocationHandle::try_result`], block on it with
    /// [`InvocationHandle::wait`], or discard it and poll by id through
    /// [`WorkerNode::poll`]. Many invocations can be in flight per client.
    pub fn submit(
        &self,
        composition: &str,
        inputs: Vec<DataSet>,
    ) -> DandelionResult<InvocationHandle> {
        if self.is_draining() {
            return Err(DandelionError::ServiceError {
                status: 503,
                message: "node is draining and refuses new invocations".to_string(),
            });
        }
        let graph = self.registry.composition(composition)?;
        self.dispatcher.submit(graph, inputs)
    }

    /// Invokes a registered composition and waits for its outputs;
    /// equivalent to `submit(composition, inputs)?.wait(None)`.
    pub fn invoke(
        &self,
        composition: &str,
        inputs: Vec<DataSet>,
    ) -> DandelionResult<InvocationOutcome> {
        self.submit(composition, inputs)?.wait(None)
    }

    /// A non-consuming view of an invocation by id; `None` when the id is
    /// unknown or its retained result has expired.
    pub fn poll(&self, id: InvocationId) -> Option<InvocationSnapshot> {
        self.dispatcher.poll(id)
    }

    /// Number of invocations currently executing on this node.
    pub fn inflight(&self) -> usize {
        self.metrics.inflight.load(Ordering::SeqCst) as usize
    }

    /// The compute engine pool (supervision counters, chaos tests).
    pub fn compute_pool(&self) -> &Arc<EnginePool> {
        &self.compute_pool
    }

    /// The communication engine pool (supervision counters, chaos tests).
    pub fn communication_pool(&self) -> &Arc<EnginePool> {
        &self.communication_pool
    }

    /// The current compute/communication core split.
    pub fn core_allocation(&self) -> CoreAllocation {
        match &self.control_plane {
            Some(control) => control.allocation(),
            None => CoreAllocation::new(
                self.compute_pool.engine_count(),
                self.communication_pool.engine_count(),
            ),
        }
    }

    /// Snapshot of the worker's statistics.
    pub fn stats(&self) -> WorkerStats {
        let allocation = self.core_allocation();
        WorkerStats {
            invocations: self.metrics.invocations.load(Ordering::Relaxed),
            failures: self.metrics.failures.load(Ordering::Relaxed),
            compute_tasks: self.metrics.compute_tasks.load(Ordering::Relaxed),
            communication_tasks: self.metrics.communication_tasks.load(Ordering::Relaxed),
            compute_cores: allocation.compute,
            communication_cores: allocation.communication,
            compute_queue_depth: self.compute_pool.queue().len(),
            communication_queue_depth: self.communication_pool.queue().len(),
            latency: self.metrics.latency.lock().summary(),
        }
    }

    /// Waits until no invocation is in flight or `timeout` elapses; returns
    /// `true` when the node drained.
    ///
    /// This is the graceful half of shutting down a serving node: the
    /// network server stops admitting work, drains, and only then calls
    /// [`WorkerNode::shutdown`] — so accepted invocations finish instead of
    /// failing with [`DandelionError::Cancelled`].
    pub fn drain(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        self.wait_drained(deadline)
    }

    /// Raises the drain signal: [`WorkerNode::submit`] refuses further work
    /// with a retryable `503` while in-flight invocations run to completion.
    /// A cluster gateway sends this ahead of a rolling restart so the node
    /// empties before it is taken out of rotation.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Lowers the drain signal, returning the node to service.
    pub fn end_drain(&self) {
        self.draining.store(false, Ordering::SeqCst);
    }

    /// Whether the drain signal is raised.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn wait_drained(&self, deadline: std::time::Instant) -> bool {
        while self.inflight() > 0 {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        true
    }

    /// Stops the control plane, the dispatcher and every engine. Unsettled
    /// invocations fail with [`DandelionError::Cancelled`].
    pub fn shutdown(&self) {
        if let Some(control) = &self.control_plane {
            control.stop();
        }
        self.dispatcher.shutdown();
        self.compute_pool.shutdown();
        self.communication_pool.shutdown();
    }
}

impl Drop for WorkerNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Convenience constructor: a worker with the default registry of simulated
/// services used throughout the examples (auth, logs, object store, LLM,
/// SQL database), all with zero artificial latency so tests stay fast.
pub fn default_test_services() -> ServiceRegistry {
    use dandelion_services::auth::AuthService;
    use dandelion_services::database::SqlDatabaseService;
    use dandelion_services::latency::LatencyModel;
    use dandelion_services::llm::LlmService;
    use dandelion_services::logs::LogService;
    use dandelion_services::object_store::ObjectStore;

    let mut registry = ServiceRegistry::new();
    let auth = AuthService::with_latency(LatencyModel::zero());
    auth.grant(
        "demo-token",
        &[
            "http://logs-0.internal/logs",
            "http://logs-1.internal/logs",
            "http://logs-2.internal/logs",
        ],
    );
    registry.register("auth.internal", Arc::new(auth));
    for index in 0..3 {
        registry.register(
            &format!("logs-{index}.internal"),
            Arc::new(
                LogService::new(&format!("logs-{index}"), 50, index as u64)
                    .with_latency(LatencyModel::zero()),
            ),
        );
    }
    registry.register(
        "s3.internal",
        Arc::new(ObjectStore::with_latency(LatencyModel::zero())),
    );
    registry.register(
        "llm.internal",
        Arc::new(LlmService::with_latency(LatencyModel::zero())),
    );
    registry.register(
        "db.internal",
        Arc::new(SqlDatabaseService::with_latency(LatencyModel::zero()).with_demo_data()),
    );
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use dandelion_common::config::IsolationKind;
    use dandelion_isolation::FunctionCtx;

    fn small_config() -> WorkerConfig {
        WorkerConfig {
            total_cores: 4,
            initial_communication_cores: 1,
            isolation: IsolationKind::Native,
            ..WorkerConfig::default()
        }
    }

    fn identity_dsl() -> &'static str {
        "composition Identity(In) => Out { Copy(Data = all In) => (Out = Copied); }"
    }

    fn register_copy(worker: &WorkerNode) {
        worker
            .register_function(FunctionArtifact::new(
                "Copy",
                &["Copied"],
                |ctx: &mut FunctionCtx| {
                    let data = ctx.single_input("Data")?.data.as_slice().to_vec();
                    ctx.push_output_bytes("Copied", "copy", data)
                },
            ))
            .unwrap();
    }

    #[test]
    fn worker_runs_a_dsl_registered_composition() {
        let worker =
            WorkerNode::start_with_control(small_config(), default_test_services(), false).unwrap();
        register_copy(&worker);
        let name = worker.register_composition_dsl(identity_dsl()).unwrap();
        assert_eq!(name, "Identity");
        let outcome = worker
            .invoke("Identity", vec![DataSet::single("In", b"hello".to_vec())])
            .unwrap();
        assert_eq!(outcome.outputs[0].items[0].as_str(), Some("hello"));
        let stats = worker.stats();
        assert_eq!(stats.invocations, 1);
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.compute_tasks, 1);
        assert!(stats.latency.p50_us > 0.0);
        assert_eq!(stats.compute_cores, 3);
        assert_eq!(stats.communication_cores, 1);
        worker.shutdown();
    }

    #[test]
    fn invoking_unknown_composition_fails_and_counts() {
        let worker =
            WorkerNode::start_with_control(small_config(), default_test_services(), false).unwrap();
        assert!(worker.invoke("Missing", vec![]).is_err());
        // Unknown-composition lookups fail before dispatch and are not
        // counted as failed invocations.
        assert_eq!(worker.stats().invocations, 0);
        worker.shutdown();
    }

    #[test]
    fn invalid_config_is_rejected() {
        let bad = WorkerConfig {
            total_cores: 1,
            ..WorkerConfig::default()
        };
        assert!(WorkerNode::start(bad, ServiceRegistry::new()).is_err());
    }

    #[test]
    fn concurrent_invocations_share_the_engine_pools() {
        let worker =
            WorkerNode::start_with_control(small_config(), default_test_services(), false).unwrap();
        register_copy(&worker);
        worker.register_composition_dsl(identity_dsl()).unwrap();
        let workers: Vec<_> = (0..8)
            .map(|index| {
                let worker = Arc::clone(&worker);
                std::thread::spawn(move || {
                    worker
                        .invoke(
                            "Identity",
                            vec![DataSet::single("In", format!("m{index}").into_bytes())],
                        )
                        .unwrap()
                })
            })
            .collect();
        let mut seen: Vec<String> = workers
            .into_iter()
            .map(|handle| {
                let outcome = handle.join().unwrap();
                outcome.outputs[0].items[0].as_str().unwrap().to_string()
            })
            .collect();
        seen.sort();
        assert_eq!(seen.len(), 8);
        assert_eq!(worker.stats().invocations, 8);
        worker.shutdown();
    }

    #[test]
    fn parallel_submits_complete_with_per_invocation_outputs() {
        let worker =
            WorkerNode::start_with_control(small_config(), default_test_services(), false).unwrap();
        register_copy(&worker);
        worker.register_composition_dsl(identity_dsl()).unwrap();
        // N threads submit one invocation each; the handles settle with the
        // submitting thread's own payload.
        let submitters: Vec<_> = (0..12)
            .map(|index| {
                let worker = Arc::clone(&worker);
                std::thread::spawn(move || {
                    let handle = worker
                        .submit(
                            "Identity",
                            vec![DataSet::single("In", format!("s{index}").into_bytes())],
                        )
                        .unwrap();
                    let outcome = handle
                        .wait(Some(std::time::Duration::from_secs(10)))
                        .unwrap();
                    outcome.outputs[0].items[0].as_str().unwrap().to_string()
                })
            })
            .collect();
        let mut seen: Vec<String> = submitters
            .into_iter()
            .map(|handle| handle.join().unwrap())
            .collect();
        seen.sort();
        let expected: Vec<String> = {
            let mut e: Vec<String> = (0..12).map(|i| format!("s{i}")).collect();
            e.sort();
            e
        };
        assert_eq!(seen, expected);
        assert_eq!(worker.stats().invocations, 12);
        assert_eq!(worker.inflight(), 0);
        worker.shutdown();
    }

    #[test]
    fn polling_unknown_or_expired_ids_returns_none() {
        let config = WorkerConfig {
            completed_retention: 1,
            ..small_config()
        };
        let worker =
            WorkerNode::start_with_control(config, default_test_services(), false).unwrap();
        register_copy(&worker);
        worker.register_composition_dsl(identity_dsl()).unwrap();
        assert!(worker
            .poll(dandelion_common::InvocationId::from_raw(u64::MAX))
            .is_none());
        // Settle two invocations without consuming their results, so the
        // retained entries are subject to expiry alone.
        let settle = |payload: u8| {
            let handle = worker
                .submit("Identity", vec![DataSet::single("In", vec![payload])])
                .unwrap();
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while !handle.status().is_terminal() {
                assert!(std::time::Instant::now() < deadline);
                std::thread::yield_now();
            }
            handle.id()
        };
        let first_id = settle(1);
        assert!(worker.poll(first_id).is_some());
        let second_id = settle(2);
        // Retention is 1: the first invocation's retained entry has expired,
        // the second is still pollable.
        assert!(worker.poll(first_id).is_none());
        assert!(worker.poll(second_id).is_some());
        worker.shutdown();
    }

    #[test]
    fn failed_function_counts_as_failure() {
        let worker =
            WorkerNode::start_with_control(small_config(), default_test_services(), false).unwrap();
        worker
            .register_function(FunctionArtifact::new(
                "Copy",
                &["Copied"],
                |_ctx: &mut FunctionCtx| Err("nope".into()),
            ))
            .unwrap();
        worker.register_composition_dsl(identity_dsl()).unwrap();
        assert!(worker
            .invoke("Identity", vec![DataSet::single("In", vec![1])])
            .is_err());
        let stats = worker.stats();
        assert_eq!(stats.failures, 1);
        worker.shutdown();
    }
}
