//! Engine supervision under injected faults.
//!
//! These tests drive the failpoints threaded through the engine loop
//! (`engine/execute`, `engine/reply`, `engine/after-reply`) and assert the
//! supervision contract: a fault costs at most one engine thread, an
//! in-flight task is retried exactly once, results are delivered exactly
//! once, and the pool respawns replacements within its restart budget.
//!
//! The failpoint registry is process-global, so every test takes the
//! [`serial`] guard and clears the registry on entry and exit — the suite
//! is safe under the default parallel test runner.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use dandelion_common::config::{EngineKind, IsolationKind, WorkerConfig};
use dandelion_common::failpoint::{self, FailAction};
use dandelion_common::{DandelionError, DataSet, InvocationId};
use dandelion_core::dispatcher::Dispatcher;
use dandelion_core::engine::{EngineExecutor, EnginePool};
use dandelion_core::task::{Task, TaskPayload, TaskQueue};
use dandelion_core::Registry;
use dandelion_dsl::{CompositionBuilder, Distribution};
use dandelion_isolation::{create_backend, FunctionArtifact, FunctionCtx, HardwarePlatform};

/// Serializes the tests and guarantees a clean failpoint registry around
/// each one, even when an assertion fails mid-test.
fn serial() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    let guard = GUARD
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    failpoint::clear();
    guard
}

struct ClearOnDrop;

impl Drop for ClearOnDrop {
    fn drop(&mut self) {
        failpoint::clear();
    }
}

fn echo_artifact() -> Arc<FunctionArtifact> {
    Arc::new(FunctionArtifact::new(
        "echo",
        &["out"],
        |ctx: &mut FunctionCtx| {
            let data = ctx.single_input("in")?.data.as_slice().to_vec();
            ctx.push_output_bytes("out", "echoed", data)
        },
    ))
}

fn compute_pool() -> EnginePool {
    let queue = TaskQueue::new(EngineKind::Compute, 1024);
    let backend = create_backend(IsolationKind::Native, HardwarePlatform::Morello);
    EnginePool::new(EngineExecutor::Compute { backend }, queue)
}

fn task(reply: &crossbeam::channel::Sender<Vec<dandelion_core::task::TaskResult>>) -> Task {
    Task {
        invocation: InvocationId::from_raw(7),
        node: 0,
        instance: 0,
        payload: TaskPayload::Compute {
            artifact: echo_artifact(),
            inputs: vec![DataSet::single("in", b"payload".to_vec())],
            cold_binary: false,
            timeout: Duration::from_secs(5),
        },
        reply: reply.clone(),
    }
}

/// Spins until `predicate` holds or five seconds pass.
fn wait_until(what: &str, predicate: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !predicate() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn injected_execute_error_surfaces_as_engine_fault() {
    let _guard = serial();
    let _clear = ClearOnDrop;
    failpoint::configure("engine/execute", FailAction::Error, 1.0);
    let pool = compute_pool();
    pool.resize(1);
    let (reply, results) = unbounded();
    pool.queue().push(task(&reply));
    let batch = results.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(batch.len(), 1);
    match &batch[0].outcome {
        Err(DandelionError::EngineFault { reason }) => {
            assert!(reason.contains("engine/execute"), "reason: {reason}");
        }
        other => panic!("expected an engine fault, got {other:?}"),
    }
    // The fault was contained to the result: the engine thread survived.
    assert_eq!(pool.engine_deaths(), 0);
    assert_eq!(pool.engine_count(), 1);
    assert!(failpoint::hits("engine/execute") >= 1);
}

#[test]
fn panic_in_the_task_body_is_contained_to_a_result() {
    let _guard = serial();
    let _clear = ClearOnDrop;
    failpoint::configure("engine/execute", FailAction::Panic, 1.0);
    let pool = compute_pool();
    pool.resize(1);
    let (reply, results) = unbounded();
    pool.queue().push(task(&reply));
    let batch = results.recv_timeout(Duration::from_secs(5)).unwrap();
    match &batch[0].outcome {
        Err(DandelionError::EngineFault { reason }) => {
            assert!(reason.contains("panic"), "reason: {reason}");
        }
        other => panic!("expected an engine fault, got {other:?}"),
    }
    assert_eq!(
        pool.engine_deaths(),
        0,
        "a panic inside the task guard must not kill the engine thread"
    );
    assert_eq!(pool.engine_count(), 1);
}

#[test]
fn reply_panic_retries_once_then_fails_exactly_once() {
    let _guard = serial();
    let _clear = ClearOnDrop;
    failpoint::configure("engine/reply", FailAction::Panic, 1.0);
    let pool = compute_pool();
    pool.resize(1);
    let (reply, results) = unbounded();
    pool.queue().push(task(&reply));
    // First engine dies before delivering; the task is requeued once onto
    // the respawned engine, which also dies — the second death settles the
    // task with a structured fault instead of retrying forever.
    let batch = results.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(batch.len(), 1);
    match &batch[0].outcome {
        Err(DandelionError::EngineFault { reason }) => {
            assert!(reason.contains("died twice"), "reason: {reason}");
        }
        other => panic!("expected an engine fault, got {other:?}"),
    }
    // Exactly once: no second result may ever arrive for the task.
    assert!(
        results.recv_timeout(Duration::from_millis(200)).is_err(),
        "the task must settle exactly once"
    );
    assert_eq!(pool.engine_deaths(), 2);
    assert_eq!(pool.engine_respawns(), 2);
    wait_until("the pool to recover one engine", || {
        pool.engine_count() == 1
    });
}

#[test]
fn post_delivery_panic_respawns_without_duplicating_the_result() {
    let _guard = serial();
    let _clear = ClearOnDrop;
    failpoint::configure("engine/after-reply", FailAction::Panic, 1.0);
    let pool = compute_pool();
    pool.resize(1);
    let (reply, results) = unbounded();
    pool.queue().push(task(&reply));
    let batch = results.recv_timeout(Duration::from_secs(5)).unwrap();
    assert!(batch[0].outcome.is_ok(), "the result was already delivered");
    wait_until("the engine death to be recorded", || {
        pool.engine_deaths() == 1
    });
    wait_until("the respawn to restore the pool", || {
        pool.engine_count() == 1
    });
    assert_eq!(pool.engine_respawns(), 1);
    assert!(
        results.recv_timeout(Duration::from_millis(200)).is_err(),
        "a post-delivery death must not replay the task"
    );
}

#[test]
fn exhausted_restart_budget_stops_respawns_but_allows_manual_recovery() {
    let _guard = serial();
    let _clear = ClearOnDrop;
    failpoint::configure("engine/after-reply", FailAction::Panic, 1.0);
    let pool = compute_pool();
    pool.set_restart_budget(0);
    pool.resize(1);
    let (reply, results) = unbounded();
    pool.queue().push(task(&reply));
    assert!(results.recv_timeout(Duration::from_secs(5)).unwrap()[0]
        .outcome
        .is_ok());
    wait_until("the budget-exhausted pool to shrink", || {
        pool.engine_count() == 0
    });
    assert_eq!(pool.engine_deaths(), 1);
    assert_eq!(pool.engine_respawns(), 0);
    assert_eq!(pool.restart_budget_left(), 0);
    // The operator's escape hatch: clear the fault and resize the pool back
    // up; queued work flows again.
    failpoint::clear();
    pool.resize(2);
    pool.queue().push(task(&reply));
    assert!(results.recv_timeout(Duration::from_secs(5)).unwrap()[0]
        .outcome
        .is_ok());
}

// ----------------------------------------------------------------------
// Dispatcher-level supervision: faults flow through as structured errors
// and settle exactly once.
// ----------------------------------------------------------------------

struct Harness {
    dispatcher: Dispatcher,
    compute_pool: EnginePool,
    registry: Arc<Registry>,
}

fn harness(sleep_per_task: Duration) -> Harness {
    let registry = Arc::new(Registry::new());
    let compute_queue = TaskQueue::new(EngineKind::Compute, 1024);
    let communication_queue = TaskQueue::new(EngineKind::Communication, 1024);
    let backend = create_backend(IsolationKind::Native, HardwarePlatform::Morello);
    let compute_pool = EnginePool::new(EngineExecutor::Compute { backend }, compute_queue.clone());
    compute_pool.resize(1);
    registry
        .register_function(FunctionArtifact::new(
            "Copy",
            &["Copied"],
            move |ctx: &mut FunctionCtx| {
                if !sleep_per_task.is_zero() {
                    std::thread::sleep(sleep_per_task);
                }
                let data = ctx.single_input("Data")?.data.as_slice().to_vec();
                ctx.push_output_bytes("Copied", "copy", data)
            },
        ))
        .unwrap();
    let graph = CompositionBuilder::new("Identity")
        .input("In")
        .output("Out")
        .node("Copy", |node| {
            node.bind("Data", Distribution::All, "In")
                .publish("Out", "Copied")
        })
        .build()
        .unwrap();
    registry.register_composition(graph).unwrap();
    let dispatcher = Dispatcher::new(
        Arc::clone(&registry),
        compute_queue,
        communication_queue,
        WorkerConfig {
            total_cores: 2,
            initial_communication_cores: 0,
            ..WorkerConfig::default()
        },
    );
    Harness {
        dispatcher,
        compute_pool,
        registry,
    }
}

fn identity_graph(registry: &Registry) -> Arc<dandelion_dsl::CompositionGraph> {
    registry.composition("Identity").unwrap()
}

#[test]
fn engine_fault_fails_the_invocation_exactly_once() {
    let _guard = serial();
    let _clear = ClearOnDrop;
    failpoint::configure("engine/reply", FailAction::Panic, 1.0);
    let harness = harness(Duration::ZERO);
    let graph = identity_graph(&harness.registry);
    let handle = harness
        .dispatcher
        .submit(graph, vec![DataSet::single("In", b"x".to_vec())])
        .unwrap();
    let settled = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = unbounded();
    let counter = Arc::clone(&settled);
    handle.on_settle(move |outcome| {
        counter.fetch_add(1, Ordering::SeqCst);
        let _ = tx.send(outcome);
    });
    let outcome = rx.recv_timeout(Duration::from_secs(10)).unwrap();
    match outcome {
        Err(DandelionError::EngineFault { reason }) => {
            assert!(reason.contains("died twice"), "reason: {reason}");
        }
        other => panic!("expected an engine fault, got {other:?}"),
    }
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        settled.load(Ordering::SeqCst),
        1,
        "the settle callback must fire exactly once"
    );
    assert_eq!(harness.compute_pool.engine_deaths(), 2);
}

/// The cancellation race: `on_settle` firing concurrently with the
/// dispatcher's shutdown sweep must deliver exactly one of `Ok` /
/// `Err(Cancelled)` — never both, never neither. The shutdown is launched
/// at a sweep of offsets around the task's execution time to scan the
/// race window.
#[test]
fn cancellation_racing_completion_settles_exactly_once() {
    let _guard = serial();
    let _clear = ClearOnDrop;
    for step in 0..12u64 {
        let harness = harness(Duration::from_millis(2));
        let graph = identity_graph(&harness.registry);
        let handle = harness
            .dispatcher
            .submit(graph, vec![DataSet::single("In", b"race".to_vec())])
            .unwrap();
        let settled = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = unbounded();
        let counter = Arc::clone(&settled);
        handle.on_settle(move |outcome| {
            counter.fetch_add(1, Ordering::SeqCst);
            let _ = tx.send(outcome);
        });
        // Offset the shutdown across the ~2ms execution window.
        std::thread::sleep(Duration::from_micros(step * 400));
        harness.dispatcher.shutdown();
        let outcome = rx
            .recv_timeout(Duration::from_secs(5))
            .unwrap_or_else(|_| panic!("step {step}: the invocation never settled"));
        match &outcome {
            Ok(_) | Err(DandelionError::Cancelled) => {}
            other => panic!("step {step}: unexpected outcome {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(
            settled.load(Ordering::SeqCst),
            1,
            "step {step}: settle must fire exactly once"
        );
    }
}
