//! Abstract syntax tree for the composition DSL.

use std::fmt;

/// How items of a source data set are distributed over instances of the
/// consuming vertex (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// All items are given to a single instance.
    All,
    /// Each item is given to its own instance.
    Each,
    /// Items are grouped by their key; one instance per group.
    Key,
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Distribution::All => f.write_str("all"),
            Distribution::Each => f.write_str("each"),
            Distribution::Key => f.write_str("key"),
        }
    }
}

/// One input binding of a statement: `SetName = [optional] <dist> SourceName`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputBinding {
    /// The input-set name declared by the function.
    pub set: String,
    /// The composition-level data name the set is fed from.
    pub source: String,
    /// How the source items are distributed over instances.
    pub distribution: Distribution,
    /// Whether the function may run even if this set is empty (paper §4.4).
    pub optional: bool,
}

/// One output binding of a statement: `(PublishedName = OutputSetName)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputBinding {
    /// The composition-level name the output set is published under.
    pub published: String,
    /// The output-set name declared by the function.
    pub set: String,
}

/// A single statement: one vertex invocation in the DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Statement {
    /// The vertex name: a compute function, a communication function
    /// (e.g. `HTTP`), or another composition.
    pub vertex: String,
    /// Input bindings in declaration order.
    pub inputs: Vec<InputBinding>,
    /// Output bindings in declaration order.
    pub outputs: Vec<OutputBinding>,
    /// Source line of the statement, for error messages.
    pub line: usize,
}

/// A parsed composition before semantic validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompositionAst {
    /// The composition name.
    pub name: String,
    /// External input data names (provided by the client at invocation).
    pub inputs: Vec<String>,
    /// External output data names (returned to the client).
    pub outputs: Vec<String>,
    /// The statements, in source order.
    pub statements: Vec<Statement>,
}

impl CompositionAst {
    /// Pretty-prints the composition back into DSL syntax.
    ///
    /// The output is valid DSL that parses back to an equivalent AST, which
    /// the round-trip tests rely on.
    pub fn to_dsl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "composition {}({}) => {} {{\n",
            self.name,
            self.inputs.join(", "),
            self.outputs.join(", ")
        ));
        for statement in &self.statements {
            let inputs = statement
                .inputs
                .iter()
                .map(|binding| {
                    let optional = if binding.optional { "optional " } else { "" };
                    format!(
                        "{} = {}{} {}",
                        binding.set, optional, binding.distribution, binding.source
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            let outputs = statement
                .outputs
                .iter()
                .map(|binding| format!("{} = {}", binding.published, binding.set))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {}({}) => ({});\n",
                statement.vertex, inputs, outputs
            ));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_display() {
        assert_eq!(Distribution::All.to_string(), "all");
        assert_eq!(Distribution::Each.to_string(), "each");
        assert_eq!(Distribution::Key.to_string(), "key");
    }

    #[test]
    fn to_dsl_renders_statements() {
        let ast = CompositionAst {
            name: "Demo".into(),
            inputs: vec!["In".into()],
            outputs: vec!["Out".into()],
            statements: vec![Statement {
                vertex: "F".into(),
                inputs: vec![InputBinding {
                    set: "Data".into(),
                    source: "In".into(),
                    distribution: Distribution::Each,
                    optional: true,
                }],
                outputs: vec![OutputBinding {
                    published: "Out".into(),
                    set: "Result".into(),
                }],
                line: 2,
            }],
        };
        let text = ast.to_dsl();
        assert!(text.contains("composition Demo(In) => Out {"));
        assert!(text.contains("F(Data = optional each In) => (Out = Result);"));
    }
}
