//! Programmatic construction of composition graphs.
//!
//! Applications shipped with the repository (log processing, query plans,
//! Text2SQL, ...) construct their DAGs in code rather than by emitting DSL
//! text. The [`CompositionBuilder`] provides a small fluent API that produces
//! the same validated [`CompositionGraph`] the DSL compiler would.

use dandelion_common::DandelionResult;

use crate::ast::{CompositionAst, Distribution, InputBinding, OutputBinding, Statement};
use crate::graph::CompositionGraph;

/// Builder for a single statement (one DAG vertex).
#[derive(Debug, Clone)]
pub struct StatementBuilder {
    vertex: String,
    inputs: Vec<InputBinding>,
    outputs: Vec<OutputBinding>,
}

impl StatementBuilder {
    fn new(vertex: &str) -> Self {
        Self {
            vertex: vertex.to_string(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Binds the vertex input set `set` to the composition-level data name
    /// `source` with the given distribution.
    pub fn bind(mut self, set: &str, distribution: Distribution, source: &str) -> Self {
        self.inputs.push(InputBinding {
            set: set.to_string(),
            source: source.to_string(),
            distribution,
            optional: false,
        });
        self
    }

    /// Binds an input set that may be empty without blocking execution.
    pub fn bind_optional(mut self, set: &str, distribution: Distribution, source: &str) -> Self {
        self.inputs.push(InputBinding {
            set: set.to_string(),
            source: source.to_string(),
            distribution,
            optional: true,
        });
        self
    }

    /// Publishes the vertex output set `set` under the composition-level name
    /// `published`.
    pub fn publish(mut self, published: &str, set: &str) -> Self {
        self.outputs.push(OutputBinding {
            published: published.to_string(),
            set: set.to_string(),
        });
        self
    }
}

/// Fluent builder producing a validated [`CompositionGraph`].
#[derive(Debug, Clone, Default)]
pub struct CompositionBuilder {
    name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    statements: Vec<Statement>,
}

impl CompositionBuilder {
    /// Creates a builder for a composition with the given name.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            ..Self::default()
        }
    }

    /// Declares an external input data name.
    pub fn input(mut self, name: &str) -> Self {
        self.inputs.push(name.to_string());
        self
    }

    /// Declares an external output data name.
    pub fn output(mut self, name: &str) -> Self {
        self.outputs.push(name.to_string());
        self
    }

    /// Adds a vertex configured through the provided closure.
    pub fn node(
        mut self,
        vertex: &str,
        configure: impl FnOnce(StatementBuilder) -> StatementBuilder,
    ) -> Self {
        let statement = configure(StatementBuilder::new(vertex));
        self.statements.push(Statement {
            vertex: statement.vertex,
            inputs: statement.inputs,
            outputs: statement.outputs,
            line: self.statements.len() + 1,
        });
        self
    }

    /// Returns the AST built so far (mainly useful for golden tests).
    pub fn ast(&self) -> CompositionAst {
        CompositionAst {
            name: self.name.clone(),
            inputs: self.inputs.clone(),
            outputs: self.outputs.clone(),
            statements: self.statements.clone(),
        }
    }

    /// Validates and lowers the composition.
    pub fn build(&self) -> DandelionResult<CompositionGraph> {
        CompositionGraph::from_ast(&self.ast()).map_err(Into::into)
    }
}

/// Convenience constructor for the paper's log-processing example DAG
/// (Figure 3), used by tests, examples and benchmarks.
pub fn render_logs_composition() -> CompositionGraph {
    CompositionBuilder::new("RenderLogs")
        .input("AccessToken")
        .output("HTMLOutput")
        .node("Access", |node| {
            node.bind("AccessToken", Distribution::All, "AccessToken")
                .publish("AuthRequest", "HTTPRequest")
        })
        .node("HTTP", |node| {
            node.bind("Request", Distribution::Each, "AuthRequest")
                .publish("AuthResponse", "Response")
        })
        .node("FanOut", |node| {
            node.bind("HTTPResponse", Distribution::All, "AuthResponse")
                .publish("LogRequests", "HTTPRequests")
        })
        .node("HTTP", |node| {
            node.bind("Request", Distribution::Each, "LogRequests")
                .publish("LogResponses", "Response")
        })
        .node("Render", |node| {
            node.bind("HTTPResponses", Distribution::All, "LogResponses")
                .publish("HTMLOutput", "HTMLOutput")
        })
        .build()
        .expect("the log processing composition is statically valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_composition;

    #[test]
    fn builder_matches_dsl_compilation() {
        let from_builder = render_logs_composition();
        let source = r#"
            composition RenderLogs(AccessToken) => HTMLOutput {
                Access(AccessToken = all AccessToken) => (AuthRequest = HTTPRequest);
                HTTP(Request = each AuthRequest) => (AuthResponse = Response);
                FanOut(HTTPResponse = all AuthResponse) => (LogRequests = HTTPRequests);
                HTTP(Request = each LogRequests) => (LogResponses = Response);
                Render(HTTPResponses = all LogResponses) => (HTMLOutput = HTMLOutput);
            }
        "#;
        let from_dsl = CompositionGraph::from_ast(&parse_composition(source).unwrap()).unwrap();
        assert_eq!(from_builder, from_dsl);
    }

    #[test]
    fn builder_supports_optional_bindings() {
        let graph = CompositionBuilder::new("WithErrors")
            .input("In")
            .output("Out")
            .node("Work", |node| {
                node.bind("data", Distribution::Each, "In")
                    .publish("Good", "ok")
                    .publish("Bad", "errors")
            })
            .node("HandleErrors", |node| {
                node.bind_optional("errors", Distribution::All, "Bad")
                    .publish("Out", "report")
            })
            .build()
            .unwrap();
        assert!(graph.nodes[1].inputs[0].optional);
    }

    #[test]
    fn builder_surfaces_validation_errors() {
        let result = CompositionBuilder::new("Broken")
            .input("In")
            .output("Out")
            .node("F", |node| {
                node.bind("data", Distribution::All, "DoesNotExist")
                    .publish("Out", "o")
            })
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn ast_round_trips_through_dsl_text() {
        let builder = CompositionBuilder::new("RoundTrip")
            .input("A")
            .output("B")
            .node("F", |node| {
                node.bind("x", Distribution::Key, "A").publish("B", "out")
            });
        let text = builder.ast().to_dsl();
        let reparsed = parse_composition(&text).unwrap();
        assert_eq!(reparsed.name, "RoundTrip");
        assert_eq!(
            reparsed.statements[0].inputs[0].distribution,
            Distribution::Key
        );
    }
}
