//! Semantic validation and lowering of the AST to an executable DAG.
//!
//! The [`CompositionGraph`] is the structure the dispatcher actually
//! executes: statement order is replaced by explicit data dependencies, every
//! input binding is resolved to either an external input or the output set of
//! another node, and a topological order is precomputed.

use std::collections::{HashMap, HashSet};
use std::fmt;

use dandelion_common::DandelionError;

use crate::ast::{CompositionAst, Distribution};

/// Where a node's input set gets its data from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputSource {
    /// Data provided by the client when invoking the composition.
    External {
        /// The external input name.
        name: String,
    },
    /// An output set of another node in the same composition.
    Node {
        /// Index of the producing node in [`CompositionGraph::nodes`].
        node: usize,
        /// The producing node's output-set name.
        set: String,
    },
}

/// A resolved input binding of a graph node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInput {
    /// The input-set name as declared by the vertex.
    pub set: String,
    /// Where the data comes from.
    pub source: InputSource,
    /// How items are distributed over instances.
    pub distribution: Distribution,
    /// Whether the vertex runs even when the set is empty.
    pub optional: bool,
}

/// An output binding of a graph node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeOutput {
    /// The output-set name as declared by the vertex.
    pub set: String,
    /// The composition-level name the set is published under.
    pub published: String,
}

/// One vertex of the executable DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphNode {
    /// The node's position in [`CompositionGraph::nodes`].
    pub index: usize,
    /// The vertex name: a registered compute function, communication
    /// function, or nested composition. Resolution happens at registration.
    pub vertex: String,
    /// Resolved input bindings.
    pub inputs: Vec<NodeInput>,
    /// Output bindings.
    pub outputs: Vec<NodeOutput>,
}

impl GraphNode {
    /// Indices of nodes this node consumes data from.
    pub fn dependencies(&self) -> Vec<usize> {
        let mut deps: Vec<usize> = self
            .inputs
            .iter()
            .filter_map(|input| match &input.source {
                InputSource::Node { node, .. } => Some(*node),
                InputSource::External { .. } => None,
            })
            .collect();
        deps.sort_unstable();
        deps.dedup();
        deps
    }

    /// Returns `true` if every input comes from external composition inputs.
    pub fn is_source(&self) -> bool {
        self.inputs
            .iter()
            .all(|input| matches!(input.source, InputSource::External { .. }))
    }
}

/// Binding of an external composition output to the node/set that produces it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExternalOutput {
    /// The composition output name returned to the client.
    pub name: String,
    /// The producing node index.
    pub node: usize,
    /// The producing node's output-set name.
    pub set: String,
}

/// The validated, executable composition DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompositionGraph {
    /// The composition name.
    pub name: String,
    /// External input names in declaration order.
    pub external_inputs: Vec<String>,
    /// External output names in declaration order.
    pub external_outputs: Vec<String>,
    /// Resolution of external outputs to producing nodes.
    pub output_bindings: Vec<ExternalOutput>,
    /// The DAG nodes in statement order.
    pub nodes: Vec<GraphNode>,
    /// A topological order of node indices (dependencies before dependents).
    pub topological_order: Vec<usize>,
}

/// Errors found while validating a composition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Two external inputs or outputs share a name.
    DuplicateExternalName(String),
    /// Two statements publish the same name, or a published name shadows an
    /// external input.
    DuplicatePublishedName(String),
    /// Two input bindings of a statement use the same set name.
    DuplicateInputSet {
        /// The vertex with the conflict.
        vertex: String,
        /// The duplicated set name.
        set: String,
    },
    /// An input source does not match any external input or published name.
    UnresolvedSource {
        /// The vertex consuming the data.
        vertex: String,
        /// The unresolved source name.
        source: String,
    },
    /// A declared composition output is never published by any statement.
    UnboundOutput(String),
    /// The data dependencies contain a cycle.
    Cycle(Vec<String>),
    /// The composition has no statements.
    Empty,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::DuplicateExternalName(name) => {
                write!(f, "duplicate external input/output name `{name}`")
            }
            ValidationError::DuplicatePublishedName(name) => {
                write!(f, "data name `{name}` is produced more than once")
            }
            ValidationError::DuplicateInputSet { vertex, set } => {
                write!(f, "vertex `{vertex}` binds input set `{set}` twice")
            }
            ValidationError::UnresolvedSource { vertex, source } => write!(
                f,
                "vertex `{vertex}` reads `{source}`, which is neither a composition input nor produced by any statement"
            ),
            ValidationError::UnboundOutput(name) => {
                write!(f, "composition output `{name}` is never produced")
            }
            ValidationError::Cycle(names) => {
                write!(f, "data dependencies form a cycle involving: {}", names.join(" -> "))
            }
            ValidationError::Empty => f.write_str("composition has no statements"),
        }
    }
}

impl std::error::Error for ValidationError {}

impl From<ValidationError> for DandelionError {
    fn from(err: ValidationError) -> Self {
        DandelionError::Validation(err.to_string())
    }
}

impl CompositionGraph {
    /// Validates an AST and lowers it into an executable graph.
    pub fn from_ast(ast: &CompositionAst) -> Result<Self, ValidationError> {
        if ast.statements.is_empty() {
            return Err(ValidationError::Empty);
        }
        // External names must be unique.
        let mut seen = HashSet::new();
        for name in ast.inputs.iter().chain(ast.outputs.iter()) {
            if !seen.insert(name.clone()) {
                return Err(ValidationError::DuplicateExternalName(name.clone()));
            }
        }

        // Map every published name to (node index, output-set name).
        let mut published: HashMap<String, (usize, String)> = HashMap::new();
        for (index, statement) in ast.statements.iter().enumerate() {
            for output in &statement.outputs {
                if ast.inputs.contains(&output.published)
                    || published
                        .insert(output.published.clone(), (index, output.set.clone()))
                        .is_some()
                {
                    return Err(ValidationError::DuplicatePublishedName(
                        output.published.clone(),
                    ));
                }
            }
        }

        // Resolve statement inputs.
        let mut nodes = Vec::with_capacity(ast.statements.len());
        for (index, statement) in ast.statements.iter().enumerate() {
            let mut set_names = HashSet::new();
            let mut inputs = Vec::with_capacity(statement.inputs.len());
            for binding in &statement.inputs {
                if !set_names.insert(binding.set.clone()) {
                    return Err(ValidationError::DuplicateInputSet {
                        vertex: statement.vertex.clone(),
                        set: binding.set.clone(),
                    });
                }
                let source = if ast.inputs.contains(&binding.source) {
                    InputSource::External {
                        name: binding.source.clone(),
                    }
                } else if let Some((node, set)) = published.get(&binding.source) {
                    InputSource::Node {
                        node: *node,
                        set: set.clone(),
                    }
                } else {
                    return Err(ValidationError::UnresolvedSource {
                        vertex: statement.vertex.clone(),
                        source: binding.source.clone(),
                    });
                };
                inputs.push(NodeInput {
                    set: binding.set.clone(),
                    source,
                    distribution: binding.distribution,
                    optional: binding.optional,
                });
            }
            let outputs = statement
                .outputs
                .iter()
                .map(|output| NodeOutput {
                    set: output.set.clone(),
                    published: output.published.clone(),
                })
                .collect();
            nodes.push(GraphNode {
                index,
                vertex: statement.vertex.clone(),
                inputs,
                outputs,
            });
        }

        // Resolve external outputs.
        let mut output_bindings = Vec::with_capacity(ast.outputs.len());
        for name in &ast.outputs {
            match published.get(name) {
                Some((node, set)) => output_bindings.push(ExternalOutput {
                    name: name.clone(),
                    node: *node,
                    set: set.clone(),
                }),
                None => return Err(ValidationError::UnboundOutput(name.clone())),
            }
        }

        let topological_order = topological_sort(&nodes, &ast.statements_names())?;

        Ok(CompositionGraph {
            name: ast.name.clone(),
            external_inputs: ast.inputs.clone(),
            external_outputs: ast.outputs.clone(),
            output_bindings,
            nodes,
            topological_order,
        })
    }

    /// Returns the nodes that consume the given node's output set, together
    /// with the consuming input binding.
    pub fn consumers_of(&self, node: usize, set: &str) -> Vec<(usize, &NodeInput)> {
        let mut consumers = Vec::new();
        for candidate in &self.nodes {
            for input in &candidate.inputs {
                if let InputSource::Node {
                    node: source_node,
                    set: source_set,
                } = &input.source
                {
                    if *source_node == node && source_set == set {
                        consumers.push((candidate.index, input));
                    }
                }
            }
        }
        consumers
    }

    /// Returns the distinct vertex names referenced by this composition.
    pub fn referenced_vertices(&self) -> Vec<String> {
        let mut names: Vec<String> = self.nodes.iter().map(|node| node.vertex.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// The number of nodes in the DAG.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the composition has no nodes (never true for
    /// validated graphs).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

impl CompositionAst {
    fn statements_names(&self) -> Vec<String> {
        self.statements
            .iter()
            .map(|statement| statement.vertex.clone())
            .collect()
    }
}

fn topological_sort(nodes: &[GraphNode], names: &[String]) -> Result<Vec<usize>, ValidationError> {
    let mut in_degree = vec![0usize; nodes.len()];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for node in nodes {
        for dep in node.dependencies() {
            in_degree[node.index] += 1;
            dependents[dep].push(node.index);
        }
    }
    // Kahn's algorithm with a deterministic (index-ordered) ready queue.
    let mut ready: Vec<usize> = (0..nodes.len()).filter(|i| in_degree[*i] == 0).collect();
    ready.sort_unstable();
    let mut order = Vec::with_capacity(nodes.len());
    while let Some(next) = ready.first().copied() {
        ready.remove(0);
        order.push(next);
        for &dependent in &dependents[next] {
            in_degree[dependent] -= 1;
            if in_degree[dependent] == 0 {
                let position = ready.binary_search(&dependent).unwrap_or_else(|e| e);
                ready.insert(position, dependent);
            }
        }
    }
    if order.len() != nodes.len() {
        let cycle: Vec<String> = (0..nodes.len())
            .filter(|i| !order.contains(i))
            .map(|i| names[i].clone())
            .collect();
        return Err(ValidationError::Cycle(cycle));
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_composition;

    fn graph(source: &str) -> Result<CompositionGraph, ValidationError> {
        CompositionGraph::from_ast(&parse_composition(source).unwrap())
    }

    const LOGS: &str = r#"
        composition RenderLogs(AccessToken) => HTMLOutput {
            Access(AccessToken = all AccessToken) => (AuthRequest = HTTPRequest);
            HTTP(Request = each AuthRequest) => (AuthResponse = Response);
            FanOut(HTTPResponse = all AuthResponse) => (LogRequests = HTTPRequests);
            HTTP(Request = each LogRequests) => (LogResponses = Response);
            Render(HTTPResponses = all LogResponses) => (HTMLOutput = HTMLOutput);
        }
    "#;

    #[test]
    fn lowers_the_paper_example() {
        let graph = graph(LOGS).unwrap();
        assert_eq!(graph.len(), 5);
        assert!(!graph.is_empty());
        // Node 1 (first HTTP) depends on node 0 (Access).
        assert_eq!(graph.nodes[1].dependencies(), vec![0]);
        assert!(graph.nodes[0].is_source());
        assert!(!graph.nodes[1].is_source());
        // External output binds to the Render node's HTMLOutput set.
        assert_eq!(graph.output_bindings[0].node, 4);
        assert_eq!(graph.output_bindings[0].set, "HTMLOutput");
        // Consumers: Access's HTTPRequest output feeds node 1.
        let consumers = graph.consumers_of(0, "HTTPRequest");
        assert_eq!(consumers.len(), 1);
        assert_eq!(consumers[0].0, 1);
        assert_eq!(consumers[0].1.distribution, Distribution::Each);
        assert_eq!(
            graph.referenced_vertices(),
            vec!["Access", "FanOut", "HTTP", "Render"]
        );
    }

    #[test]
    fn statement_order_does_not_matter() {
        let shuffled = r#"
            composition RenderLogs(AccessToken) => HTMLOutput {
                Render(HTTPResponses = all LogResponses) => (HTMLOutput = HTMLOutput);
                HTTP(Request = each LogRequests) => (LogResponses = Response);
                FanOut(HTTPResponse = all AuthResponse) => (LogRequests = HTTPRequests);
                HTTP(Request = each AuthRequest) => (AuthResponse = Response);
                Access(AccessToken = all AccessToken) => (AuthRequest = HTTPRequest);
            }
        "#;
        let graph = graph(shuffled).unwrap();
        // Topological order must start with the Access statement (index 4).
        assert_eq!(graph.topological_order.first(), Some(&4));
        assert_eq!(graph.topological_order.last(), Some(&0));
    }

    #[test]
    fn detects_unresolved_sources() {
        let err = graph("composition X(A) => B { F(a = all Missing) => (B = Out); }").unwrap_err();
        assert!(matches!(err, ValidationError::UnresolvedSource { .. }));
        assert!(err.to_string().contains("Missing"));
    }

    #[test]
    fn detects_unbound_outputs() {
        let err = graph("composition X(A) => B, C { F(a = all A) => (B = Out); }").unwrap_err();
        assert_eq!(err, ValidationError::UnboundOutput("C".to_string()));
    }

    #[test]
    fn detects_duplicate_published_names() {
        let err = graph(
            "composition X(A) => B { F(a = all A) => (B = Out); G(a = all A) => (B = Out); }",
        )
        .unwrap_err();
        assert!(matches!(err, ValidationError::DuplicatePublishedName(_)));
        // Publishing a name that shadows an external input is also rejected.
        let err =
            graph("composition X(A) => B { F(a = all A) => (A = Out, B = Out2); }").unwrap_err();
        assert!(matches!(err, ValidationError::DuplicatePublishedName(_)));
    }

    #[test]
    fn detects_duplicate_external_names_and_input_sets() {
        let err = graph("composition X(A, A) => B { F(a = all A) => (B = Out); }").unwrap_err();
        assert!(matches!(err, ValidationError::DuplicateExternalName(_)));
        let err =
            graph("composition X(A) => B { F(a = all A, a = each A) => (B = Out); }").unwrap_err();
        assert!(matches!(err, ValidationError::DuplicateInputSet { .. }));
    }

    #[test]
    fn detects_cycles() {
        let err = graph(
            r#"composition X(A) => Out {
                F(a = all A, loopback = all H_out) => (F_out = O);
                G(b = all F_out) => (G_out = O);
                H(c = all G_out) => (H_out = O);
                Sink(d = all G_out) => (Out = O);
            }"#,
        )
        .unwrap_err();
        assert!(matches!(err, ValidationError::Cycle(_)));
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn rejects_empty_composition() {
        let err = graph("composition X(A) => B { }").unwrap_err();
        assert_eq!(err, ValidationError::Empty);
    }

    #[test]
    fn diamond_dependencies_have_valid_topological_order() {
        let graph = graph(
            r#"composition Diamond(In) => Out {
                Split(data = all In) => (Left = L, Right = R);
                ProcessL(data = each Left) => (LeftDone = O);
                ProcessR(data = each Right) => (RightDone = O);
                Join(l = all LeftDone, r = all RightDone) => (Out = O);
            }"#,
        )
        .unwrap();
        let position = |index: usize| {
            graph
                .topological_order
                .iter()
                .position(|node| *node == index)
                .unwrap()
        };
        assert!(position(0) < position(1));
        assert!(position(0) < position(2));
        assert!(position(1) < position(3));
        assert!(position(2) < position(3));
    }
}
