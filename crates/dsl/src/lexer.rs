//! Tokenizer for the composition DSL.

use dandelion_common::DandelionError;

/// The kinds of tokens produced by the lexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// The `composition` keyword.
    Composition,
    /// The `all` distribution keyword.
    All,
    /// The `each` distribution keyword.
    Each,
    /// The `key` distribution keyword.
    Key,
    /// The `optional` input-set modifier.
    Optional,
    /// An identifier (function, set or data name).
    Identifier(String),
    /// `(`
    LeftParen,
    /// `)`
    RightParen,
    /// `{`
    LeftBrace,
    /// `}`
    RightBrace,
    /// `=`
    Equals,
    /// `=>`
    Arrow,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// End of input marker.
    Eof,
}

impl TokenKind {
    /// Human readable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Composition => "`composition`".to_string(),
            TokenKind::All => "`all`".to_string(),
            TokenKind::Each => "`each`".to_string(),
            TokenKind::Key => "`key`".to_string(),
            TokenKind::Optional => "`optional`".to_string(),
            TokenKind::Identifier(name) => format!("identifier `{name}`"),
            TokenKind::LeftParen => "`(`".to_string(),
            TokenKind::RightParen => "`)`".to_string(),
            TokenKind::LeftBrace => "`{`".to_string(),
            TokenKind::RightBrace => "`}`".to_string(),
            TokenKind::Equals => "`=`".to_string(),
            TokenKind::Arrow => "`=>`".to_string(),
            TokenKind::Comma => "`,`".to_string(),
            TokenKind::Semicolon => "`;`".to_string(),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

/// A token with its source location (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Line where the token starts.
    pub line: usize,
    /// Column where the token starts.
    pub column: usize,
}

fn is_identifier_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_identifier_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.'
}

/// Tokenizes DSL source text.
///
/// `//` and `#` introduce comments that run to end of line. Whitespace is
/// insignificant. The returned vector always ends with an [`TokenKind::Eof`]
/// token carrying the final position.
pub fn lex(source: &str) -> Result<Vec<Token>, DandelionError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut column = 1usize;
    let mut chars = source.chars().peekable();

    macro_rules! push {
        ($kind:expr, $start_col:expr) => {
            tokens.push(Token {
                kind: $kind,
                line,
                column: $start_col,
            })
        };
    }

    while let Some(&c) = chars.peek() {
        let start_col = column;
        match c {
            '\n' => {
                chars.next();
                line += 1;
                column = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                column += 1;
            }
            '/' | '#' => {
                // Comments: `//` or `#` to end of line. A single `/` is an error.
                chars.next();
                column += 1;
                if c == '/' {
                    match chars.peek() {
                        Some('/') => {}
                        _ => {
                            return Err(DandelionError::Parse {
                                line,
                                column: start_col,
                                message: "unexpected `/` (did you mean `//` comment?)".to_string(),
                            })
                        }
                    }
                }
                for consumed in chars.by_ref() {
                    if consumed == '\n' {
                        line += 1;
                        column = 1;
                        break;
                    }
                }
            }
            '(' => {
                chars.next();
                column += 1;
                push!(TokenKind::LeftParen, start_col);
            }
            ')' => {
                chars.next();
                column += 1;
                push!(TokenKind::RightParen, start_col);
            }
            '{' => {
                chars.next();
                column += 1;
                push!(TokenKind::LeftBrace, start_col);
            }
            '}' => {
                chars.next();
                column += 1;
                push!(TokenKind::RightBrace, start_col);
            }
            ',' => {
                chars.next();
                column += 1;
                push!(TokenKind::Comma, start_col);
            }
            ';' => {
                chars.next();
                column += 1;
                push!(TokenKind::Semicolon, start_col);
            }
            '=' => {
                chars.next();
                column += 1;
                if chars.peek() == Some(&'>') {
                    chars.next();
                    column += 1;
                    push!(TokenKind::Arrow, start_col);
                } else {
                    push!(TokenKind::Equals, start_col);
                }
            }
            c if is_identifier_start(c) => {
                let mut word = String::new();
                while let Some(&next) = chars.peek() {
                    if is_identifier_continue(next) {
                        word.push(next);
                        chars.next();
                        column += 1;
                    } else {
                        break;
                    }
                }
                let kind = match word.as_str() {
                    "composition" => TokenKind::Composition,
                    "all" => TokenKind::All,
                    "each" => TokenKind::Each,
                    "key" => TokenKind::Key,
                    "optional" => TokenKind::Optional,
                    _ => TokenKind::Identifier(word),
                };
                push!(kind, start_col);
            }
            other => {
                return Err(DandelionError::Parse {
                    line,
                    column: start_col,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        column,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        lex(source).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_punctuation() {
        let tokens = kinds("composition F(A) => B { X(a = all A) => (B = Out); }");
        assert_eq!(tokens[0], TokenKind::Composition);
        assert!(tokens.contains(&TokenKind::Arrow));
        assert!(tokens.contains(&TokenKind::All));
        assert!(tokens.contains(&TokenKind::Semicolon));
        assert_eq!(*tokens.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn distinguishes_equals_from_arrow() {
        assert_eq!(
            kinds("= =>"),
            vec![TokenKind::Equals, TokenKind::Arrow, TokenKind::Eof]
        );
    }

    #[test]
    fn identifiers_allow_dots_dashes_underscores() {
        let tokens = kinds("my_func-v2.0");
        assert_eq!(tokens[0], TokenKind::Identifier("my_func-v2.0".to_string()));
    }

    #[test]
    fn comments_are_skipped() {
        let tokens = kinds("// a comment line\nA # trailing\nB");
        assert_eq!(
            tokens,
            vec![
                TokenKind::Identifier("A".into()),
                TokenKind::Identifier("B".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn tracks_line_and_column() {
        let tokens = lex("A\n  B").unwrap();
        assert_eq!((tokens[0].line, tokens[0].column), (1, 1));
        assert_eq!((tokens[1].line, tokens[1].column), (2, 3));
    }

    #[test]
    fn rejects_unexpected_characters() {
        let err = lex("A @ B").unwrap_err();
        match err {
            DandelionError::Parse { column, .. } => assert_eq!(column, 3),
            other => panic!("expected parse error, got {other}"),
        }
        assert!(lex("A / B").is_err());
    }

    #[test]
    fn keyword_prefixed_identifiers_are_identifiers() {
        let tokens = kinds("allocate each_one keyring");
        assert_eq!(
            tokens,
            vec![
                TokenKind::Identifier("allocate".into()),
                TokenKind::Identifier("each_one".into()),
                TokenKind::Identifier("keyring".into()),
                TokenKind::Eof
            ]
        );
    }
}
