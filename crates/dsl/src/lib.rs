//! The Dandelion composition DSL.
//!
//! A Dandelion application ("composition") is a DAG whose vertices are pure
//! compute functions, platform communication functions, or other
//! compositions, and whose edges describe which output set of one vertex
//! feeds which input set of another (paper §4.1). Users describe the DAG with
//! a small domain-specific language; Listing 2 of the paper shows the log
//! processing application:
//!
//! ```text
//! composition RenderLogs(AccessToken) => HTMLOutput {
//!     Access(AccessToken = all AccessToken) => (AuthRequest = HTTPRequest);
//!     HTTP(Request = each AuthRequest)      => (AuthResponse = Response);
//!     FanOut(HTTPResponse = all AuthResponse) => (LogRequests = HTTPRequests);
//!     HTTP(Request = each LogRequests)      => (LogResponses = Response);
//!     Render(HTTPResponses = all LogResponses) => (HTMLOutput = HTMLOutput);
//! }
//! ```
//!
//! * Left of `=` inside the parentheses is the *function's* input-set name,
//!   right of the distribution keyword is the *composition-level* data name
//!   it is fed from.
//! * The distribution keyword is one of `all` (all items to one instance),
//!   `each` (one instance per item) or `key` (one instance per key group).
//!   An input set may additionally be marked `optional`, in which case the
//!   function runs even if that set is empty (used for failure handling,
//!   paper §4.4).
//! * Right of `=>` each `(published = OutputSet)` pair publishes a function
//!   output set under a composition-level name.
//!
//! This crate provides:
//!
//! * [`lex`] / [`parse_program`] / [`parse_composition`] — text to AST,
//! * [`ast`] — the AST types,
//! * [`graph`] — semantic validation and lowering to [`graph::CompositionGraph`],
//!   the executable DAG the dispatcher consumes,
//! * [`builder`] — a programmatic builder for constructing graphs without DSL
//!   text.

pub mod ast;
pub mod builder;
pub mod graph;
mod lexer;
mod parser;

pub use ast::{CompositionAst, Distribution, InputBinding, OutputBinding, Statement};
pub use builder::CompositionBuilder;
pub use graph::{CompositionGraph, GraphNode, InputSource, ValidationError};
pub use lexer::{lex, Token, TokenKind};
pub use parser::{parse_composition, parse_program};

use dandelion_common::DandelionResult;

/// Parses and validates a single composition from DSL text.
///
/// This is the convenience entry point used by the platform frontend when a
/// user registers a composition.
pub fn compile(source: &str) -> DandelionResult<CompositionGraph> {
    let ast = parse_composition(source)?;
    CompositionGraph::from_ast(&ast).map_err(Into::into)
}

/// Parses and validates every composition in a DSL program.
pub fn compile_program(source: &str) -> DandelionResult<Vec<CompositionGraph>> {
    let asts = parse_program(source)?;
    asts.iter()
        .map(|ast| CompositionGraph::from_ast(ast).map_err(Into::into))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example from the paper (Listing 2).
    pub const RENDER_LOGS: &str = r#"
        composition RenderLogs(AccessToken) => HTMLOutput {
            Access(AccessToken = all AccessToken) => (AuthRequest = HTTPRequest);
            HTTP(Request = each AuthRequest) => (AuthResponse = Response);
            FanOut(HTTPResponse = all AuthResponse) => (LogRequests = HTTPRequests);
            HTTP(Request = each LogRequests) => (LogResponses = Response);
            Render(HTTPResponses = all LogResponses) => (HTMLOutput = HTMLOutput);
        }
    "#;

    #[test]
    fn compiles_the_paper_example() {
        let graph = compile(RENDER_LOGS).unwrap();
        assert_eq!(graph.name, "RenderLogs");
        assert_eq!(graph.nodes.len(), 5);
        assert_eq!(graph.external_inputs, vec!["AccessToken"]);
        assert_eq!(graph.external_outputs, vec!["HTMLOutput"]);
        // The second and fourth nodes are the HTTP communication function.
        assert_eq!(graph.nodes[1].vertex, "HTTP");
        assert_eq!(graph.nodes[3].vertex, "HTTP");
        // Topological order is simply 0..n for this linear pipeline.
        assert_eq!(graph.topological_order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn compile_program_handles_multiple_compositions() {
        let source = format!(
            "{RENDER_LOGS}\ncomposition Identity(In) => Out {{ Copy(Data = all In) => (Out = Data); }}"
        );
        let graphs = compile_program(&source).unwrap();
        assert_eq!(graphs.len(), 2);
        assert_eq!(graphs[1].name, "Identity");
    }

    #[test]
    fn compile_reports_parse_errors_with_location() {
        let err = compile("composition Broken(X => Y { }").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("parse error"), "got: {text}");
    }
}
