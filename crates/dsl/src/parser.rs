//! Recursive-descent parser for the composition DSL.

use dandelion_common::{DandelionError, DandelionResult};

use crate::ast::{CompositionAst, Distribution, InputBinding, OutputBinding, Statement};
use crate::lexer::{lex, Token, TokenKind};

struct Parser {
    tokens: Vec<Token>,
    position: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Self {
            tokens,
            position: 0,
        }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.position.min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let token = self.peek().clone();
        if self.position < self.tokens.len() - 1 {
            self.position += 1;
        }
        token
    }

    fn error(&self, message: impl Into<String>) -> DandelionError {
        let token = self.peek();
        DandelionError::Parse {
            line: token.line,
            column: token.column,
            message: message.into(),
        }
    }

    fn expect(&mut self, expected: TokenKind) -> DandelionResult<Token> {
        if self.peek().kind == expected {
            Ok(self.advance())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                expected.describe(),
                self.peek().kind.describe()
            )))
        }
    }

    fn expect_identifier(&mut self, what: &str) -> DandelionResult<String> {
        match self.peek().kind.clone() {
            TokenKind::Identifier(name) => {
                self.advance();
                Ok(name)
            }
            other => Err(self.error(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn parse_name_list(&mut self, what: &str) -> DandelionResult<Vec<String>> {
        let mut names = vec![self.expect_identifier(what)?];
        while self.peek().kind == TokenKind::Comma {
            self.advance();
            names.push(self.expect_identifier(what)?);
        }
        Ok(names)
    }

    fn parse_composition(&mut self) -> DandelionResult<CompositionAst> {
        self.expect(TokenKind::Composition)?;
        let name = self.expect_identifier("composition name")?;
        self.expect(TokenKind::LeftParen)?;
        let inputs = if self.peek().kind == TokenKind::RightParen {
            Vec::new()
        } else {
            self.parse_name_list("input name")?
        };
        self.expect(TokenKind::RightParen)?;
        self.expect(TokenKind::Arrow)?;
        let outputs = self.parse_name_list("output name")?;
        self.expect(TokenKind::LeftBrace)?;
        let mut statements = Vec::new();
        while self.peek().kind != TokenKind::RightBrace {
            if self.at_eof() {
                return Err(self.error("unexpected end of input inside composition body"));
            }
            statements.push(self.parse_statement()?);
        }
        self.expect(TokenKind::RightBrace)?;
        Ok(CompositionAst {
            name,
            inputs,
            outputs,
            statements,
        })
    }

    fn parse_statement(&mut self) -> DandelionResult<Statement> {
        let line = self.peek().line;
        let vertex = self.expect_identifier("function or composition name")?;
        self.expect(TokenKind::LeftParen)?;
        let mut inputs = Vec::new();
        if self.peek().kind != TokenKind::RightParen {
            inputs.push(self.parse_input_binding()?);
            while self.peek().kind == TokenKind::Comma {
                self.advance();
                inputs.push(self.parse_input_binding()?);
            }
        }
        self.expect(TokenKind::RightParen)?;
        self.expect(TokenKind::Arrow)?;
        self.expect(TokenKind::LeftParen)?;
        let mut outputs = vec![self.parse_output_binding()?];
        while self.peek().kind == TokenKind::Comma {
            self.advance();
            outputs.push(self.parse_output_binding()?);
        }
        self.expect(TokenKind::RightParen)?;
        self.expect(TokenKind::Semicolon)?;
        Ok(Statement {
            vertex,
            inputs,
            outputs,
            line,
        })
    }

    fn parse_input_binding(&mut self) -> DandelionResult<InputBinding> {
        let set = self.expect_identifier("input set name")?;
        self.expect(TokenKind::Equals)?;
        let optional = if self.peek().kind == TokenKind::Optional {
            self.advance();
            true
        } else {
            false
        };
        let distribution = match self.peek().kind {
            TokenKind::All => {
                self.advance();
                Distribution::All
            }
            TokenKind::Each => {
                self.advance();
                Distribution::Each
            }
            TokenKind::Key => {
                self.advance();
                Distribution::Key
            }
            _ => {
                return Err(self.error(format!(
                    "expected distribution keyword `all`, `each` or `key`, found {}",
                    self.peek().kind.describe()
                )))
            }
        };
        let source = self.expect_identifier("source data name")?;
        Ok(InputBinding {
            set,
            source,
            distribution,
            optional,
        })
    }

    fn parse_output_binding(&mut self) -> DandelionResult<OutputBinding> {
        let published = self.expect_identifier("published output name")?;
        self.expect(TokenKind::Equals)?;
        let set = self.expect_identifier("output set name")?;
        Ok(OutputBinding { published, set })
    }
}

/// Parses a single composition from DSL text.
///
/// Trailing input after the composition is rejected; use [`parse_program`]
/// for files containing several compositions.
pub fn parse_composition(source: &str) -> DandelionResult<CompositionAst> {
    let mut parser = Parser::new(lex(source)?);
    let composition = parser.parse_composition()?;
    if !parser.at_eof() {
        return Err(parser.error("unexpected tokens after composition"));
    }
    Ok(composition)
}

/// Parses every composition in a DSL program.
pub fn parse_program(source: &str) -> DandelionResult<Vec<CompositionAst>> {
    let mut parser = Parser::new(lex(source)?);
    let mut compositions = Vec::new();
    while !parser.at_eof() {
        compositions.push(parser.parse_composition()?);
    }
    Ok(compositions)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"
        composition RenderLogs(AccessToken) => HTMLOutput {
            Access(AccessToken = all AccessToken) => (AuthRequest = HTTPRequest);
            HTTP(Request = each AuthRequest) => (AuthResponse = Response);
            FanOut(HTTPResponse = all AuthResponse) => (LogRequests = HTTPRequests);
            HTTP(Request = each LogRequests) => (LogResponses = Response);
            Render(HTTPResponses = all LogResponses) => (HTMLOutput = HTMLOutput);
        }
    "#;

    #[test]
    fn parses_the_paper_listing() {
        let ast = parse_composition(EXAMPLE).unwrap();
        assert_eq!(ast.name, "RenderLogs");
        assert_eq!(ast.inputs, vec!["AccessToken"]);
        assert_eq!(ast.outputs, vec!["HTMLOutput"]);
        assert_eq!(ast.statements.len(), 5);
        let fanout = &ast.statements[2];
        assert_eq!(fanout.vertex, "FanOut");
        assert_eq!(fanout.inputs[0].distribution, Distribution::All);
        assert_eq!(fanout.inputs[0].source, "AuthResponse");
        assert_eq!(fanout.outputs[0].published, "LogRequests");
        assert_eq!(fanout.outputs[0].set, "HTTPRequests");
    }

    #[test]
    fn parses_multiple_inputs_outputs_and_optional() {
        let source = r#"
            composition Join(Left, Right) => Out, Errors {
                Merge(L = all Left, R = key Right, Err = optional all Errors0) => (Out = Data, Errors = Problems);
            }
        "#;
        let ast = parse_composition(source).unwrap();
        assert_eq!(ast.inputs.len(), 2);
        assert_eq!(ast.outputs, vec!["Out", "Errors"]);
        let statement = &ast.statements[0];
        assert_eq!(statement.inputs.len(), 3);
        assert_eq!(statement.inputs[1].distribution, Distribution::Key);
        assert!(statement.inputs[2].optional);
        assert_eq!(statement.outputs.len(), 2);
    }

    #[test]
    fn parses_zero_input_composition() {
        let source = "composition Gen() => Data { Produce() => (Data = Numbers); }";
        let ast = parse_composition(source).unwrap();
        assert!(ast.inputs.is_empty());
        assert!(ast.statements[0].inputs.is_empty());
    }

    #[test]
    fn round_trips_via_to_dsl() {
        let ast = parse_composition(EXAMPLE).unwrap();
        let reparsed = parse_composition(&ast.to_dsl()).unwrap();
        // Source line numbers differ between the original text and the
        // pretty-printed form; everything else must round-trip exactly.
        assert_eq!(ast.to_dsl(), reparsed.to_dsl());
        assert_eq!(ast.name, reparsed.name);
        assert_eq!(ast.inputs, reparsed.inputs);
        assert_eq!(ast.outputs, reparsed.outputs);
        assert_eq!(ast.statements.len(), reparsed.statements.len());
    }

    #[test]
    fn parse_errors_carry_positions() {
        let err =
            parse_composition("composition X(A) => B { F(a = all A) => (B = Out) }").unwrap_err();
        match err {
            DandelionError::Parse { message, .. } => {
                assert!(message.contains("expected `;`"), "got {message}")
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_missing_distribution_keyword() {
        let err =
            parse_composition("composition X(A) => B { F(a = A) => (B = Out); }").unwrap_err();
        assert!(err.to_string().contains("distribution keyword"));
    }

    #[test]
    fn rejects_trailing_tokens() {
        let err = parse_composition("composition X(A) => B { F(a = all A) => (B = Out); } garbage")
            .unwrap_err();
        assert!(err.to_string().contains("unexpected tokens"));
    }

    #[test]
    fn parse_program_returns_all_compositions() {
        let source = r#"
            composition A(X) => Y { F(a = all X) => (Y = Out); }
            composition B(X) => Y { G(a = each X) => (Y = Out); }
        "#;
        let program = parse_program(source).unwrap();
        assert_eq!(program.len(), 2);
        assert_eq!(program[0].name, "A");
        assert_eq!(program[1].name, "B");
        assert!(parse_program("").unwrap().is_empty());
    }
}
