//! Minimal HTTP/1.1 support for Dandelion communication functions.
//!
//! Dandelion's only built-in communication function speaks HTTP: compute
//! functions emit serialized HTTP requests as output items, the communication
//! engine validates them, performs the request against a remote service, and
//! hands the serialized response to downstream functions (paper §4.1, §6.3).
//!
//! Because the request bytes are produced by *untrusted* compute functions,
//! the communication engine must not trust anything beyond the narrow shape
//! it validates:
//!
//! * the request line must contain a whitelisted method and a supported
//!   protocol version, and
//! * the URI authority must be a syntactically valid IP address or domain
//!   name.
//!
//! [`validate::validate_request`] implements exactly those checks and is
//! covered by property tests.

mod parse;
pub mod stream;
mod types;
mod uri;
pub mod validate;

pub use parse::{
    parse_request, parse_request_shared, parse_response, parse_response_shared, HttpParseError,
};
pub use stream::{
    probe_request, probe_response, rejection_code, rejection_status, ParseLimits, Probe,
    RequestDecoder, ResponseDecoder,
};
pub use types::{Headers, HttpRequest, HttpResponse, Method, StatusCode, Version};
pub use uri::Uri;
