//! Wire-format parsing for HTTP requests and responses.
//!
//! The parser is deliberately strict and allocation-bounded: it is fed bytes
//! produced by untrusted compute functions (requests) and by remote services
//! (responses), so it enforces limits on line length, header count and body
//! size rather than trusting `Content-Length` blindly.

use std::fmt;
use std::ops::Range;

use dandelion_common::SharedBytes;

use crate::types::{Headers, HttpRequest, HttpResponse, Method, StatusCode, Version};

/// Maximum accepted length of the request/status line in bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Maximum accepted number of header fields.
pub const MAX_HEADERS: usize = 128;
/// Maximum accepted body size in bytes (64 MiB).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Errors produced when parsing HTTP messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpParseError {
    /// The message ended before the header section was complete.
    UnexpectedEof,
    /// The request or status line was malformed.
    MalformedStartLine(String),
    /// The method is not one Dandelion understands.
    UnknownMethod(String),
    /// The protocol version is unsupported.
    UnsupportedVersion(String),
    /// A header line was malformed.
    MalformedHeader(String),
    /// A protocol limit (line length, header count, body size) was exceeded.
    LimitExceeded(&'static str),
    /// The status code was not a number.
    InvalidStatus(String),
    /// The body was shorter than the declared `Content-Length`.
    BodyTooShort {
        /// Declared length.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
}

impl fmt::Display for HttpParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpParseError::UnexpectedEof => f.write_str("unexpected end of message"),
            HttpParseError::MalformedStartLine(line) => write!(f, "malformed start line: {line}"),
            HttpParseError::UnknownMethod(method) => write!(f, "unknown method: {method}"),
            HttpParseError::UnsupportedVersion(version) => {
                write!(f, "unsupported version: {version}")
            }
            HttpParseError::MalformedHeader(line) => write!(f, "malformed header: {line}"),
            HttpParseError::LimitExceeded(which) => write!(f, "limit exceeded: {which}"),
            HttpParseError::InvalidStatus(status) => write!(f, "invalid status code: {status}"),
            HttpParseError::BodyTooShort { expected, actual } => {
                write!(f, "body too short: expected {expected} bytes, got {actual}")
            }
        }
    }
}

impl std::error::Error for HttpParseError {}

struct MessageHead {
    start_line: String,
    headers: Headers,
    body_offset: usize,
}

fn parse_head(input: &[u8]) -> Result<MessageHead, HttpParseError> {
    let mut offset = 0usize;
    let start_line = read_line(input, &mut offset)?;
    let mut headers = Headers::new();
    loop {
        let line = read_line(input, &mut offset)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpParseError::LimitExceeded("header count"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpParseError::MalformedHeader(line.clone()))?;
        let name = name.trim();
        if name.is_empty() || name.chars().any(|c| c.is_whitespace()) {
            return Err(HttpParseError::MalformedHeader(line.clone()));
        }
        headers.insert(name, value.trim());
    }
    Ok(MessageHead {
        start_line,
        headers,
        body_offset: offset,
    })
}

fn read_line(input: &[u8], offset: &mut usize) -> Result<String, HttpParseError> {
    let rest = &input[*offset..];
    let end = rest
        .windows(2)
        .position(|window| window == b"\r\n")
        .ok_or(HttpParseError::UnexpectedEof)?;
    if end > MAX_LINE_BYTES {
        return Err(HttpParseError::LimitExceeded("line length"));
    }
    let line = String::from_utf8_lossy(&rest[..end]).into_owned();
    *offset += end + 2;
    Ok(line)
}

/// Determines the byte range of the message body within `input`.
fn body_range(input: &[u8], head: &MessageHead) -> Result<Range<usize>, HttpParseError> {
    let available = input.len() - head.body_offset;
    let length = match head.headers.content_length() {
        Some(length) => {
            if length > MAX_BODY_BYTES {
                return Err(HttpParseError::LimitExceeded("body size"));
            }
            if available < length {
                return Err(HttpParseError::BodyTooShort {
                    expected: length,
                    actual: available,
                });
            }
            length
        }
        None => {
            if available > MAX_BODY_BYTES {
                return Err(HttpParseError::LimitExceeded("body size"));
            }
            available
        }
    };
    Ok(head.body_offset..head.body_offset + length)
}

/// Parses a serialized HTTP request, copying the body out of `input`.
///
/// [`parse_request_shared`] is the zero-copy variant over an owned receive
/// buffer.
pub fn parse_request(input: &[u8]) -> Result<HttpRequest, HttpParseError> {
    parse_request_impl(input, &mut |range| {
        SharedBytes::copy_from_slice(&input[range])
    })
}

/// Parses a serialized HTTP request held in a [`SharedBytes`] receive
/// buffer; the returned request's body is a zero-copy view of that buffer.
pub fn parse_request_shared(input: &SharedBytes) -> Result<HttpRequest, HttpParseError> {
    parse_request_impl(input.as_slice(), &mut |range| input.slice(range))
}

fn parse_request_impl(
    input: &[u8],
    make_body: &mut dyn FnMut(Range<usize>) -> SharedBytes,
) -> Result<HttpRequest, HttpParseError> {
    let head = parse_head(input)?;
    let mut parts = head.start_line.split_whitespace();
    let method_token = parts
        .next()
        .ok_or_else(|| HttpParseError::MalformedStartLine(head.start_line.clone()))?;
    let target = parts
        .next()
        .ok_or_else(|| HttpParseError::MalformedStartLine(head.start_line.clone()))?
        .to_string();
    let version_token = parts
        .next()
        .ok_or_else(|| HttpParseError::MalformedStartLine(head.start_line.clone()))?;
    if parts.next().is_some() {
        return Err(HttpParseError::MalformedStartLine(head.start_line.clone()));
    }
    let method = Method::parse(method_token)
        .ok_or_else(|| HttpParseError::UnknownMethod(method_token.to_string()))?;
    let version = Version::parse(version_token)
        .ok_or_else(|| HttpParseError::UnsupportedVersion(version_token.to_string()))?;
    let body = make_body(body_range(input, &head)?);
    Ok(HttpRequest {
        method,
        target,
        version,
        headers: head.headers,
        body,
    })
}

/// Parses a serialized HTTP response, copying the body out of `input`.
///
/// [`parse_response_shared`] is the zero-copy variant over an owned receive
/// buffer.
pub fn parse_response(input: &[u8]) -> Result<HttpResponse, HttpParseError> {
    parse_response_impl(input, &mut |range| {
        SharedBytes::copy_from_slice(&input[range])
    })
}

/// Parses a serialized HTTP response held in a [`SharedBytes`] receive
/// buffer; the returned response's body is a zero-copy view of that buffer.
pub fn parse_response_shared(input: &SharedBytes) -> Result<HttpResponse, HttpParseError> {
    parse_response_impl(input.as_slice(), &mut |range| input.slice(range))
}

fn parse_response_impl(
    input: &[u8],
    make_body: &mut dyn FnMut(Range<usize>) -> SharedBytes,
) -> Result<HttpResponse, HttpParseError> {
    let head = parse_head(input)?;
    let mut parts = head.start_line.splitn(3, ' ');
    let version_token = parts
        .next()
        .ok_or_else(|| HttpParseError::MalformedStartLine(head.start_line.clone()))?;
    let status_token = parts
        .next()
        .ok_or_else(|| HttpParseError::MalformedStartLine(head.start_line.clone()))?;
    let version = Version::parse(version_token)
        .ok_or_else(|| HttpParseError::UnsupportedVersion(version_token.to_string()))?;
    let status: u16 = status_token
        .parse()
        .map_err(|_| HttpParseError::InvalidStatus(status_token.to_string()))?;
    if !(100..600).contains(&status) {
        return Err(HttpParseError::InvalidStatus(status_token.to_string()));
    }
    let body = make_body(body_range(input, &head)?);
    Ok(HttpResponse {
        version,
        status: StatusCode(status),
        headers: head.headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let original = HttpRequest::post("http://db.internal/query", b"SELECT 1".to_vec())
            .with_header("Content-Type", "application/sql")
            .with_header("Authorization", "Bearer token123");
        let parsed = parse_request(&original.to_bytes()).unwrap();
        assert_eq!(parsed.method, Method::Post);
        assert_eq!(parsed.target, "http://db.internal/query");
        assert_eq!(parsed.headers.get("authorization"), Some("Bearer token123"));
        assert_eq!(parsed.body, b"SELECT 1");
    }

    #[test]
    fn response_roundtrip() {
        let original = HttpResponse::new(StatusCode::CREATED, b"created".to_vec())
            .with_header("X-Request-Id", "77");
        let parsed = parse_response(&original.to_bytes()).unwrap();
        assert_eq!(parsed.status, StatusCode::CREATED);
        assert_eq!(parsed.headers.get("x-request-id"), Some("77"));
        assert_eq!(parsed.body, b"created");
    }

    #[test]
    fn shared_parse_views_the_receive_buffer() {
        let wire = SharedBytes::from_vec(
            HttpRequest::post("http://svc.internal/x", b"a large payload".to_vec()).to_bytes(),
        );
        let parsed = parse_request_shared(&wire).unwrap();
        assert_eq!(parsed.body, b"a large payload");
        assert!(SharedBytes::same_buffer(&parsed.body, &wire));

        let response_wire =
            SharedBytes::from_vec(HttpResponse::ok(b"response bytes".to_vec()).to_bytes());
        let response = parse_response_shared(&response_wire).unwrap();
        assert_eq!(response.body, b"response bytes");
        assert!(SharedBytes::same_buffer(&response.body, &response_wire));
    }

    #[test]
    fn get_without_body_or_content_length() {
        let bytes = b"GET /healthz HTTP/1.1\r\nHost: svc\r\n\r\n";
        let parsed = parse_request(bytes).unwrap();
        assert_eq!(parsed.method, Method::Get);
        assert!(parsed.body.is_empty());
    }

    #[test]
    fn rejects_malformed_start_lines() {
        assert!(matches!(
            parse_request(b"GET\r\n\r\n"),
            Err(HttpParseError::MalformedStartLine(_))
        ));
        assert!(matches!(
            parse_request(b"GET /x HTTP/1.1 extra\r\n\r\n"),
            Err(HttpParseError::MalformedStartLine(_))
        ));
        assert!(matches!(
            parse_request(b"PATCH /x HTTP/1.1\r\n\r\n"),
            Err(HttpParseError::UnknownMethod(_))
        ));
        assert!(matches!(
            parse_request(b"GET /x HTTP/2.0\r\n\r\n"),
            Err(HttpParseError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn rejects_truncated_messages() {
        assert!(matches!(
            parse_request(b"GET /x HTTP/1.1\r\nHost: svc"),
            Err(HttpParseError::UnexpectedEof)
        ));
        assert!(matches!(
            parse_request(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpParseError::BodyTooShort {
                expected: 10,
                actual: 3
            })
        ));
    }

    #[test]
    fn rejects_malformed_headers() {
        assert!(matches!(
            parse_request(b"GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n"),
            Err(HttpParseError::MalformedHeader(_))
        ));
        assert!(matches!(
            parse_request(b"GET /x HTTP/1.1\r\nBad Name: v\r\n\r\n"),
            Err(HttpParseError::MalformedHeader(_))
        ));
    }

    #[test]
    fn enforces_header_count_limit() {
        let mut message = String::from("GET /x HTTP/1.1\r\n");
        for index in 0..(MAX_HEADERS + 1) {
            message.push_str(&format!("X-H{index}: v\r\n"));
        }
        message.push_str("\r\n");
        assert!(matches!(
            parse_request(message.as_bytes()),
            Err(HttpParseError::LimitExceeded("header count"))
        ));
    }

    #[test]
    fn enforces_body_size_limit() {
        let message = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse_request(message.as_bytes()),
            Err(HttpParseError::LimitExceeded("body size"))
        ));
    }

    #[test]
    fn rejects_invalid_status_codes() {
        assert!(matches!(
            parse_response(b"HTTP/1.1 abc OK\r\n\r\n"),
            Err(HttpParseError::InvalidStatus(_))
        ));
        assert!(matches!(
            parse_response(b"HTTP/1.1 999 Strange\r\n\r\n"),
            Err(HttpParseError::InvalidStatus(_))
        ));
    }

    #[test]
    fn response_without_content_length_takes_rest() {
        let parsed = parse_response(b"HTTP/1.1 200 OK\r\nX: 1\r\n\r\nrest of body").unwrap();
        assert_eq!(parsed.body, b"rest of body");
    }
}
