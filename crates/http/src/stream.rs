//! Incremental parsing for messages arriving over a byte stream.
//!
//! The one-shot parsers in [`crate::parse`] assume the whole message is in
//! hand. A socket delivers bytes in arbitrary fragments, possibly several
//! pipelined messages per read, so the network server needs three extra
//! capabilities, provided here:
//!
//! * [`probe_request`] / [`probe_response`] decide — without building
//!   anything — whether a buffer holds a complete message and how many bytes
//!   it spans, enforcing configurable [`ParseLimits`] so oversized heads and
//!   bodies are rejected before they are buffered in full.
//! * [`RequestDecoder`] / [`ResponseDecoder`] own the receive buffer: bytes
//!   accumulate in a pooled [`SharedBytesMut`]; once a message is complete
//!   the buffer is frozen and the message parsed with the one-shot shared
//!   parsers, so bodies are zero-copy views of the receive buffer and
//!   pipelined messages parse from one freeze.
//! * [`rejection_status`] maps a parse failure to the HTTP status the server
//!   answers with before closing the connection (`400`, `413` or `431`).
//!
//! Decoded results are byte-identical to the one-shot path: a decoder that
//! was fed a serialized request in arbitrary fragments yields exactly what
//! [`parse_request_shared`] yields on the whole buffer (the property tests
//! split at every byte boundary to prove it).

use std::io::Read;

use dandelion_common::{SharedBytes, SharedBytesMut};

use crate::parse::{
    parse_request_shared, parse_response_shared, HttpParseError, MAX_BODY_BYTES, MAX_LINE_BYTES,
};
use crate::types::{HttpRequest, HttpResponse, StatusCode};

/// Per-message limits enforced while a message is still arriving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum size of the head (start line + headers + blank line) in
    /// bytes. Exceeding it is a [`431`](rejection_status) rejection.
    pub max_head_bytes: usize,
    /// Maximum declared `Content-Length` in bytes. Exceeding it is a
    /// [`413`](rejection_status) rejection.
    pub max_body_bytes: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        Self {
            // The head limit bounds what a slow or malicious client can make
            // the server buffer before a request is rejected.
            max_head_bytes: 2 * MAX_LINE_BYTES,
            max_body_bytes: MAX_BODY_BYTES,
        }
    }
}

/// The outcome of probing a buffer for one complete message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// A complete message spans the first `consumed` bytes of the buffer.
    Complete {
        /// Bytes of the buffer the message occupies (head + body).
        consumed: usize,
    },
    /// The buffer holds only a prefix of a message; read more bytes.
    Partial,
}

/// Locates the end of the head section (the `\r\n\r\n` terminator),
/// enforcing the head-size limit on what has arrived so far.
fn head_end(input: &[u8], limits: &ParseLimits) -> Result<Option<usize>, HttpParseError> {
    // A conforming head fits in `max_head_bytes`, terminator included, so
    // only that window needs scanning.
    let window = input.len().min(limits.max_head_bytes);
    if let Some(position) = input[..window]
        .windows(4)
        .position(|candidate| candidate == b"\r\n\r\n")
    {
        return Ok(Some(position + 4));
    }
    if input.len() >= limits.max_head_bytes {
        return Err(HttpParseError::LimitExceeded("head size"));
    }
    Ok(None)
}

/// Extracts the declared `Content-Length` from a raw head section without
/// building a header map. Returns `None` when the header is absent,
/// an error when it is present but not a number.
fn declared_content_length(head: &[u8]) -> Result<Option<usize>, HttpParseError> {
    const NAME: &[u8] = b"content-length";
    for line in head.split(|&byte| byte == b'\n') {
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        let Some(colon) = line.iter().position(|&byte| byte == b':') else {
            continue;
        };
        // The strict parser trims the name before matching; mirror it so
        // probe and parse agree on which header declares the length.
        let mut name = &line[..colon];
        while let [b' ' | b'\t', rest @ ..] = name {
            name = rest;
        }
        while let [rest @ .., b' ' | b'\t'] = name {
            name = rest;
        }
        if name.eq_ignore_ascii_case(NAME) {
            let value = String::from_utf8_lossy(&line[colon + 1..]);
            return value
                .trim()
                .parse::<usize>()
                .map(Some)
                .map_err(|_| HttpParseError::MalformedHeader(value.trim().to_string()));
        }
    }
    Ok(None)
}

/// Probes `input` for one complete HTTP request, enforcing `limits`.
///
/// Requests without a `Content-Length` header have no body (RFC 9112 §6):
/// unlike the one-shot parser — which is handed exactly one message and
/// treats the remainder as the body — a stream decoder must not swallow a
/// pipelined successor, so the message ends at the head terminator.
pub fn probe_request(input: &[u8], limits: &ParseLimits) -> Result<Probe, HttpParseError> {
    let Some(body_offset) = head_end(input, limits)? else {
        return Ok(Probe::Partial);
    };
    let length = declared_content_length(&input[..body_offset])?.unwrap_or(0);
    if length > limits.max_body_bytes {
        return Err(HttpParseError::LimitExceeded("body size"));
    }
    if input.len() < body_offset + length {
        return Ok(Probe::Partial);
    }
    Ok(Probe::Complete {
        consumed: body_offset + length,
    })
}

/// Probes `input` for one complete HTTP response, enforcing `limits`.
///
/// Responses without a `Content-Length` header are treated as having an
/// empty body: the v1 server always declares the length, and a
/// read-to-close fallback would deadlock a keep-alive client.
pub fn probe_response(input: &[u8], limits: &ParseLimits) -> Result<Probe, HttpParseError> {
    // Requests and responses share the head/Content-Length framing; only the
    // start-line shape differs, which probing does not inspect.
    probe_request(input, limits)
}

/// Maps a parse failure onto the status code of the rejection response:
/// oversized heads are `431`, oversized bodies `413`, everything else `400`.
pub fn rejection_status(error: &HttpParseError) -> StatusCode {
    match error {
        HttpParseError::LimitExceeded("body size") => StatusCode(413),
        HttpParseError::LimitExceeded("head size")
        | HttpParseError::LimitExceeded("line length")
        | HttpParseError::LimitExceeded("header count") => StatusCode(431),
        _ => StatusCode::BAD_REQUEST,
    }
}

/// Stable machine-readable code for a parse rejection, mirroring
/// `DandelionError::code` for the platform's own errors.
pub fn rejection_code(error: &HttpParseError) -> &'static str {
    match rejection_status(error).0 {
        413 => "body_too_large",
        431 => "headers_too_large",
        _ => "malformed_request",
    }
}

/// How the decoders parse one complete message out of a frozen buffer.
trait Decode: Sized {
    fn probe(input: &[u8], limits: &ParseLimits) -> Result<Probe, HttpParseError>;
    fn parse(message: &SharedBytes) -> Result<Self, HttpParseError>;
}

impl Decode for HttpRequest {
    fn probe(input: &[u8], limits: &ParseLimits) -> Result<Probe, HttpParseError> {
        probe_request(input, limits)
    }

    fn parse(message: &SharedBytes) -> Result<Self, HttpParseError> {
        parse_request_shared(message)
    }
}

impl Decode for HttpResponse {
    fn probe(input: &[u8], limits: &ParseLimits) -> Result<Probe, HttpParseError> {
        probe_response(input, limits)
    }

    fn parse(message: &SharedBytes) -> Result<Self, HttpParseError> {
        parse_response_shared(message)
    }
}

/// The stream decoder shared by [`RequestDecoder`] and [`ResponseDecoder`].
///
/// Unparsed bytes live in exactly one of two places: the pooled `builder`
/// (still mutable, accepting reads) or the `frozen` view left over from the
/// last parse (pipelined successors and partial tails). A message that
/// arrives across many reads accumulates in the builder without re-copying;
/// only a tail left behind by an earlier parse is copied — once — into the
/// next builder when more bytes are needed.
#[derive(Debug, Default)]
struct StreamDecoder {
    builder: SharedBytesMut,
    frozen: SharedBytes,
    limits: ParseLimits,
}

impl StreamDecoder {
    fn new(limits: ParseLimits) -> Self {
        Self {
            builder: SharedBytesMut::new(),
            frozen: SharedBytes::new(),
            limits,
        }
    }

    /// Bytes buffered but not yet parsed into a message.
    fn buffered(&self) -> usize {
        self.builder.len() + self.frozen.len()
    }

    /// Moves any frozen leftover back into the builder so new bytes can
    /// append after it (the one copy a parse tail ever pays).
    fn unfreeze(&mut self, reserve: usize) {
        if self.frozen.is_empty() {
            return;
        }
        // The invariant that unparsed bytes live in exactly one place means
        // the builder is always empty here; the tail keeps its order.
        debug_assert!(self.builder.is_empty());
        self.builder = SharedBytesMut::with_capacity(self.frozen.len() + reserve);
        self.builder.put_slice(&self.frozen);
        self.frozen = SharedBytes::new();
    }

    fn feed(&mut self, bytes: &[u8]) {
        self.unfreeze(bytes.len());
        self.builder.put_slice(bytes);
    }

    fn read_from<R: Read>(&mut self, reader: &mut R, max_bytes: usize) -> std::io::Result<usize> {
        self.unfreeze(max_bytes);
        if self.builder.capacity() == 0 {
            self.builder = SharedBytesMut::with_capacity(max_bytes);
        }
        self.builder.read_from(reader, max_bytes)
    }

    fn next<M: Decode>(&mut self) -> Result<Option<M>, HttpParseError> {
        let unparsed: &[u8] = if self.frozen.is_empty() {
            &self.builder
        } else {
            &self.frozen
        };
        if unparsed.is_empty() {
            return Ok(None);
        }
        let consumed = match M::probe(unparsed, &self.limits)? {
            Probe::Complete { consumed } => consumed,
            Probe::Partial => return Ok(None),
        };
        if self.frozen.is_empty() {
            // Freeze moves the allocation: the parsed body will view the
            // buffer the bytes were received into.
            self.frozen = std::mem::take(&mut self.builder).freeze();
        }
        let (message, rest) = self.frozen.split_at(consumed);
        self.frozen = rest;
        M::parse(&message).map(Some)
    }
}

/// An incremental decoder for HTTP requests read from a stream.
///
/// ```
/// use dandelion_http::{RequestDecoder, ParseLimits};
///
/// let mut decoder = RequestDecoder::new(ParseLimits::default());
/// decoder.feed(b"GET /healthz HTTP/1.1\r\n");
/// assert!(decoder.next_request().unwrap().is_none()); // head incomplete
/// decoder.feed(b"Host: svc\r\n\r\n");
/// let request = decoder.next_request().unwrap().expect("complete");
/// assert_eq!(request.target, "/healthz");
/// ```
#[derive(Debug, Default)]
pub struct RequestDecoder {
    inner: StreamDecoder,
}

impl RequestDecoder {
    /// Creates a decoder enforcing `limits`.
    pub fn new(limits: ParseLimits) -> Self {
        Self {
            inner: StreamDecoder::new(limits),
        }
    }

    /// Appends bytes by copy (tests and in-memory callers; the socket path
    /// uses [`RequestDecoder::read_from`]).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.inner.feed(bytes);
    }

    /// Reads up to `max_bytes` from `reader` into the receive buffer.
    /// Returns the byte count (`0` at end of stream).
    pub fn read_from<R: Read>(
        &mut self,
        reader: &mut R,
        max_bytes: usize,
    ) -> std::io::Result<usize> {
        self.inner.read_from(reader, max_bytes)
    }

    /// Bytes buffered but not yet parsed into a request.
    pub fn buffered(&self) -> usize {
        self.inner.buffered()
    }

    /// Parses the next complete request out of the buffer, or `None` when
    /// more bytes are needed. Bodies are zero-copy views of the receive
    /// buffer. Errors are terminal: the connection should answer with
    /// [`rejection_status`] and close.
    pub fn next_request(&mut self) -> Result<Option<HttpRequest>, HttpParseError> {
        self.inner.next()
    }
}

/// An incremental decoder for HTTP responses read from a stream — the
/// client half of [`RequestDecoder`], used by the in-repo load generator.
#[derive(Debug, Default)]
pub struct ResponseDecoder {
    inner: StreamDecoder,
}

impl ResponseDecoder {
    /// Creates a decoder enforcing `limits`.
    pub fn new(limits: ParseLimits) -> Self {
        Self {
            inner: StreamDecoder::new(limits),
        }
    }

    /// Appends bytes by copy.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.inner.feed(bytes);
    }

    /// Reads up to `max_bytes` from `reader` into the receive buffer.
    pub fn read_from<R: Read>(
        &mut self,
        reader: &mut R,
        max_bytes: usize,
    ) -> std::io::Result<usize> {
        self.inner.read_from(reader, max_bytes)
    }

    /// Bytes buffered but not yet parsed into a response.
    pub fn buffered(&self) -> usize {
        self.inner.buffered()
    }

    /// Parses the next complete response, or `None` when more bytes are
    /// needed.
    pub fn next_response(&mut self) -> Result<Option<HttpResponse>, HttpParseError> {
        self.inner.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Method;

    fn sample_request() -> HttpRequest {
        HttpRequest::post("/v1/invoke/Echo", b"hello body".to_vec())
            .with_header("Content-Type", "application/octet-stream")
    }

    #[test]
    fn probe_reports_partial_then_complete() {
        let wire = sample_request().to_bytes();
        let limits = ParseLimits::default();
        for cut in 0..wire.len() {
            assert_eq!(
                probe_request(&wire[..cut], &limits).unwrap(),
                Probe::Partial,
                "prefix of {cut} bytes must be partial"
            );
        }
        assert_eq!(
            probe_request(&wire, &limits).unwrap(),
            Probe::Complete {
                consumed: wire.len()
            }
        );
    }

    #[test]
    fn request_without_content_length_ends_at_the_head() {
        let wire = b"GET /healthz HTTP/1.1\r\nHost: svc\r\n\r\nGET /next HTTP/1.1\r\n\r\n";
        match probe_request(wire, &ParseLimits::default()).unwrap() {
            Probe::Complete { consumed } => assert_eq!(consumed, 36),
            Probe::Partial => panic!("head is complete"),
        }
    }

    #[test]
    fn probe_enforces_head_and_body_limits() {
        let limits = ParseLimits {
            max_head_bytes: 64,
            max_body_bytes: 128,
        };
        let oversized_head = format!("GET /x HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "y".repeat(100));
        assert_eq!(
            probe_request(oversized_head.as_bytes(), &limits),
            Err(HttpParseError::LimitExceeded("head size"))
        );
        // The limit triggers even before the terminator arrives.
        let unterminated = vec![b'a'; 80];
        assert_eq!(
            probe_request(&unterminated, &limits),
            Err(HttpParseError::LimitExceeded("head size"))
        );
        let oversized_body = b"POST /x HTTP/1.1\r\nContent-Length: 1000\r\n\r\n";
        assert_eq!(
            probe_request(oversized_body, &limits),
            Err(HttpParseError::LimitExceeded("body size"))
        );
        let bad_length = b"POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n";
        assert!(matches!(
            probe_request(bad_length, &limits),
            Err(HttpParseError::MalformedHeader(_))
        ));
    }

    #[test]
    fn decoder_yields_pipelined_requests_from_one_read() {
        let first = sample_request();
        let second = HttpRequest::get("/healthz").with_header("Host", "svc");
        let mut wire = first.to_bytes();
        wire.extend_from_slice(&second.to_bytes());

        let mut decoder = RequestDecoder::new(ParseLimits::default());
        decoder.feed(&wire);
        let parsed_first = decoder.next_request().unwrap().expect("first request");
        assert_eq!(parsed_first.method, Method::Post);
        assert_eq!(parsed_first.body, b"hello body");
        let parsed_second = decoder.next_request().unwrap().expect("second request");
        assert_eq!(parsed_second.method, Method::Get);
        assert_eq!(parsed_second.target, "/healthz");
        assert!(parsed_second.body.is_empty());
        assert_eq!(decoder.buffered(), 0);
        assert!(decoder.next_request().unwrap().is_none());
    }

    #[test]
    fn decoder_matches_one_shot_parse_at_every_split() {
        let request = sample_request();
        let wire = request.to_bytes();
        let reference =
            parse_request_shared(&dandelion_common::SharedBytes::from_vec(wire.clone())).unwrap();
        for cut in 0..=wire.len() {
            let mut decoder = RequestDecoder::new(ParseLimits::default());
            decoder.feed(&wire[..cut]);
            if let Some(early) = decoder.next_request().unwrap() {
                // Only the full buffer can complete the message.
                assert_eq!(cut, wire.len());
                assert_eq!(early, reference);
                continue;
            }
            decoder.feed(&wire[cut..]);
            let parsed = decoder.next_request().unwrap().expect("complete");
            assert_eq!(parsed, reference, "split at byte {cut} diverged");
        }
    }

    #[test]
    fn decoder_reads_from_a_reader_and_bodies_view_the_receive_buffer() {
        let request = sample_request();
        let wire = request.to_bytes();
        let mut source: &[u8] = &wire;
        let mut decoder = RequestDecoder::new(ParseLimits::default());
        // Trickle in 7-byte reads.
        loop {
            match decoder.next_request().unwrap() {
                Some(parsed) => {
                    assert_eq!(parsed.body, request.body);
                    break;
                }
                None => {
                    assert!(decoder.read_from(&mut source, 7).unwrap() > 0);
                }
            }
        }
    }

    #[test]
    fn response_decoder_roundtrip_and_empty_body_without_length() {
        let response = HttpResponse::ok(b"result".to_vec()).with_header("X-Test", "1");
        let mut decoder = ResponseDecoder::new(ParseLimits::default());
        decoder.feed(&response.to_bytes());
        let parsed = decoder.next_response().unwrap().expect("complete");
        assert_eq!(parsed.status, StatusCode::OK);
        assert_eq!(parsed.body, b"result");
        // Responses with no Content-Length decode with an empty body rather
        // than waiting for close.
        decoder.feed(b"HTTP/1.1 204 No Content\r\n\r\n");
        let empty = decoder.next_response().unwrap().expect("complete");
        assert_eq!(empty.status.0, 204);
        assert!(empty.body.is_empty());
    }

    #[test]
    fn rejection_statuses_and_codes_are_stable() {
        let body = HttpParseError::LimitExceeded("body size");
        let head = HttpParseError::LimitExceeded("head size");
        let malformed = HttpParseError::MalformedStartLine("x".into());
        assert_eq!(rejection_status(&body).0, 413);
        assert_eq!(rejection_status(&head).0, 431);
        assert_eq!(rejection_status(&malformed), StatusCode::BAD_REQUEST);
        assert_eq!(rejection_code(&body), "body_too_large");
        assert_eq!(rejection_code(&head), "headers_too_large");
        assert_eq!(rejection_code(&malformed), "malformed_request");
    }
}
