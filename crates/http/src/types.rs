//! HTTP request, response, header and status types.
//!
//! Message bodies are [`SharedBytes`] views: parsing a received message
//! yields a body that references the receive buffer, and moving a body into
//! a data item or another message never copies the payload.

use std::fmt;

use dandelion_common::{Rope, SharedBytes, SharedBytesMut};

/// Number of decimal digits in `value` (at least 1).
fn decimal_len(mut value: usize) -> usize {
    let mut digits = 1;
    while value >= 10 {
        value /= 10;
        digits += 1;
    }
    digits
}

/// Exact wire length of the `Content-Length` header line.
fn content_length_line_len(body_len: usize) -> usize {
    "Content-Length: ".len() + decimal_len(body_len) + 2
}

/// Exact wire length of the header block (every `name: value\r\n` line).
fn header_lines_len(headers: &Headers) -> usize {
    headers
        .iter()
        .map(|(name, value)| name.len() + 2 + value.len() + 2)
        .sum()
}

/// Writes the header block into a head builder.
fn put_header_lines(head: &mut SharedBytesMut, headers: &Headers) {
    for (name, value) in headers.iter() {
        head.put_str(name);
        head.put_str(": ");
        head.put_str(value);
        head.put_str("\r\n");
    }
}

/// Writes a `Content-Length` line into a head builder.
fn put_content_length_line(head: &mut SharedBytesMut, body_len: usize) {
    head.put_str("Content-Length: ");
    head.put_decimal(body_len);
    head.put_str("\r\n");
}

/// The HTTP methods Dandelion's communication function supports.
///
/// The paper restricts the HTTP function to GET/PUT/POST/DELETE (§4.1);
/// `Head` is additionally accepted since some object stores use it for
/// existence checks, but it is not part of the default whitelist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Retrieve a resource.
    Get,
    /// Replace or create a resource.
    Put,
    /// Submit data to a resource.
    Post,
    /// Delete a resource.
    Delete,
    /// Retrieve headers only.
    Head,
}

impl Method {
    /// Parses a method token (case-sensitive, as required by RFC 9110).
    pub fn parse(token: &str) -> Option<Method> {
        match token {
            "GET" => Some(Method::Get),
            "PUT" => Some(Method::Put),
            "POST" => Some(Method::Post),
            "DELETE" => Some(Method::Delete),
            "HEAD" => Some(Method::Head),
            _ => None,
        }
    }

    /// The canonical token for the method.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Put => "PUT",
            Method::Post => "POST",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
        }
    }

    /// Methods allowed for untrusted requests by default (paper §4.1).
    pub const DEFAULT_WHITELIST: [Method; 4] =
        [Method::Get, Method::Put, Method::Post, Method::Delete];
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Supported protocol versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Version {
    /// HTTP/1.0
    Http10,
    /// HTTP/1.1
    Http11,
}

impl Version {
    /// Parses a version token such as `HTTP/1.1`.
    pub fn parse(token: &str) -> Option<Version> {
        match token {
            "HTTP/1.0" => Some(Version::Http10),
            "HTTP/1.1" => Some(Version::Http11),
            _ => None,
        }
    }

    /// The canonical token for the version.
    pub fn as_str(&self) -> &'static str {
        match self {
            Version::Http10 => "HTTP/1.0",
            Version::Http11 => "HTTP/1.1",
        }
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An HTTP status code with its reason phrase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK
    pub const OK: StatusCode = StatusCode(200);
    /// 201 Created
    pub const CREATED: StatusCode = StatusCode(201);
    /// 202 Accepted
    pub const ACCEPTED: StatusCode = StatusCode(202);
    /// 204 No Content
    pub const NO_CONTENT: StatusCode = StatusCode(204);
    /// 400 Bad Request
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 401 Unauthorized
    pub const UNAUTHORIZED: StatusCode = StatusCode(401);
    /// 403 Forbidden
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// 404 Not Found
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 408 Request Timeout
    pub const REQUEST_TIMEOUT: StatusCode = StatusCode(408);
    /// 429 Too Many Requests
    pub const TOO_MANY_REQUESTS: StatusCode = StatusCode(429);
    /// 500 Internal Server Error
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    /// 503 Service Unavailable
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// Returns `true` for 2xx codes.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.0)
    }

    /// Returns `true` for 4xx codes.
    pub fn is_client_error(&self) -> bool {
        (400..500).contains(&self.0)
    }

    /// Returns `true` for 5xx codes.
    pub fn is_server_error(&self) -> bool {
        (500..600).contains(&self.0)
    }

    /// The standard reason phrase for this code.
    pub fn reason(&self) -> &'static str {
        match self.0 {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            204 => "No Content",
            301 => "Moved Permanently",
            302 => "Found",
            304 => "Not Modified",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            408 => "Request Timeout",
            409 => "Conflict",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            499 => "Client Closed Request",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

/// An ordered, case-insensitive multimap of HTTP headers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Creates an empty header map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a header, preserving insertion order.
    pub fn insert(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// Returns the first value of a header, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(key, _)| key.eq_ignore_ascii_case(name))
            .map(|(_, value)| value.as_str())
    }

    /// Removes every value of a header, case-insensitively. Returns `true`
    /// when at least one entry was removed. Proxies use this to strip
    /// hop-by-hop headers (`Connection`, `Content-Length`) before a message
    /// is re-framed for the next hop.
    pub fn remove(&mut self, name: &str) -> bool {
        let before = self.entries.len();
        self.entries
            .retain(|(key, _)| !key.eq_ignore_ascii_case(name));
        self.entries.len() != before
    }

    /// Returns all values of a header, case-insensitively.
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|(key, _)| key.eq_ignore_ascii_case(name))
            .map(|(_, value)| value.as_str())
            .collect()
    }

    /// Number of header entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when there are no headers.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries
            .iter()
            .map(|(name, value)| (name.as_str(), value.as_str()))
    }

    /// Parses the `Content-Length` header if present and well-formed.
    pub fn content_length(&self) -> Option<usize> {
        self.get("content-length")?.trim().parse().ok()
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method.
    pub method: Method,
    /// Request target, either absolute (`http://host/path`) or origin form
    /// (`/path`).
    pub target: String,
    /// Protocol version.
    pub version: Version,
    /// Header fields.
    pub headers: Headers,
    /// Message body (a zero-copy view).
    pub body: SharedBytes,
}

impl HttpRequest {
    /// Creates a GET request for an absolute URI.
    pub fn get(target: impl Into<String>) -> Self {
        Self::new(Method::Get, target)
    }

    /// Creates a POST request with a body.
    pub fn post(target: impl Into<String>, body: impl Into<SharedBytes>) -> Self {
        let mut request = Self::new(Method::Post, target);
        request.body = body.into();
        request
    }

    /// Creates a PUT request with a body.
    pub fn put(target: impl Into<String>, body: impl Into<SharedBytes>) -> Self {
        let mut request = Self::new(Method::Put, target);
        request.body = body.into();
        request
    }

    /// Creates a request with an empty body.
    pub fn new(method: Method, target: impl Into<String>) -> Self {
        Self {
            method,
            target: target.into(),
            version: Version::Http11,
            headers: Headers::new(),
            body: SharedBytes::new(),
        }
    }

    /// Adds a header and returns `self` for chaining.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.insert(name, value);
        self
    }

    /// Exact wire length of the request head (everything before the body).
    fn head_len(&self) -> usize {
        let mut len = self.method.as_str().len() + 1 + self.target.len() + 1;
        len += self.version.as_str().len() + 2;
        len += header_lines_len(&self.headers);
        if !self.body.is_empty() && self.headers.content_length().is_none() {
            len += content_length_line_len(self.body.len());
        }
        len + 2
    }

    /// Serializes the request as a [`Rope`]: the head is built once into a
    /// pooled, exactly sized buffer and the body attaches by reference.
    ///
    /// This is the allocation-free serialization path — delivery walks the
    /// rope segments ([`Rope::write_to`] is vectored), so the body is never
    /// flattened behind the head. `Content-Length` is added when a body is
    /// present and the header is missing.
    pub fn to_rope(&self) -> Rope {
        let mut head = SharedBytesMut::with_capacity(self.head_len());
        head.put_str(self.method.as_str());
        head.put_u8(b' ');
        head.put_str(&self.target);
        head.put_u8(b' ');
        head.put_str(self.version.as_str());
        head.put_str("\r\n");
        put_header_lines(&mut head, &self.headers);
        if !self.body.is_empty() && self.headers.content_length().is_none() {
            put_content_length_line(&mut head, self.body.len());
        }
        head.put_str("\r\n");
        debug_assert_eq!(head.len(), self.head_len());
        let mut rope = Rope::new();
        rope.push_builder(head);
        rope.push(self.body.clone());
        rope
    }

    /// Serializes the request into one contiguous zero-copy view
    /// (one exact-capacity allocation; none when the body is empty).
    pub fn to_shared(&self) -> SharedBytes {
        self.to_rope().into_shared()
    }

    /// Serializes the request to wire format, adding `Content-Length` when a
    /// body is present and the header is missing.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_rope().to_vec()
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Protocol version.
    pub version: Version,
    /// Status code.
    pub status: StatusCode,
    /// Header fields.
    pub headers: Headers,
    /// Message body (a zero-copy view).
    pub body: SharedBytes,
}

impl HttpResponse {
    /// Creates a response with the given status and body.
    pub fn new(status: StatusCode, body: impl Into<SharedBytes>) -> Self {
        Self {
            version: Version::Http11,
            status,
            headers: Headers::new(),
            body: body.into(),
        }
    }

    /// Creates a `200 OK` response.
    pub fn ok(body: impl Into<SharedBytes>) -> Self {
        Self::new(StatusCode::OK, body)
    }

    /// Creates an error response whose body is the reason text.
    pub fn error(status: StatusCode, message: &str) -> Self {
        Self::new(status, message.as_bytes().to_vec())
    }

    /// Adds a header and returns `self` for chaining.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.insert(name, value);
        self
    }

    /// Returns the body as text (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Exact wire length of the response head (everything before the body).
    fn head_len(&self) -> usize {
        let mut len = self.version.as_str().len() + 1 + decimal_len(self.status.0 as usize) + 1;
        len += self.status.reason().len() + 2;
        len += header_lines_len(&self.headers);
        if self.headers.content_length().is_none() {
            len += content_length_line_len(self.body.len());
        }
        len + 2
    }

    /// Serializes the response as a [`Rope`]: the head is built once into a
    /// pooled, exactly sized buffer and the body attaches by reference —
    /// sending a 4 MiB body prepends a few dozen header bytes without ever
    /// copying the payload. `Content-Length` is added unless already set.
    pub fn to_rope(&self) -> Rope {
        let mut head = SharedBytesMut::with_capacity(self.head_len());
        head.put_str(self.version.as_str());
        head.put_u8(b' ');
        head.put_decimal(self.status.0 as usize);
        head.put_u8(b' ');
        head.put_str(self.status.reason());
        head.put_str("\r\n");
        put_header_lines(&mut head, &self.headers);
        if self.headers.content_length().is_none() {
            put_content_length_line(&mut head, self.body.len());
        }
        head.put_str("\r\n");
        debug_assert_eq!(head.len(), self.head_len());
        let mut rope = Rope::new();
        rope.push_builder(head);
        rope.push(self.body.clone());
        rope
    }

    /// Serializes the response into one contiguous zero-copy view
    /// (one exact-capacity allocation; none when the body is empty).
    pub fn to_shared(&self) -> SharedBytes {
        self.to_rope().into_shared()
    }

    /// Serializes the response to wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_rope().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_parse_roundtrip() {
        for method in Method::DEFAULT_WHITELIST {
            assert_eq!(Method::parse(method.as_str()), Some(method));
        }
        assert_eq!(Method::parse("get"), None);
        assert_eq!(Method::parse("PATCH"), None);
    }

    #[test]
    fn status_classification() {
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode::NOT_FOUND.is_client_error());
        assert!(StatusCode::SERVICE_UNAVAILABLE.is_server_error());
        assert_eq!(StatusCode::NOT_FOUND.to_string(), "404 Not Found");
        assert_eq!(StatusCode(599).reason(), "Unknown");
    }

    #[test]
    fn headers_are_case_insensitive_and_ordered() {
        let mut headers = Headers::new();
        headers.insert("Content-Type", "text/plain");
        headers.insert("X-Multi", "a");
        headers.insert("x-multi", "b");
        assert_eq!(headers.get("content-type"), Some("text/plain"));
        assert_eq!(headers.get_all("X-MULTI"), vec!["a", "b"]);
        assert_eq!(headers.len(), 3);
        assert_eq!(headers.get("missing"), None);
    }

    #[test]
    fn content_length_parsing() {
        let mut headers = Headers::new();
        assert_eq!(headers.content_length(), None);
        headers.insert("Content-Length", " 42 ");
        assert_eq!(headers.content_length(), Some(42));
    }

    #[test]
    fn request_serialization_adds_content_length() {
        let request = HttpRequest::post("http://svc.example/api", b"{\"a\":1}".to_vec())
            .with_header("Content-Type", "application/json");
        let bytes = request.to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("POST http://svc.example/api HTTP/1.1\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.ends_with("{\"a\":1}"));
    }

    #[test]
    fn rope_serialization_matches_to_bytes_and_shares_the_body() {
        let body = SharedBytes::from_vec(vec![0x42; 8 * 1024]);
        let request = HttpRequest::put("http://svc.example/obj", body.clone())
            .with_header("X-Trace", "abc123");
        let rope = request.to_rope();
        assert_eq!(rope.to_vec(), request.to_bytes());
        // The body segment is the caller's buffer, attached by reference.
        let body_segment = rope.last_segment().unwrap();
        assert!(SharedBytes::same_buffer(body_segment, &body));

        let response = HttpResponse::ok(body.clone()).with_header("X-Test", "1");
        let rope = response.to_rope();
        assert_eq!(rope.to_vec(), response.to_bytes());
        assert!(SharedBytes::same_buffer(
            rope.last_segment().unwrap(),
            &body
        ));
        // Vectored delivery reproduces the flat serialization.
        let mut delivered = Vec::new();
        rope.write_to(&mut delivered).unwrap();
        assert_eq!(delivered, response.to_bytes());
    }

    #[test]
    fn to_shared_is_head_only_for_empty_bodies() {
        let request = HttpRequest::get("http://svc.example/x");
        assert_eq!(request.to_rope().segment_count(), 1);
        assert_eq!(request.to_shared().as_slice(), request.to_bytes());
        // An unusual status exercises the decimal head writer.
        let response = HttpResponse::new(StatusCode(599), SharedBytes::new());
        let text = String::from_utf8(response.to_bytes()).unwrap();
        assert!(text.starts_with("HTTP/1.1 599 Unknown\r\n"));
        assert!(text.contains("Content-Length: 0\r\n"));
    }

    #[test]
    fn explicit_content_length_is_not_duplicated() {
        let response = HttpResponse::ok(b"abc".to_vec()).with_header("Content-Length", "3");
        let text = String::from_utf8(response.to_bytes()).unwrap();
        assert_eq!(text.matches("Content-Length").count(), 1);
        let request =
            HttpRequest::post("http://h/x", b"abc".to_vec()).with_header("Content-Length", "3");
        let text = String::from_utf8(request.to_bytes()).unwrap();
        assert_eq!(text.matches("Content-Length").count(), 1);
    }

    #[test]
    fn response_serialization() {
        let response = HttpResponse::ok(b"hello".to_vec()).with_header("X-Test", "1");
        let text = String::from_utf8(response.to_bytes()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("X-Test: 1\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.ends_with("hello"));
        assert_eq!(response.body_text(), "hello");
    }
}
