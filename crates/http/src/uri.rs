//! URI parsing and host validation.

use std::fmt;

/// A parsed absolute or origin-form URI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Uri {
    /// URI scheme (`http` or `https`); empty for origin-form targets.
    pub scheme: String,
    /// Host name or IP address; empty for origin-form targets.
    pub host: String,
    /// Explicit port, if present.
    pub port: Option<u16>,
    /// Path component, always starting with `/`.
    pub path: String,
    /// Query string without the leading `?`, if present.
    pub query: Option<String>,
}

impl Uri {
    /// Parses an absolute URI (`http://host[:port]/path[?query]`) or an
    /// origin-form target (`/path[?query]`).
    pub fn parse(input: &str) -> Option<Uri> {
        if input.is_empty() {
            return None;
        }
        if let Some(rest) = input.strip_prefix('/') {
            let (path, query) = split_query(&format!("/{rest}"));
            return Some(Uri {
                scheme: String::new(),
                host: String::new(),
                port: None,
                path,
                query,
            });
        }
        let (scheme, rest) = input.split_once("://")?;
        if scheme != "http" && scheme != "https" {
            return None;
        }
        let (authority, path_and_query) = match rest.find('/') {
            Some(index) => (&rest[..index], &rest[index..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return None;
        }
        let (host, port) = match authority.rsplit_once(':') {
            Some((host, port_text)) if !port_text.is_empty() && !host.is_empty() => {
                let port: u16 = port_text.parse().ok()?;
                (host.to_string(), Some(port))
            }
            _ => (authority.to_string(), None),
        };
        let (path, query) = split_query(path_and_query);
        Some(Uri {
            scheme: scheme.to_string(),
            host,
            port,
            path,
            query,
        })
    }

    /// Returns the port, defaulting to 80 for `http` and 443 for `https`.
    pub fn port_or_default(&self) -> u16 {
        self.port
            .unwrap_or(if self.scheme == "https" { 443 } else { 80 })
    }

    /// Returns `true` if the target is origin-form (no scheme/host).
    pub fn is_origin_form(&self) -> bool {
        self.host.is_empty()
    }

    /// Returns `true` if the host is a syntactically valid IPv4 address.
    pub fn host_is_ipv4(&self) -> bool {
        is_valid_ipv4(&self.host)
    }

    /// Returns `true` if the host is a syntactically valid domain name.
    pub fn host_is_domain(&self) -> bool {
        is_valid_domain(&self.host)
    }
}

impl fmt::Display for Uri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_origin_form() {
            write!(f, "{}://{}", self.scheme, self.host)?;
            if let Some(port) = self.port {
                write!(f, ":{port}")?;
            }
        }
        f.write_str(&self.path)?;
        if let Some(query) = &self.query {
            write!(f, "?{query}")?;
        }
        Ok(())
    }
}

fn split_query(path_and_query: &str) -> (String, Option<String>) {
    match path_and_query.split_once('?') {
        Some((path, query)) => (path.to_string(), Some(query.to_string())),
        None => (path_and_query.to_string(), None),
    }
}

/// Checks whether `host` is a dotted-quad IPv4 address.
pub fn is_valid_ipv4(host: &str) -> bool {
    let octets: Vec<&str> = host.split('.').collect();
    if octets.len() != 4 {
        return false;
    }
    octets.iter().all(|octet| {
        !octet.is_empty()
            && octet.len() <= 3
            && octet.chars().all(|c| c.is_ascii_digit())
            && octet.parse::<u16>().map(|v| v <= 255).unwrap_or(false)
    })
}

/// Checks whether `host` is a syntactically valid DNS name.
///
/// Each label must be 1-63 characters of `[A-Za-z0-9-]`, not starting or
/// ending with `-`; the full name must be at most 253 characters and contain
/// at least one label. Purely numeric names are rejected (they would be
/// confusable with malformed IP addresses).
pub fn is_valid_domain(host: &str) -> bool {
    if host.is_empty() || host.len() > 253 {
        return false;
    }
    let labels: Vec<&str> = host.split('.').collect();
    if labels.iter().any(|label| label.is_empty()) {
        return false;
    }
    let all_labels_valid = labels.iter().all(|label| {
        label.len() <= 63
            && label.chars().all(|c| c.is_ascii_alphanumeric() || c == '-')
            && !label.starts_with('-')
            && !label.ends_with('-')
    });
    if !all_labels_valid {
        return false;
    }
    // Reject names where every label is numeric (e.g. "300.300.300.300").
    !labels
        .iter()
        .all(|label| label.chars().all(|c| c.is_ascii_digit()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_absolute_uris() {
        let uri = Uri::parse("http://storage.internal:9000/bucket/key?versionId=3").unwrap();
        assert_eq!(uri.scheme, "http");
        assert_eq!(uri.host, "storage.internal");
        assert_eq!(uri.port, Some(9000));
        assert_eq!(uri.path, "/bucket/key");
        assert_eq!(uri.query.as_deref(), Some("versionId=3"));
        assert_eq!(uri.port_or_default(), 9000);
        assert_eq!(
            uri.to_string(),
            "http://storage.internal:9000/bucket/key?versionId=3"
        );
    }

    #[test]
    fn parses_uri_without_path() {
        let uri = Uri::parse("https://auth.example.com").unwrap();
        assert_eq!(uri.path, "/");
        assert_eq!(uri.port_or_default(), 443);
        assert!(!uri.is_origin_form());
    }

    #[test]
    fn parses_origin_form() {
        let uri = Uri::parse("/v1/query?db=ssb").unwrap();
        assert!(uri.is_origin_form());
        assert_eq!(uri.path, "/v1/query");
        assert_eq!(uri.query.as_deref(), Some("db=ssb"));
        assert_eq!(uri.to_string(), "/v1/query?db=ssb");
    }

    #[test]
    fn rejects_unsupported_schemes_and_empty() {
        assert!(Uri::parse("ftp://example.com/file").is_none());
        assert!(Uri::parse("").is_none());
        assert!(Uri::parse("http://").is_none());
        assert!(Uri::parse("not a uri").is_none());
        assert!(Uri::parse("http://host:notaport/x").is_none());
    }

    #[test]
    fn ipv4_validation() {
        assert!(is_valid_ipv4("10.0.0.1"));
        assert!(is_valid_ipv4("255.255.255.255"));
        assert!(!is_valid_ipv4("256.0.0.1"));
        assert!(!is_valid_ipv4("10.0.0"));
        assert!(!is_valid_ipv4("10.0.0.0.1"));
        assert!(!is_valid_ipv4("a.b.c.d"));
        assert!(!is_valid_ipv4("01.0.0.1234"));
    }

    #[test]
    fn domain_validation() {
        assert!(is_valid_domain("example.com"));
        assert!(is_valid_domain("storage-internal"));
        assert!(is_valid_domain("a.b.c.d.e.example"));
        assert!(!is_valid_domain(""));
        assert!(!is_valid_domain("-bad.example"));
        assert!(!is_valid_domain("bad-.example"));
        assert!(!is_valid_domain("exa mple.com"));
        assert!(!is_valid_domain("double..dot"));
        assert!(!is_valid_domain("300.300.300.300"));
        assert!(!is_valid_domain(&"a".repeat(300)));
    }

    #[test]
    fn host_classification_helpers() {
        let ip = Uri::parse("http://192.168.1.10/metrics").unwrap();
        assert!(ip.host_is_ipv4());
        assert!(!ip.host_is_domain());
        let dns = Uri::parse("http://logs.svc.cluster.local/api").unwrap();
        assert!(dns.host_is_domain());
        assert!(!dns.host_is_ipv4());
    }
}
