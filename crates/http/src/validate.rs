//! Request sanitization applied by communication engines.
//!
//! Communication engines are trusted platform code executing requests
//! *authored by untrusted compute functions* (paper §6.3). Before performing
//! a request, the engine validates only what the protocol requires it to rely
//! on: the request line (method + version) and the host part of the URI. The
//! rest of the request (path, query, headers, body) is treated as opaque data
//! forwarded to the remote service.

use dandelion_common::{DandelionError, DandelionResult, SharedBytes};

use crate::parse::{parse_request, parse_request_shared};
use crate::types::{HttpRequest, Method};
use crate::uri::Uri;

/// Policy describing what a communication engine accepts.
#[derive(Debug, Clone)]
pub struct ValidationPolicy {
    /// Methods the engine will execute.
    pub allowed_methods: Vec<Method>,
    /// If non-empty, only these hosts may be contacted (exact match).
    pub allowed_hosts: Vec<String>,
    /// Maximum request body size the engine will forward.
    pub max_body_bytes: usize,
    /// Whether origin-form targets (no host) are accepted.
    pub allow_origin_form: bool,
}

impl Default for ValidationPolicy {
    fn default() -> Self {
        Self {
            allowed_methods: Method::DEFAULT_WHITELIST.to_vec(),
            allowed_hosts: Vec::new(),
            max_body_bytes: 32 * 1024 * 1024,
            allow_origin_form: false,
        }
    }
}

/// A request that passed validation, together with its parsed URI.
#[derive(Debug, Clone)]
pub struct ValidatedRequest {
    /// The parsed request.
    pub request: HttpRequest,
    /// The parsed and host-validated URI.
    pub uri: Uri,
}

/// Validates raw request bytes produced by an untrusted compute function.
///
/// On success returns the parsed request and URI; on failure returns an
/// [`DandelionError::InvalidRequest`] describing the first problem found.
pub fn validate_request_bytes(
    raw: &[u8],
    policy: &ValidationPolicy,
) -> DandelionResult<ValidatedRequest> {
    let request = parse_request(raw)
        .map_err(|err| DandelionError::InvalidRequest(format!("malformed request: {err}")))?;
    validate_request(request, policy)
}

/// Validates a request held in a [`SharedBytes`] buffer (the bytes of a
/// data-plane item); on success the validated request's body is a zero-copy
/// view of that buffer. This is the communication engine's hot path.
pub fn validate_request_shared(
    raw: &SharedBytes,
    policy: &ValidationPolicy,
) -> DandelionResult<ValidatedRequest> {
    let request = parse_request_shared(raw)
        .map_err(|err| DandelionError::InvalidRequest(format!("malformed request: {err}")))?;
    validate_request(request, policy)
}

/// Validates an already parsed request against the policy.
pub fn validate_request(
    request: HttpRequest,
    policy: &ValidationPolicy,
) -> DandelionResult<ValidatedRequest> {
    if !policy.allowed_methods.contains(&request.method) {
        return Err(DandelionError::InvalidRequest(format!(
            "method {} is not allowed",
            request.method
        )));
    }
    if request.body.len() > policy.max_body_bytes {
        return Err(DandelionError::InvalidRequest(format!(
            "body of {} bytes exceeds the {}-byte limit",
            request.body.len(),
            policy.max_body_bytes
        )));
    }
    let uri = Uri::parse(&request.target).ok_or_else(|| {
        DandelionError::InvalidRequest(format!("target `{}` is not a valid URI", request.target))
    })?;
    if uri.is_origin_form() {
        if !policy.allow_origin_form {
            return Err(DandelionError::InvalidRequest(
                "origin-form targets are not allowed; requests must name a host".to_string(),
            ));
        }
    } else {
        if !uri.host_is_ipv4() && !uri.host_is_domain() {
            return Err(DandelionError::InvalidRequest(format!(
                "host `{}` is neither a valid IP address nor a valid domain name",
                uri.host
            )));
        }
        if !policy.allowed_hosts.is_empty()
            && !policy
                .allowed_hosts
                .iter()
                .any(|allowed| allowed == &uri.host)
        {
            return Err(DandelionError::InvalidRequest(format!(
                "host `{}` is not in the allow-list",
                uri.host
            )));
        }
    }
    Ok(ValidatedRequest { request, uri })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::HttpRequest;

    fn policy() -> ValidationPolicy {
        ValidationPolicy::default()
    }

    #[test]
    fn accepts_well_formed_get() {
        let request = HttpRequest::get("http://logs.svc.internal/api/lines");
        let validated = validate_request(request, &policy()).unwrap();
        assert_eq!(validated.uri.host, "logs.svc.internal");
    }

    #[test]
    fn accepts_ip_hosts() {
        let request = HttpRequest::get("http://10.1.2.3:8080/objects/a");
        let validated = validate_request(request, &policy()).unwrap();
        assert!(validated.uri.host_is_ipv4());
        assert_eq!(validated.uri.port_or_default(), 8080);
    }

    #[test]
    fn rejects_disallowed_method() {
        let request = HttpRequest::new(Method::Head, "http://svc/x");
        let err = validate_request(request, &policy()).unwrap_err();
        assert!(err.to_string().contains("HEAD"));
    }

    #[test]
    fn rejects_invalid_host() {
        let request = HttpRequest::get("http://999.999.999.999/x");
        assert!(validate_request(request, &policy()).is_err());
        let request = HttpRequest::get("http://bad_host!/x");
        assert!(validate_request(request, &policy()).is_err());
    }

    #[test]
    fn rejects_origin_form_by_default() {
        let request = HttpRequest::get("/local/path");
        assert!(validate_request(request, &policy()).is_err());
        let mut relaxed = policy();
        relaxed.allow_origin_form = true;
        let request = HttpRequest::get("/local/path");
        assert!(validate_request(request, &relaxed).is_ok());
    }

    #[test]
    fn enforces_host_allow_list() {
        let mut restricted = policy();
        restricted.allowed_hosts = vec!["auth.internal".to_string()];
        let ok = HttpRequest::get("http://auth.internal/token");
        assert!(validate_request(ok, &restricted).is_ok());
        let bad = HttpRequest::get("http://evil.example/exfil");
        assert!(validate_request(bad, &restricted).is_err());
    }

    #[test]
    fn enforces_body_limit() {
        let mut small = policy();
        small.max_body_bytes = 4;
        let request = HttpRequest::post("http://svc/x", b"too large".to_vec());
        assert!(validate_request(request, &small).is_err());
    }

    #[test]
    fn validates_raw_bytes() {
        let raw = HttpRequest::get("http://svc.example/x").to_bytes();
        assert!(validate_request_bytes(&raw, &policy()).is_ok());
        assert!(validate_request_bytes(b"garbage\r\n\r\n", &policy()).is_err());
        // A request smuggling attempt with an invalid method never reaches a
        // service.
        assert!(validate_request_bytes(b"EVIL http://svc/x HTTP/1.1\r\n\r\n", &policy()).is_err());
    }
}
