//! The compute-function ABI: artifacts, logic and the execution context.
//!
//! In the paper, users register native binaries (or Wasm modules) compiled
//! against dlibc. In this reproduction a registered function is a
//! [`FunctionArtifact`]: a name, a synthetic "binary" (bytes whose size
//! models the real binary, used for load-cost accounting and cache
//! behaviour), a declared memory requirement, and the executable
//! [`ComputeLogic`].
//!
//! At execution time the backend constructs a [`FunctionCtx`] — the only
//! capability the user code receives. It exposes the declared input sets,
//! a capacity-bounded virtual filesystem, an output staging API and a
//! syscall shim that enforces the [`SyscallPolicy`]. There is no other
//! ambient authority: no real filesystem, no network, no clock.

use std::fmt;
use std::sync::Arc;

use dandelion_common::{DataItem, DataSet};
use dandelion_vfs::{VfsPath, VirtualFs};

use crate::policy::{SyscallDisposition, SyscallPolicy};

/// Error type returned by compute-function bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionError(pub String);

impl fmt::Display for FunctionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for FunctionError {}

impl From<String> for FunctionError {
    fn from(message: String) -> Self {
        FunctionError(message)
    }
}

impl From<&str> for FunctionError {
    fn from(message: &str) -> Self {
        FunctionError(message.to_string())
    }
}

/// The executable body of a pure compute function.
///
/// Implementations must be pure in the Dandelion sense: they interact with
/// the world only through the provided [`FunctionCtx`].
pub trait ComputeLogic: Send + Sync {
    /// Runs the function against its context.
    fn run(&self, ctx: &mut FunctionCtx) -> Result<(), FunctionError>;
}

impl<F> ComputeLogic for F
where
    F: Fn(&mut FunctionCtx) -> Result<(), FunctionError> + Send + Sync,
{
    fn run(&self, ctx: &mut FunctionCtx) -> Result<(), FunctionError> {
        self(ctx)
    }
}

/// A registered compute function.
#[derive(Clone)]
pub struct FunctionArtifact {
    /// The function name used in compositions.
    pub name: String,
    /// Synthetic binary bytes; the length models the real binary size and is
    /// what gets "loaded" into the memory context.
    pub binary: Arc<Vec<u8>>,
    /// Declared memory requirement (context capacity), in bytes.
    pub memory_requirement: usize,
    /// Declared output set names, harvested after execution.
    pub output_sets: Vec<String>,
    /// The executable logic.
    pub logic: Arc<dyn ComputeLogic>,
}

impl fmt::Debug for FunctionArtifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FunctionArtifact")
            .field("name", &self.name)
            .field("binary_bytes", &self.binary.len())
            .field("memory_requirement", &self.memory_requirement)
            .field("output_sets", &self.output_sets)
            .finish()
    }
}

impl FunctionArtifact {
    /// Creates an artifact with a default 64 KiB synthetic binary and a
    /// 16 MiB memory requirement.
    pub fn new(
        name: impl Into<String>,
        output_sets: &[&str],
        logic: impl ComputeLogic + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            binary: Arc::new(vec![0xD4; 64 * 1024]),
            memory_requirement: 16 * 1024 * 1024,
            output_sets: output_sets.iter().map(|s| s.to_string()).collect(),
            logic: Arc::new(logic),
        }
    }

    /// Overrides the synthetic binary size.
    pub fn with_binary_size(mut self, bytes: usize) -> Self {
        self.binary = Arc::new(vec![0xD4; bytes]);
        self
    }

    /// Overrides the declared memory requirement.
    pub fn with_memory_requirement(mut self, bytes: usize) -> Self {
        self.memory_requirement = bytes;
        self
    }
}

/// Record of a syscall attempted by the function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyscallAttempt {
    /// The syscall name the function asked for.
    pub name: String,
    /// What the policy decided.
    pub disposition: SyscallDisposition,
}

/// The execution context handed to user code.
pub struct FunctionCtx {
    inputs: Vec<DataSet>,
    fs: VirtualFs,
    output_sets: Vec<String>,
    staged_outputs: Vec<DataSet>,
    policy: SyscallPolicy,
    syscall_attempts: Vec<SyscallAttempt>,
    faulted: Option<String>,
}

impl FunctionCtx {
    /// Builds a context from materialized inputs.
    ///
    /// `capacity` bounds the virtual filesystem, mirroring the memory
    /// context capacity.
    pub fn new(
        inputs: Vec<DataSet>,
        output_sets: Vec<String>,
        capacity: usize,
        policy: SyscallPolicy,
    ) -> Result<Self, FunctionError> {
        let fs = VirtualFs::from_input_sets(&inputs, capacity)
            .map_err(|err| FunctionError(format!("failed to materialize inputs: {err}")))?;
        Ok(Self {
            inputs,
            fs,
            output_sets,
            staged_outputs: Vec::new(),
            policy,
            syscall_attempts: Vec::new(),
            faulted: None,
        })
    }

    /// The declared input sets.
    pub fn inputs(&self) -> &[DataSet] {
        &self.inputs
    }

    /// Looks up an input set by name.
    pub fn input_set(&self, name: &str) -> Option<&DataSet> {
        self.inputs.iter().find(|set| set.name == name)
    }

    /// Returns the single item of an input set, failing with a descriptive
    /// error when the set is missing or does not have exactly one item.
    pub fn single_input(&self, name: &str) -> Result<&DataItem, FunctionError> {
        let set = self
            .input_set(name)
            .ok_or_else(|| FunctionError(format!("missing input set `{name}`")))?;
        if set.len() != 1 {
            return Err(FunctionError(format!(
                "input set `{name}` has {} items, expected exactly 1",
                set.len()
            )));
        }
        Ok(&set.items[0])
    }

    /// Read-only access to the virtual filesystem.
    pub fn fs(&self) -> &VirtualFs {
        &self.fs
    }

    /// Mutable access to the virtual filesystem.
    pub fn fs_mut(&mut self) -> &mut VirtualFs {
        &mut self.fs
    }

    /// The declared output set names.
    pub fn output_sets(&self) -> &[String] {
        &self.output_sets
    }

    /// Stages an output item for the named set.
    pub fn push_output(&mut self, set: &str, item: DataItem) -> Result<(), FunctionError> {
        if !self.output_sets.iter().any(|name| name == set) {
            return Err(FunctionError(format!(
                "`{set}` is not a declared output set"
            )));
        }
        match self.staged_outputs.iter_mut().find(|s| s.name == set) {
            Some(existing) => existing.push(item),
            None => {
                let mut new_set = DataSet::new(set);
                new_set.push(item);
                self.staged_outputs.push(new_set);
            }
        }
        Ok(())
    }

    /// Convenience wrapper staging a single unnamed item.
    ///
    /// Accepts anything convertible to a [`dandelion_common::SharedBytes`]
    /// view; passing an input item's `data.clone()` stages the output
    /// without copying the payload.
    pub fn push_output_bytes(
        &mut self,
        set: &str,
        name: &str,
        data: impl Into<dandelion_common::SharedBytes>,
    ) -> Result<(), FunctionError> {
        self.push_output(set, DataItem::new(name, data))
    }

    /// Models a syscall attempt by the user code.
    ///
    /// Stubbed calls return the errno the dlibc stub would produce; denied
    /// calls mark the context as faulted and return an error, after which the
    /// backend terminates the function.
    pub fn syscall(&mut self, name: &str) -> Result<i32, FunctionError> {
        let disposition = self.policy.disposition(name);
        self.syscall_attempts.push(SyscallAttempt {
            name: name.to_string(),
            disposition,
        });
        match disposition {
            SyscallDisposition::Stub { errno } => Ok(-errno),
            SyscallDisposition::Terminate => {
                let message = format!("attempted forbidden syscall `{name}`");
                self.faulted = Some(message.clone());
                Err(FunctionError(message))
            }
        }
    }

    /// Returns the syscalls the function attempted.
    pub fn syscall_attempts(&self) -> &[SyscallAttempt] {
        &self.syscall_attempts
    }

    /// Returns the fault recorded by a denied syscall, if any.
    pub fn fault(&self) -> Option<&str> {
        self.faulted.as_deref()
    }

    /// Collects the function's outputs: explicitly staged items first, then
    /// any files written under declared output-set directories in the
    /// filesystem. Every declared set is present in the result (possibly
    /// empty), in declaration order.
    pub fn take_outputs(&mut self) -> Vec<DataSet> {
        let from_fs = self.fs.harvest_output_sets(&self.output_sets);
        let mut outputs = Vec::with_capacity(self.output_sets.len());
        for (index, set_name) in self.output_sets.iter().enumerate() {
            let mut set = DataSet::new(set_name.clone());
            if let Some(staged) = self.staged_outputs.iter().find(|s| &s.name == set_name) {
                set.items.extend(staged.items.iter().cloned());
            }
            set.items.extend(from_fs[index].items.iter().cloned());
            outputs.push(set);
        }
        self.staged_outputs.clear();
        outputs
    }
}

/// Writes an input item into the conventional `/<set>/<item>` location of a
/// context filesystem. Mostly useful in tests and examples that construct
/// contexts by hand.
pub fn write_input_item(
    fs: &mut VirtualFs,
    set: &str,
    item: &DataItem,
) -> Result<(), dandelion_vfs::VfsError> {
    fs.create_dir_all(&VfsPath::new(set))?;
    fs.write_file(&VfsPath::set_item(set, &item.name), &item.data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ctx() -> FunctionCtx {
        FunctionCtx::new(
            vec![DataSet::single("request", b"GET /logs".to_vec())],
            vec!["response".to_string(), "errors".to_string()],
            1024 * 1024,
            SyscallPolicy::strict(),
        )
        .unwrap()
    }

    #[test]
    fn inputs_are_visible_via_sets_and_fs() {
        let ctx = sample_ctx();
        assert_eq!(ctx.inputs().len(), 1);
        assert_eq!(
            ctx.single_input("request").unwrap().as_str(),
            Some("GET /logs")
        );
        assert!(ctx.input_set("missing").is_none());
        assert!(ctx.single_input("missing").is_err());
        let listing = ctx.fs().list_dir(&VfsPath::new("/request")).unwrap();
        assert_eq!(listing, vec!["request.0"]);
    }

    #[test]
    fn outputs_merge_staged_and_fs_items() {
        let mut ctx = sample_ctx();
        ctx.push_output_bytes("response", "r0", b"staged".to_vec())
            .unwrap();
        ctx.fs_mut()
            .write_output_item("response", "r1", Some("key"), b"from fs")
            .unwrap();
        let outputs = ctx.take_outputs();
        assert_eq!(outputs.len(), 2);
        assert_eq!(outputs[0].name, "response");
        assert_eq!(outputs[0].len(), 2);
        assert_eq!(outputs[0].items[0].name, "r0");
        assert_eq!(outputs[0].items[1].key.as_deref(), Some("key"));
        assert!(outputs[1].is_empty());
        // take_outputs drains the staged items.
        assert_eq!(ctx.take_outputs()[0].len(), 1);
    }

    #[test]
    fn undeclared_output_sets_are_rejected() {
        let mut ctx = sample_ctx();
        assert!(ctx.push_output_bytes("bogus", "x", vec![1]).is_err());
    }

    #[test]
    fn syscalls_follow_policy() {
        let mut ctx = sample_ctx();
        // Stubbed call: returns negative errno, no fault.
        assert_eq!(ctx.syscall("mmap").unwrap(), -38);
        assert!(ctx.fault().is_none());
        // Forbidden call: error + fault recorded.
        assert!(ctx.syscall("execve").is_err());
        assert_eq!(ctx.fault(), Some("attempted forbidden syscall `execve`"));
        assert_eq!(ctx.syscall_attempts().len(), 2);
    }

    #[test]
    fn closures_implement_compute_logic() {
        let artifact = FunctionArtifact::new("double", &["out"], |ctx: &mut FunctionCtx| {
            let input = ctx.single_input("numbers")?.data.clone();
            let doubled: Vec<u8> = input.iter().map(|b| b.wrapping_mul(2)).collect();
            ctx.push_output_bytes("out", "doubled", doubled)
        })
        .with_binary_size(128)
        .with_memory_requirement(1024);
        assert_eq!(artifact.binary.len(), 128);
        assert_eq!(artifact.memory_requirement, 1024);

        let mut ctx = FunctionCtx::new(
            vec![DataSet::single("numbers", vec![1, 2, 3])],
            vec!["out".to_string()],
            4096,
            SyscallPolicy::permissive(),
        )
        .unwrap();
        artifact.logic.run(&mut ctx).unwrap();
        let outputs = ctx.take_outputs();
        assert_eq!(outputs[0].items[0].data.as_slice(), &[2, 4, 6]);
    }

    #[test]
    fn write_input_item_helper() {
        let mut fs = VirtualFs::new(1024);
        let item = DataItem::new("part.bin", vec![9, 9]);
        write_input_item(&mut fs, "parts", &item).unwrap();
        assert_eq!(
            fs.read_file(&VfsPath::new("/parts/part.bin")).unwrap(),
            vec![9, 9]
        );
    }
}
