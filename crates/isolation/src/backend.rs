//! The isolation backend interface and the staged executor.
//!
//! Every backend executes the same sandbox lifecycle (the stages of Table 1):
//! marshal the task, load the function binary into the memory context,
//! transfer the inputs, execute the function body, collect the outputs it
//! left behind, and clean up. The [`StagedExecutor`] implements that
//! lifecycle once; the concrete backends in [`crate::backends`] parameterize
//! it with their syscall policy and cost model and add their
//! mechanism-specific bookkeeping.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dandelion_common::config::IsolationKind;
use dandelion_common::{DandelionError, DandelionResult, DataItem, DataSet};

use crate::abi::{FunctionArtifact, FunctionCtx, SyscallAttempt};
use crate::context::MemoryContext;
use crate::cost::{SandboxCostModel, Stage};
use crate::output_parser;
use crate::policy::SyscallPolicy;

/// Per-stage durations, either measured or modeled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageTimings {
    durations: HashMap<Stage, Duration>,
}

impl StageTimings {
    /// Creates an empty timing record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the duration of a stage (overwriting any previous value).
    pub fn record(&mut self, stage: Stage, duration: Duration) {
        self.durations.insert(stage, duration);
    }

    /// Returns the duration of a stage, defaulting to zero.
    pub fn get(&self, stage: Stage) -> Duration {
        self.durations.get(&stage).copied().unwrap_or_default()
    }

    /// Sum of all recorded stages.
    pub fn total(&self) -> Duration {
        self.durations.values().sum()
    }

    /// Builds the modeled timings for a backend given whether the binary was
    /// cold and how long the function body took.
    pub fn modeled(model: &SandboxCostModel, cold_binary: bool, body: Duration) -> Self {
        let mut timings = Self::new();
        for stage in Stage::ALL {
            let mut cost = model.stage_cost(stage, cold_binary);
            if stage == Stage::Execute {
                cost += body.mul_f64(model.compute_slowdown);
            }
            timings.record(stage, cost);
        }
        timings
    }
}

/// A unit of work handed to an isolation backend.
#[derive(Debug, Clone)]
pub struct ExecutionTask {
    /// The function to execute.
    pub artifact: Arc<FunctionArtifact>,
    /// Materialized input sets.
    pub inputs: Vec<DataSet>,
    /// Whether the function binary has to be loaded "from disk" (cold) or is
    /// already cached in memory.
    pub cold_binary: bool,
    /// User-specified execution timeout; exceeding it is a fault.
    pub timeout: Duration,
}

impl ExecutionTask {
    /// Creates a task with a warm binary and a 30 s timeout.
    pub fn new(artifact: Arc<FunctionArtifact>, inputs: Vec<DataSet>) -> Self {
        Self {
            artifact,
            inputs,
            cold_binary: false,
            timeout: Duration::from_secs(30),
        }
    }

    /// Marks the binary as requiring a cold load.
    pub fn with_cold_binary(mut self, cold: bool) -> Self {
        self.cold_binary = cold;
        self
    }

    /// Overrides the execution timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }
}

/// The result of executing a task in a sandbox.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// The function's output sets (one per declared output set).
    pub outputs: Vec<DataSet>,
    /// Wall-clock stage timings measured on this machine.
    pub measured: StageTimings,
    /// Stage timings from the backend's calibrated cost model, used by
    /// virtual-time experiments.
    pub modeled: StageTimings,
    /// Peak bytes committed in the function's memory context.
    pub context_high_water: usize,
    /// Syscalls the function attempted (all stubbed or the last one fatal).
    pub syscall_attempts: Vec<SyscallAttempt>,
}

impl ExecutionReport {
    /// Total measured latency of the invocation.
    pub fn measured_total(&self) -> Duration {
        self.measured.total()
    }

    /// Total modeled latency of the invocation.
    pub fn modeled_total(&self) -> Duration {
        self.modeled.total()
    }
}

/// A mechanism that can execute compute functions in isolation.
pub trait IsolationBackend: Send + Sync {
    /// Which isolation mechanism this backend implements.
    fn kind(&self) -> IsolationKind;

    /// The calibrated cost model for this backend.
    fn cost_model(&self) -> &SandboxCostModel;

    /// Executes one task to completion inside a fresh sandbox.
    fn execute(&self, task: &ExecutionTask) -> DandelionResult<ExecutionReport>;
}

/// Shared staged execution used by all backends.
///
/// The stages deliberately do real work proportional to what the mechanism
/// would do — bytes of the binary and the inputs are really copied into the
/// [`MemoryContext`], the function really runs against a bounded VFS, and the
/// outputs really round-trip through the untrusted output descriptor parser —
/// so that functional behaviour, capacity enforcement and fault paths are
/// genuine even though the absolute stage latencies of the original hardware
/// are modeled.
pub struct StagedExecutor {
    kind: IsolationKind,
    policy: SyscallPolicy,
    cost: SandboxCostModel,
}

impl StagedExecutor {
    /// Creates an executor for a backend.
    pub fn new(kind: IsolationKind, policy: SyscallPolicy, cost: SandboxCostModel) -> Self {
        Self { kind, policy, cost }
    }

    /// The cost model used for modeled timings.
    pub fn cost_model(&self) -> &SandboxCostModel {
        &self.cost
    }

    /// Runs the full sandbox lifecycle for one task.
    pub fn run(&self, task: &ExecutionTask) -> DandelionResult<ExecutionReport> {
        let mut measured = StageTimings::new();
        let artifact = &task.artifact;

        // Stage 1: marshal — validate the task shape.
        let marshal_start = Instant::now();
        if artifact.output_sets.is_empty() {
            return Err(DandelionError::FunctionFault {
                function: artifact.name.clone(),
                reason: "function declares no output sets".to_string(),
            });
        }
        let input_bytes = dandelion_common::data::total_bytes(&task.inputs);
        if input_bytes > artifact.memory_requirement {
            return Err(DandelionError::ContextError(format!(
                "inputs of {} bytes exceed the declared memory requirement of {} bytes",
                input_bytes, artifact.memory_requirement
            )));
        }
        measured.record(Stage::Marshal, marshal_start.elapsed());

        // Stage 2: load — bring the binary into the context.
        let load_start = Instant::now();
        let mut context =
            MemoryContext::new(artifact.memory_requirement + artifact.binary.len() + 4096);
        context.append(&artifact.binary)?;
        measured.record(Stage::Load, load_start.elapsed());

        // Stage 3: transfer input — attach input payloads to the context by
        // reference (the zero-copy data passing of paper §6.1). The bytes
        // stay in the producer's exported region; only capacity accounting
        // happens here. `MemoryContext::transfer_to` remains the portable
        // memcpy fallback for backends that cannot remap.
        let transfer_start = Instant::now();
        for set in &task.inputs {
            for item in &set.items {
                context.import(&item.data)?;
            }
        }
        measured.record(Stage::TransferInput, transfer_start.elapsed());

        // Stage 4: execute — run the body against the bounded VFS.
        let execute_start = Instant::now();
        let mut ctx = FunctionCtx::new(
            task.inputs.clone(),
            artifact.output_sets.clone(),
            artifact.memory_requirement,
            self.policy.clone(),
        )
        .map_err(|err| DandelionError::FunctionFault {
            function: artifact.name.clone(),
            reason: err.to_string(),
        })?;
        let logic = Arc::clone(&artifact.logic);
        let run_result = catch_unwind(AssertUnwindSafe(|| logic.run(&mut ctx)));
        let body_elapsed = execute_start.elapsed();
        measured.record(Stage::Execute, body_elapsed);

        let syscall_attempts = ctx.syscall_attempts().to_vec();
        match run_result {
            Err(_) => {
                return Err(DandelionError::FunctionFault {
                    function: artifact.name.clone(),
                    reason: "function panicked".to_string(),
                })
            }
            Ok(Err(err)) => {
                return Err(DandelionError::FunctionFault {
                    function: artifact.name.clone(),
                    reason: err.to_string(),
                })
            }
            Ok(Ok(())) => {}
        }
        if let Some(fault) = ctx.fault() {
            return Err(DandelionError::FunctionFault {
                function: artifact.name.clone(),
                reason: fault.to_string(),
            });
        }
        if body_elapsed > task.timeout {
            return Err(DandelionError::Timeout {
                function: artifact.name.clone(),
                limit_ms: task.timeout.as_millis() as u64,
            });
        }

        // Stage 5: output — the dlibc exit shim leaves a metadata *frame*
        // (set/item names, keys, payload lengths) in the context; the
        // payload bytes already live in the function's memory and are never
        // re-serialized. The frame is built once in a pooled, exactly sized
        // buffer, attached to the context by reference (counting toward its
        // capacity exactly as writing it there would), and round-tripped
        // through the bounded frame parser; each payload is then attached by
        // reference after checking it against the declared length — so
        // downstream consumers receive views of the producer's buffers, not
        // copies. (The payload-carrying descriptor of `encode_outputs`
        // remains the wire format at the HTTP boundary.)
        let output_start = Instant::now();
        let outputs = ctx.take_outputs();
        let frame = output_parser::encode_frame_shared(&outputs);
        context.import(&frame)?;
        let parsed = output_parser::parse_frame(&frame)?;
        let outputs = attach_frame_payloads(&artifact.name, parsed, outputs, &mut context)?;
        measured.record(Stage::Output, output_start.elapsed());

        // Stage 6: other — context teardown.
        let other_start = Instant::now();
        let high_water = context.high_water_bytes();
        context.clear();
        measured.record(Stage::Other, other_start.elapsed());

        let modeled = StageTimings::modeled(&self.cost, task.cold_binary, body_elapsed);
        Ok(ExecutionReport {
            outputs,
            measured,
            modeled,
            context_high_water: high_water,
            syscall_attempts,
        })
    }

    /// The mechanism this executor models.
    pub fn kind(&self) -> IsolationKind {
        self.kind
    }
}

/// Rebuilds the output sets from a validated frame, attaching each staged
/// payload to the context by reference and checking it against the frame's
/// declared length. Any disagreement between the frame and the staged
/// payloads is a function fault — the shim and the engine must agree on the
/// output layout.
fn attach_frame_payloads(
    function: &str,
    frame: Vec<output_parser::FrameSet>,
    staged: Vec<DataSet>,
    context: &mut MemoryContext,
) -> DandelionResult<Vec<DataSet>> {
    let fault = |reason: String| DandelionError::FunctionFault {
        function: function.to_string(),
        reason,
    };
    if frame.len() != staged.len() {
        return Err(fault(format!(
            "output frame describes {} sets but {} were staged",
            frame.len(),
            staged.len()
        )));
    }
    let mut outputs = Vec::with_capacity(frame.len());
    for (frame_set, staged_set) in frame.into_iter().zip(staged) {
        if frame_set.name != staged_set.name || frame_set.items.len() != staged_set.items.len() {
            return Err(fault(format!(
                "output frame disagrees with staged set `{}`",
                staged_set.name
            )));
        }
        let mut set = DataSet::new(frame_set.name);
        for (frame_item, staged_item) in frame_set.items.into_iter().zip(staged_set.items) {
            if frame_item.data_len != staged_item.data.len() {
                return Err(fault(format!(
                    "output item `{}` declares {} bytes but carries {}",
                    frame_item.name,
                    frame_item.data_len,
                    staged_item.data.len()
                )));
            }
            context.import(&staged_item.data)?;
            set.push(DataItem {
                name: frame_item.name,
                key: frame_item.key,
                data: staged_item.data,
            });
        }
        outputs.push(set);
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi::FunctionCtx;
    use crate::cost::HardwarePlatform;
    use dandelion_common::DataItem;

    fn echo_artifact() -> Arc<FunctionArtifact> {
        Arc::new(FunctionArtifact::new(
            "echo",
            &["out"],
            |ctx: &mut FunctionCtx| {
                let input = ctx.single_input("in")?.clone();
                ctx.push_output("out", DataItem::new("echo", input.data.as_slice().to_vec()))
            },
        ))
    }

    fn executor() -> StagedExecutor {
        StagedExecutor::new(
            IsolationKind::Native,
            SyscallPolicy::permissive(),
            SandboxCostModel::for_backend(IsolationKind::Native, HardwarePlatform::Morello),
        )
    }

    #[test]
    fn executes_a_simple_function() {
        let task = ExecutionTask::new(
            echo_artifact(),
            vec![DataSet::single("in", b"ping".to_vec())],
        );
        let report = executor().run(&task).unwrap();
        assert_eq!(report.outputs.len(), 1);
        assert_eq!(report.outputs[0].items[0].data.as_slice(), b"ping");
        assert!(report.context_high_water > 0);
        assert!(report.measured_total() > Duration::ZERO);
        assert!(report.modeled_total() > Duration::ZERO);
    }

    #[test]
    fn modeled_timings_include_cold_load_penalty() {
        let task = ExecutionTask::new(echo_artifact(), vec![DataSet::single("in", b"x".to_vec())]);
        let warm = executor().run(&task).unwrap();
        let cold = executor()
            .run(&task.clone().with_cold_binary(true))
            .unwrap();
        assert!(cold.modeled.get(Stage::Load) > warm.modeled.get(Stage::Load));
    }

    #[test]
    fn function_errors_become_faults() {
        let failing = Arc::new(FunctionArtifact::new(
            "fail",
            &["out"],
            |_ctx: &mut FunctionCtx| Err("boom".into()),
        ));
        let err = executor()
            .run(&ExecutionTask::new(failing, vec![]))
            .unwrap_err();
        assert!(matches!(err, DandelionError::FunctionFault { .. }));
    }

    #[test]
    fn panics_are_contained() {
        let panicking = Arc::new(FunctionArtifact::new(
            "panic",
            &["out"],
            |_ctx: &mut FunctionCtx| -> Result<(), crate::abi::FunctionError> {
                panic!("user code exploded")
            },
        ));
        let err = executor()
            .run(&ExecutionTask::new(panicking, vec![]))
            .unwrap_err();
        match err {
            DandelionError::FunctionFault { reason, .. } => {
                assert!(reason.contains("panicked"))
            }
            other => panic!("expected fault, got {other}"),
        }
    }

    #[test]
    fn forbidden_syscalls_terminate_the_function() {
        let strict = StagedExecutor::new(
            IsolationKind::Process,
            SyscallPolicy::strict(),
            SandboxCostModel::for_backend(IsolationKind::Process, HardwarePlatform::Morello),
        );
        let nosy = Arc::new(FunctionArtifact::new(
            "nosy",
            &["out"],
            |ctx: &mut FunctionCtx| {
                // A stubbed call is fine...
                let _ = ctx.syscall("mmap");
                // ...but an arbitrary one gets the function killed.
                ctx.syscall("execve").map(|_| ())
            },
        ));
        let err = strict.run(&ExecutionTask::new(nosy, vec![])).unwrap_err();
        assert!(matches!(err, DandelionError::FunctionFault { .. }));
        assert!(err.to_string().contains("execve"));
    }

    #[test]
    fn inputs_exceeding_memory_requirement_are_rejected() {
        let tiny = Arc::new(
            FunctionArtifact::new("tiny", &["out"], |_ctx: &mut FunctionCtx| Ok(()))
                .with_memory_requirement(8),
        );
        let err = executor()
            .run(&ExecutionTask::new(
                tiny,
                vec![DataSet::single("in", vec![0u8; 64])],
            ))
            .unwrap_err();
        assert!(matches!(err, DandelionError::ContextError(_)));
    }

    #[test]
    fn timeouts_are_reported() {
        let slow = Arc::new(FunctionArtifact::new(
            "slow",
            &["out"],
            |_ctx: &mut FunctionCtx| {
                std::thread::sleep(Duration::from_millis(20));
                Ok(())
            },
        ));
        let err = executor()
            .run(&ExecutionTask::new(slow, vec![]).with_timeout(Duration::from_millis(1)))
            .unwrap_err();
        assert!(matches!(err, DandelionError::Timeout { .. }));
    }

    #[test]
    fn stage_timings_cover_all_stages() {
        let task = ExecutionTask::new(
            echo_artifact(),
            vec![DataSet::single("in", b"ping".to_vec())],
        );
        let report = executor().run(&task).unwrap();
        for stage in Stage::ALL {
            // Modeled timings always have an entry for every stage.
            assert!(report.modeled.get(stage) > Duration::ZERO, "{stage:?}");
        }
    }
}
