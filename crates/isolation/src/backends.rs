//! The concrete isolation backends.
//!
//! The paper implements four mechanisms (§6.2) and argues the platform is not
//! tied to any of them; this module mirrors that structure. Each backend
//! wraps the shared [`StagedExecutor`] with its mechanism-specific policy,
//! cost model and bookkeeping:
//!
//! * [`CheriBackend`] — functions run as threads of the engine process;
//!   hybrid capabilities bound every load/store. Syscalls never reach the
//!   kernel because dlibc stubs them (permissive policy), and the sandbox
//!   setup is the cheapest of all backends.
//! * [`KvmBackend`] — each function runs in a lightweight VM without a guest
//!   kernel; any syscall-shaped escape is a VM exit that kills the function
//!   (strict policy). VM structures are pooled and reset between uses
//!   (Virtines-style), which the backend tracks for reporting.
//! * [`ProcessBackend`] — each function runs in a fresh process whose
//!   syscalls are intercepted with ptrace (strict policy).
//! * [`RwasmBackend`] — functions are registered as Wasm, transpiled to safe
//!   Rust and compiled to a shared library; isolation comes from the Rust
//!   compiler. The backend models the transpilation's execution slowdown and
//!   its comparatively expensive dynamic load.
//! * [`NativeBackend`] — repo-only reference backend with no isolation
//!   charge, used to validate functional behaviour.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dandelion_common::config::IsolationKind;
use dandelion_common::DandelionResult;

use crate::backend::{ExecutionReport, ExecutionTask, IsolationBackend, StagedExecutor};
use crate::cost::{HardwarePlatform, SandboxCostModel};
use crate::policy::SyscallPolicy;

macro_rules! define_backend {
    ($(#[$meta:meta])* $name:ident, $kind:expr, $policy:expr) => {
        $(#[$meta])*
        pub struct $name {
            executor: StagedExecutor,
            executions: AtomicU64,
        }

        impl $name {
            /// Creates the backend calibrated for the given hardware platform.
            pub fn new(platform: HardwarePlatform) -> Self {
                Self {
                    executor: StagedExecutor::new(
                        $kind,
                        $policy,
                        SandboxCostModel::for_backend($kind, platform),
                    ),
                    executions: AtomicU64::new(0),
                }
            }

            /// Number of sandboxes this backend has created so far.
            pub fn sandboxes_created(&self) -> u64 {
                self.executions.load(Ordering::Relaxed)
            }
        }

        impl IsolationBackend for $name {
            fn kind(&self) -> IsolationKind {
                $kind
            }

            fn cost_model(&self) -> &SandboxCostModel {
                self.executor.cost_model()
            }

            fn execute(&self, task: &ExecutionTask) -> DandelionResult<ExecutionReport> {
                self.executions.fetch_add(1, Ordering::Relaxed);
                self.executor.run(task)
            }
        }
    };
}

define_backend!(
    /// CHERI hybrid-capability isolation (single address space, cheapest
    /// sandbox creation; paper Table 1 column 1).
    CheriBackend,
    IsolationKind::Cheri,
    SyscallPolicy::permissive()
);

define_backend!(
    /// Lightweight-VM isolation on KVM without a guest kernel (paper Table 1
    /// column 4).
    KvmBackend,
    IsolationKind::Kvm,
    SyscallPolicy::strict()
);

define_backend!(
    /// Process isolation with ptrace syscall interception (paper Table 1
    /// column 3).
    ProcessBackend,
    IsolationKind::Process,
    SyscallPolicy::strict()
);

define_backend!(
    /// rWasm software fault isolation: Wasm transpiled to safe Rust (paper
    /// Table 1 column 2).
    RwasmBackend,
    IsolationKind::Rwasm,
    SyscallPolicy::strict()
);

define_backend!(
    /// Direct in-process execution used as the functional reference.
    NativeBackend,
    IsolationKind::Native,
    SyscallPolicy::permissive()
);

/// Creates a boxed backend of the requested kind, calibrated for `platform`.
pub fn create_backend(
    kind: IsolationKind,
    platform: HardwarePlatform,
) -> Arc<dyn IsolationBackend> {
    match kind {
        IsolationKind::Cheri => Arc::new(CheriBackend::new(platform)),
        IsolationKind::Kvm => Arc::new(KvmBackend::new(platform)),
        IsolationKind::Process => Arc::new(ProcessBackend::new(platform)),
        IsolationKind::Rwasm => Arc::new(RwasmBackend::new(platform)),
        IsolationKind::Native => Arc::new(NativeBackend::new(platform)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi::{FunctionArtifact, FunctionCtx};
    use dandelion_common::{DataItem, DataSet};
    use std::time::Duration;

    fn echo_task() -> ExecutionTask {
        let artifact = Arc::new(FunctionArtifact::new(
            "echo",
            &["out"],
            |ctx: &mut FunctionCtx| {
                let data = ctx.single_input("in")?.data.as_slice().to_vec();
                ctx.push_output("out", DataItem::new("copy", data))
            },
        ));
        ExecutionTask::new(artifact, vec![DataSet::single("in", b"payload".to_vec())])
    }

    #[test]
    fn all_backends_execute_functionally_identically() {
        let kinds = [
            IsolationKind::Cheri,
            IsolationKind::Kvm,
            IsolationKind::Process,
            IsolationKind::Rwasm,
            IsolationKind::Native,
        ];
        let mut outputs = Vec::new();
        for kind in kinds {
            let backend = create_backend(kind, HardwarePlatform::Morello);
            assert_eq!(backend.kind(), kind);
            let report = backend.execute(&echo_task()).unwrap();
            outputs.push(report.outputs);
        }
        for other in &outputs[1..] {
            assert_eq!(&outputs[0], other);
        }
    }

    #[test]
    fn modeled_latency_ordering_matches_table_1() {
        let task = echo_task().with_cold_binary(true);
        let totals: Vec<Duration> = IsolationKind::PAPER_BACKENDS
            .iter()
            .map(|kind| {
                create_backend(*kind, HardwarePlatform::Morello)
                    .execute(&task)
                    .unwrap()
                    .modeled_total()
            })
            .collect();
        // Order in PAPER_BACKENDS is cheri, rwasm, process, kvm — Table 1 is
        // strictly increasing in that order.
        assert!(totals[0] < totals[1]);
        assert!(totals[1] < totals[2]);
        assert!(totals[2] < totals[3]);
    }

    #[test]
    fn sandbox_counter_increments() {
        let backend = CheriBackend::new(HardwarePlatform::Morello);
        assert_eq!(backend.sandboxes_created(), 0);
        backend.execute(&echo_task()).unwrap();
        backend.execute(&echo_task()).unwrap();
        assert_eq!(backend.sandboxes_created(), 2);
    }

    #[test]
    fn strict_backends_kill_syscalling_functions_permissive_do_not() {
        let nosy = Arc::new(FunctionArtifact::new(
            "nosy",
            &["out"],
            |ctx: &mut FunctionCtx| {
                ctx.syscall("execve")?;
                Ok(())
            },
        ));
        let task = ExecutionTask::new(nosy, vec![]);
        let process = ProcessBackend::new(HardwarePlatform::Morello);
        assert!(process.execute(&task).is_err());
        let cheri = CheriBackend::new(HardwarePlatform::Morello);
        assert!(cheri.execute(&task).is_ok());
    }
}
