//! Bounded, contiguous memory contexts.
//!
//! A *memory context* is the dispatcher's abstraction for the memory a
//! function uses during execution (paper §5): a bounded contiguous region
//! with methods to read and write at offsets and to transfer data to other
//! contexts. The maximum size is the memory requirement declared when the
//! function was registered; physical pages are only committed as data is
//! written, which is what makes Dandelion's per-request memory footprint so
//! small in the Azure-trace experiment (Figure 10).

use dandelion_common::{ContextId, DandelionError, DandelionResult};

/// A bounded, contiguous memory region owned by one function instance.
#[derive(Debug)]
pub struct MemoryContext {
    id: ContextId,
    /// Backing storage; grows lazily up to `capacity`.
    bytes: Vec<u8>,
    /// Maximum size of the region (the user-declared memory requirement).
    capacity: usize,
    /// High-water mark of bytes ever committed, for accounting.
    high_water: usize,
}

impl MemoryContext {
    /// Creates a context with the given capacity. No memory is committed
    /// until data is written (mirroring demand paging).
    pub fn new(capacity: usize) -> Self {
        Self {
            id: ContextId::next(),
            bytes: Vec::new(),
            capacity,
            high_water: 0,
        }
    }

    /// The context identifier.
    pub fn id(&self) -> ContextId {
        self.id
    }

    /// The maximum size of the context in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently committed (the extent of data written so far).
    pub fn committed_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Highest number of bytes that were ever committed in this context.
    pub fn high_water_bytes(&self) -> usize {
        self.high_water
    }

    fn ensure_len(&mut self, required: usize) -> DandelionResult<()> {
        if required > self.capacity {
            return Err(DandelionError::ContextError(format!(
                "write of {} bytes exceeds context capacity of {} bytes",
                required, self.capacity
            )));
        }
        if required > self.bytes.len() {
            self.bytes.resize(required, 0);
            self.high_water = self.high_water.max(required);
        }
        Ok(())
    }

    /// Writes `data` at `offset`, committing pages as needed.
    pub fn write(&mut self, offset: usize, data: &[u8]) -> DandelionResult<()> {
        let end = offset
            .checked_add(data.len())
            .ok_or_else(|| DandelionError::ContextError("offset overflow".to_string()))?;
        self.ensure_len(end)?;
        self.bytes[offset..end].copy_from_slice(data);
        Ok(())
    }

    /// Appends `data` at the current commit extent and returns its offset.
    pub fn append(&mut self, data: &[u8]) -> DandelionResult<usize> {
        let offset = self.bytes.len();
        self.write(offset, data)?;
        Ok(offset)
    }

    /// Reads `len` bytes starting at `offset`.
    pub fn read(&self, offset: usize, len: usize) -> DandelionResult<&[u8]> {
        let end = offset
            .checked_add(len)
            .ok_or_else(|| DandelionError::ContextError("offset overflow".to_string()))?;
        if end > self.bytes.len() {
            return Err(DandelionError::ContextError(format!(
                "read of {len} bytes at offset {offset} is out of bounds (committed {})",
                self.bytes.len()
            )));
        }
        Ok(&self.bytes[offset..end])
    }

    /// Returns the whole committed region.
    pub fn committed(&self) -> &[u8] {
        &self.bytes
    }

    /// Copies a range from this context into another context.
    ///
    /// This is the primitive the dispatcher uses to move a finished
    /// function's outputs into the inputs of a waiting function (paper §6.1,
    /// "Data passing"). Different backends could replace the copy with
    /// remapping; the copy is the portable default.
    pub fn transfer_to(
        &self,
        destination: &mut MemoryContext,
        source_offset: usize,
        length: usize,
        destination_offset: usize,
    ) -> DandelionResult<()> {
        let data = self.read(source_offset, length)?.to_vec();
        destination.write(destination_offset, &data)
    }

    /// Releases all committed memory while keeping the capacity reservation.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.bytes.shrink_to_fit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_and_read_roundtrip() {
        let mut context = MemoryContext::new(1024);
        assert_eq!(context.committed_bytes(), 0);
        context.write(10, b"hello").unwrap();
        assert_eq!(context.committed_bytes(), 15);
        assert_eq!(context.read(10, 5).unwrap(), b"hello");
        // The gap before the write reads as zeros.
        assert_eq!(context.read(0, 10).unwrap(), &[0u8; 10]);
    }

    #[test]
    fn append_returns_offsets() {
        let mut context = MemoryContext::new(64);
        let first = context.append(b"abc").unwrap();
        let second = context.append(b"defg").unwrap();
        assert_eq!(first, 0);
        assert_eq!(second, 3);
        assert_eq!(context.read(0, 7).unwrap(), b"abcdefg");
    }

    #[test]
    fn capacity_is_enforced() {
        let mut context = MemoryContext::new(8);
        assert!(context.write(0, &[0u8; 8]).is_ok());
        let err = context.write(1, &[0u8; 8]).unwrap_err();
        assert!(matches!(err, DandelionError::ContextError(_)));
        let err = context.append(&[0u8; 1]).unwrap_err();
        assert!(matches!(err, DandelionError::ContextError(_)));
    }

    #[test]
    fn out_of_bounds_reads_fail() {
        let mut context = MemoryContext::new(64);
        context.write(0, b"data").unwrap();
        assert!(context.read(0, 5).is_err());
        assert!(context.read(100, 1).is_err());
        assert!(context.read(usize::MAX, 2).is_err());
    }

    #[test]
    fn transfer_between_contexts() {
        let mut source = MemoryContext::new(64);
        let mut destination = MemoryContext::new(64);
        source.write(0, b"transfer me").unwrap();
        source.transfer_to(&mut destination, 9, 2, 5).unwrap();
        assert_eq!(destination.read(5, 2).unwrap(), b"me");
        assert!(source.transfer_to(&mut destination, 60, 10, 0).is_err());
    }

    #[test]
    fn clear_releases_memory_but_keeps_high_water() {
        let mut context = MemoryContext::new(1024);
        context.write(0, &[1u8; 512]).unwrap();
        assert_eq!(context.high_water_bytes(), 512);
        context.clear();
        assert_eq!(context.committed_bytes(), 0);
        assert_eq!(context.high_water_bytes(), 512);
        assert_eq!(context.capacity(), 1024);
    }

    #[test]
    fn ids_are_unique() {
        let a = MemoryContext::new(1);
        let b = MemoryContext::new(1);
        assert_ne!(a.id(), b.id());
    }
}
