//! Bounded, contiguous memory contexts.
//!
//! A *memory context* is the dispatcher's abstraction for the memory a
//! function uses during execution (paper §5): a bounded contiguous region
//! with methods to read and write at offsets and to transfer data to other
//! contexts. The maximum size is the memory requirement declared when the
//! function was registered; physical pages are only committed as data is
//! written, which is what makes Dandelion's per-request memory footprint so
//! small in the Azure-trace experiment (Figure 10).
//!
//! # Zero-copy data passing
//!
//! Composition edges move data between contexts by reference, not by copy
//! (paper §6.1, "Data passing"): [`MemoryContext::export`] freezes the
//! context's own region and hands out [`SharedBytes`] views of it, and
//! [`MemoryContext::import`] attaches a producer's exported view to a
//! consumer context without copying — modeling the page remapping the real
//! backends perform. The explicit byte copy survives only as the documented
//! portable fallback, [`MemoryContext::transfer_to`], and as copy-on-write
//! when a frozen region with outstanding views is written again.

//!
//! # Pooled arenas
//!
//! Sandbox setup/teardown is the per-invocation hot path, so a context's
//! own region is drawn from the process-wide
//! [`BufferPool`](dandelion_common::pool::BufferPool) instead of the global
//! allocator: the first committed write acquires a pooled arena, and
//! [`MemoryContext::clear`] (or dropping the context) recycles it — including
//! a frozen region whose exported views have all been dropped. Steady-state
//! invocation turnover therefore allocates nothing. Regions above the
//! largest pool class fall back to plain allocation transparently.

use std::sync::Arc;

use dandelion_common::pool::BufferPool;
use dandelion_common::{ContextId, DandelionError, DandelionResult, SharedBytes};

/// The context's own region: writable until the first export, then frozen so
/// outstanding views stay valid while the context is reused.
#[derive(Debug)]
enum Backing {
    /// Writable storage; grows lazily up to the capacity.
    Mutable(Vec<u8>),
    /// Frozen storage produced by an export; downstream contexts may hold
    /// views of it.
    Frozen(SharedBytes),
}

impl Backing {
    fn len(&self) -> usize {
        match self {
            Backing::Mutable(bytes) => bytes.len(),
            Backing::Frozen(shared) => shared.len(),
        }
    }

    fn as_slice(&self) -> &[u8] {
        match self {
            Backing::Mutable(bytes) => bytes,
            Backing::Frozen(shared) => shared.as_slice(),
        }
    }
}

/// A bounded, contiguous memory region owned by one function instance, plus
/// the read-only regions imported from other contexts.
#[derive(Debug)]
pub struct MemoryContext {
    id: ContextId,
    /// The context's own region.
    backing: Backing,
    /// Regions attached by [`MemoryContext::import`]; they count toward the
    /// capacity but are never copied.
    imports: Vec<SharedBytes>,
    /// Sum of the imported regions' lengths.
    imported_bytes: usize,
    /// Maximum size of the context (the user-declared memory requirement),
    /// covering the own region and all imports.
    capacity: usize,
    /// High-water mark of bytes ever committed or imported, for accounting.
    high_water: usize,
    /// The pool the own region is drawn from and recycled to; `None` means
    /// every arena comes from the global allocator.
    pool: Option<Arc<BufferPool>>,
}

impl MemoryContext {
    /// Creates a context with the given capacity. No memory is committed
    /// until data is written (mirroring demand paging); the arena backing
    /// the committed region comes from the global buffer pool.
    pub fn new(capacity: usize) -> Self {
        Self::with_pool_handle(capacity, Some(Arc::clone(BufferPool::global())))
    }

    /// Creates a context whose arena always comes from the global allocator,
    /// bypassing the buffer pool. This is the pre-pooling reference
    /// behaviour, kept for benchmark baselines and allocator-sensitivity
    /// tests.
    pub fn new_unpooled(capacity: usize) -> Self {
        Self::with_pool_handle(capacity, None)
    }

    /// Creates a context drawing its arena from a specific pool (tests use
    /// private pools to observe recycling deterministically).
    pub fn with_pool(capacity: usize, pool: Arc<BufferPool>) -> Self {
        Self::with_pool_handle(capacity, Some(pool))
    }

    fn with_pool_handle(capacity: usize, pool: Option<Arc<BufferPool>>) -> Self {
        Self {
            id: ContextId::next(),
            backing: Backing::Mutable(Vec::new()),
            imports: Vec::new(),
            imported_bytes: 0,
            capacity,
            high_water: 0,
            pool,
        }
    }

    /// The context identifier.
    pub fn id(&self) -> ContextId {
        self.id
    }

    /// The maximum size of the context in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently committed in the context's own region.
    pub fn committed_bytes(&self) -> usize {
        self.backing.len()
    }

    /// Bytes attached by zero-copy imports.
    pub fn imported_bytes(&self) -> usize {
        self.imported_bytes
    }

    /// Highest number of bytes (committed + imported) this context ever
    /// held.
    pub fn high_water_bytes(&self) -> usize {
        self.high_water
    }

    /// Makes the own region writable again after an export.
    ///
    /// When no views of the frozen region are outstanding the buffer is
    /// reclaimed without copying; otherwise the visible bytes are copied
    /// once (copy-on-write — the documented fallback that keeps exported
    /// views immutable).
    fn make_mutable(&mut self) -> &mut Vec<u8> {
        if matches!(self.backing, Backing::Frozen(_)) {
            // Move the frozen view out before trying to unwrap it, so the
            // context's own reference does not keep the Arc count above one.
            let Backing::Frozen(shared) =
                std::mem::replace(&mut self.backing, Backing::Mutable(Vec::new()))
            else {
                unreachable!("matched above");
            };
            self.backing = match shared.try_unwrap_whole() {
                Ok(vec) => Backing::Mutable(vec),
                Err(shared) => {
                    // Copy-on-write into a fresh (pooled) arena: outstanding
                    // views keep the frozen buffer alive.
                    let mut vec = match &self.pool {
                        Some(pool) => pool.acquire_vec(shared.len()),
                        None => Vec::with_capacity(shared.len()),
                    };
                    vec.extend_from_slice(shared.as_slice());
                    Backing::Mutable(vec)
                }
            };
        }
        match &mut self.backing {
            Backing::Mutable(bytes) => bytes,
            Backing::Frozen(_) => unreachable!("unfrozen above"),
        }
    }

    fn ensure_len(&mut self, required: usize) -> DandelionResult<()> {
        let total = required
            .checked_add(self.imported_bytes)
            .ok_or_else(|| DandelionError::ContextError("offset overflow".to_string()))?;
        if total > self.capacity {
            return Err(DandelionError::ContextError(format!(
                "write of {} bytes exceeds context capacity of {} bytes ({} bytes imported)",
                required, self.capacity, self.imported_bytes
            )));
        }
        if required > self.backing.len() {
            let pool = self.pool.clone();
            let bytes = self.make_mutable();
            if let Some(pool) = &pool {
                if bytes.capacity() == 0 {
                    // First committed write: draw the arena from the pool
                    // instead of the global allocator.
                    *bytes = pool.acquire_vec(required);
                }
            }
            bytes.resize(required, 0);
            self.high_water = self.high_water.max(total);
        }
        Ok(())
    }

    /// Writes `data` at `offset`, committing pages as needed.
    pub fn write(&mut self, offset: usize, data: &[u8]) -> DandelionResult<()> {
        let end = offset
            .checked_add(data.len())
            .ok_or_else(|| DandelionError::ContextError("offset overflow".to_string()))?;
        self.ensure_len(end)?;
        self.make_mutable()[offset..end].copy_from_slice(data);
        Ok(())
    }

    /// Appends `data` at the current commit extent and returns its offset.
    pub fn append(&mut self, data: &[u8]) -> DandelionResult<usize> {
        let offset = self.backing.len();
        self.write(offset, data)?;
        Ok(offset)
    }

    /// Reads `len` bytes starting at `offset` of the context's own region.
    pub fn read(&self, offset: usize, len: usize) -> DandelionResult<&[u8]> {
        let end = offset
            .checked_add(len)
            .ok_or_else(|| DandelionError::ContextError("offset overflow".to_string()))?;
        if end > self.backing.len() {
            return Err(DandelionError::ContextError(format!(
                "read of {len} bytes at offset {offset} is out of bounds (committed {})",
                self.backing.len()
            )));
        }
        Ok(&self.backing.as_slice()[offset..end])
    }

    /// Returns the whole committed region.
    pub fn committed(&self) -> &[u8] {
        self.backing.as_slice()
    }

    /// Exports a range of the context's own region as a zero-copy view.
    ///
    /// The first export freezes the region (a move, not a copy); further
    /// exports slice the same frozen buffer. Exported views remain valid
    /// after [`MemoryContext::clear`], which is how a finished function's
    /// outputs outlive its context without being copied. Writing to the
    /// context after an export falls back to copy-on-write only while views
    /// are outstanding.
    pub fn export(&mut self, offset: usize, len: usize) -> DandelionResult<SharedBytes> {
        let end = offset
            .checked_add(len)
            .ok_or_else(|| DandelionError::ContextError("offset overflow".to_string()))?;
        if end > self.backing.len() {
            return Err(DandelionError::ContextError(format!(
                "export of {len} bytes at offset {offset} is out of bounds (committed {})",
                self.backing.len()
            )));
        }
        if let Backing::Mutable(bytes) = &mut self.backing {
            let frozen = SharedBytes::from_vec(std::mem::take(bytes));
            self.backing = Backing::Frozen(frozen);
        }
        match &self.backing {
            Backing::Frozen(shared) => Ok(shared.slice(offset..end)),
            Backing::Mutable(_) => unreachable!("frozen above"),
        }
    }

    /// Attaches another context's exported region to this context without
    /// copying, returning the import's region index.
    ///
    /// The imported bytes count toward this context's capacity exactly as a
    /// copy would have, so memory accounting is unchanged — only the memcpy
    /// is gone.
    pub fn import(&mut self, data: &SharedBytes) -> DandelionResult<usize> {
        let total = self
            .backing
            .len()
            .checked_add(self.imported_bytes)
            .and_then(|used| used.checked_add(data.len()))
            .ok_or_else(|| DandelionError::ContextError("import overflow".to_string()))?;
        if total > self.capacity {
            return Err(DandelionError::ContextError(format!(
                "import of {} bytes exceeds context capacity of {} bytes ({} bytes in use)",
                data.len(),
                self.capacity,
                self.backing.len() + self.imported_bytes
            )));
        }
        self.imports.push(data.clone());
        self.imported_bytes += data.len();
        self.high_water = self.high_water.max(total);
        Ok(self.imports.len() - 1)
    }

    /// Returns an imported region by index.
    pub fn imported(&self, index: usize) -> Option<&SharedBytes> {
        self.imports.get(index)
    }

    /// Copies a range from this context into another context.
    ///
    /// This is the portable *fallback* for moving a finished function's
    /// outputs into the inputs of a waiting function (paper §6.1, "Data
    /// passing"): backends that cannot remap regions do one copy here.
    /// The zero-copy path is [`MemoryContext::export`] on the producer plus
    /// [`MemoryContext::import`] on the consumer.
    pub fn transfer_to(
        &self,
        destination: &mut MemoryContext,
        source_offset: usize,
        length: usize,
        destination_offset: usize,
    ) -> DandelionResult<()> {
        let data = self.read(source_offset, length)?;
        destination.write(destination_offset, data)
    }

    /// Releases committed memory and detaches imports while keeping the
    /// capacity reservation. Views handed out by [`MemoryContext::export`]
    /// keep the frozen buffer alive independently.
    ///
    /// A pooled context recycles its arena here — including a frozen region
    /// whose exported views have all been dropped — so sandbox teardown
    /// feeds the next sandbox's setup instead of the global allocator.
    pub fn clear(&mut self) {
        self.reclaim_backing();
        self.imports.clear();
        self.imported_bytes = 0;
    }

    /// Replaces the backing with an empty region, returning the old arena
    /// to the buffer pool when possible.
    fn reclaim_backing(&mut self) {
        let backing = std::mem::replace(&mut self.backing, Backing::Mutable(Vec::new()));
        let Some(pool) = &self.pool else {
            return;
        };
        match backing {
            Backing::Mutable(vec) => pool.recycle_vec(vec),
            Backing::Frozen(shared) => {
                // Recycles only when no exported views remain; otherwise the
                // views keep the buffer alive and it is freed with the last
                // of them.
                if let Ok(vec) = shared.try_unwrap_whole() {
                    pool.recycle_vec(vec);
                }
            }
        }
    }
}

impl Drop for MemoryContext {
    fn drop(&mut self) {
        self.reclaim_backing();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_and_read_roundtrip() {
        let mut context = MemoryContext::new(1024);
        assert_eq!(context.committed_bytes(), 0);
        context.write(10, b"hello").unwrap();
        assert_eq!(context.committed_bytes(), 15);
        assert_eq!(context.read(10, 5).unwrap(), b"hello");
        // The gap before the write reads as zeros.
        assert_eq!(context.read(0, 10).unwrap(), &[0u8; 10]);
    }

    #[test]
    fn append_returns_offsets() {
        let mut context = MemoryContext::new(64);
        let first = context.append(b"abc").unwrap();
        let second = context.append(b"defg").unwrap();
        assert_eq!(first, 0);
        assert_eq!(second, 3);
        assert_eq!(context.read(0, 7).unwrap(), b"abcdefg");
    }

    #[test]
    fn capacity_is_enforced() {
        let mut context = MemoryContext::new(8);
        assert!(context.write(0, &[0u8; 8]).is_ok());
        let err = context.write(1, &[0u8; 8]).unwrap_err();
        assert!(matches!(err, DandelionError::ContextError(_)));
        let err = context.append(&[0u8; 1]).unwrap_err();
        assert!(matches!(err, DandelionError::ContextError(_)));
    }

    #[test]
    fn out_of_bounds_reads_fail() {
        let mut context = MemoryContext::new(64);
        context.write(0, b"data").unwrap();
        assert!(context.read(0, 5).is_err());
        assert!(context.read(100, 1).is_err());
        assert!(context.read(usize::MAX, 2).is_err());
    }

    #[test]
    fn transfer_between_contexts() {
        let mut source = MemoryContext::new(64);
        let mut destination = MemoryContext::new(64);
        source.write(0, b"transfer me").unwrap();
        source.transfer_to(&mut destination, 9, 2, 5).unwrap();
        assert_eq!(destination.read(5, 2).unwrap(), b"me");
        assert!(source.transfer_to(&mut destination, 60, 10, 0).is_err());
    }

    #[test]
    fn export_hands_out_views_without_copying() {
        let mut context = MemoryContext::new(64);
        context.append(b"prefix|payload").unwrap();
        let payload = context.export(7, 7).unwrap();
        assert_eq!(payload, b"payload");
        let again = context.export(0, 6).unwrap();
        assert_eq!(again, b"prefix");
        // Both exports are windows of the same frozen buffer.
        assert!(SharedBytes::same_buffer(&payload, &again));
        // The region is still readable after freezing.
        assert_eq!(context.read(0, 6).unwrap(), b"prefix");
        assert!(context.export(10, 10).is_err());
    }

    #[test]
    fn exported_views_survive_clear() {
        let mut context = MemoryContext::new(64);
        context.append(b"outlive").unwrap();
        let view = context.export(0, 7).unwrap();
        context.clear();
        assert_eq!(context.committed_bytes(), 0);
        assert_eq!(view, b"outlive");
    }

    #[test]
    fn writes_after_export_do_not_disturb_views() {
        let mut context = MemoryContext::new(64);
        context.append(b"original").unwrap();
        let view = context.export(0, 8).unwrap();
        // Copy-on-write: the outstanding view keeps its bytes.
        context.write(0, b"REWRITTEN").unwrap();
        assert_eq!(view, b"original");
        assert_eq!(context.read(0, 9).unwrap(), b"REWRITTEN");
    }

    #[test]
    fn unfreezing_without_outstanding_views_avoids_the_copy() {
        let mut context = MemoryContext::new(64);
        context.append(b"transient").unwrap();
        drop(context.export(0, 9).unwrap());
        // No views remain, so the buffer is reclaimed and writable again.
        context.append(b"+more").unwrap();
        assert_eq!(context.read(0, 14).unwrap(), b"transient+more");
    }

    #[test]
    fn import_attaches_views_and_counts_capacity() {
        let mut producer = MemoryContext::new(64);
        producer.append(b"shared payload").unwrap();
        let exported = producer.export(0, 14).unwrap();

        let mut consumer = MemoryContext::new(20);
        let region = consumer.import(&exported).unwrap();
        assert_eq!(consumer.imported_bytes(), 14);
        assert_eq!(consumer.high_water_bytes(), 14);
        // The attached region is the producer's buffer, not a copy.
        assert!(SharedBytes::same_buffer(
            consumer.imported(region).unwrap(),
            &exported
        ));
        // Imports count toward the capacity: 14 imported + 7 written > 20.
        let err = consumer.append(&[0u8; 7]).unwrap_err();
        assert!(matches!(err, DandelionError::ContextError(_)));
        assert!(consumer.append(&[0u8; 6]).is_ok());
        // A second import beyond the capacity is rejected too.
        assert!(consumer.import(&exported).is_err());
    }

    #[test]
    fn huge_write_offsets_with_imports_fail_cleanly() {
        let mut producer = MemoryContext::new(64);
        producer.append(b"0123456789").unwrap();
        let exported = producer.export(0, 10).unwrap();
        let mut consumer = MemoryContext::new(64);
        consumer.import(&exported).unwrap();
        // required + imported_bytes would overflow; must be a typed error,
        // not a panic or a wrapped-around capacity bypass.
        let err = consumer.write(usize::MAX - 3, &[0u8; 1]).unwrap_err();
        assert!(matches!(err, DandelionError::ContextError(_)));
    }

    #[test]
    fn clear_releases_memory_but_keeps_high_water() {
        let mut context = MemoryContext::new(1024);
        context.write(0, &[1u8; 512]).unwrap();
        assert_eq!(context.high_water_bytes(), 512);
        context.clear();
        assert_eq!(context.committed_bytes(), 0);
        assert_eq!(context.imported_bytes(), 0);
        assert_eq!(context.high_water_bytes(), 512);
        assert_eq!(context.capacity(), 1024);
    }

    #[test]
    fn cleared_contexts_recycle_their_arena() {
        // First context commits an arena, clears, and the next context gets
        // the very same allocation back from the (private) pool.
        let pool = Arc::new(BufferPool::new());
        let mut first = MemoryContext::with_pool(64 * 1024, Arc::clone(&pool));
        first.write(0, &[1u8; 8 * 1024]).unwrap();
        let arena_ptr = first.committed().as_ptr();
        first.clear();
        assert_eq!(pool.stats().recycled, 1);

        let mut second = MemoryContext::with_pool(64 * 1024, Arc::clone(&pool));
        second.write(0, &[2u8; 8 * 1024]).unwrap();
        assert_eq!(
            second.committed().as_ptr(),
            arena_ptr,
            "the recycled arena must be reused"
        );
        assert_eq!(pool.stats().reuses, 1);
        // Recycled arenas are cleared: reads past the new commit extent fail
        // instead of exposing the previous context's bytes.
        assert!(second.read(8 * 1024, 1).is_err());
    }

    #[test]
    fn dropping_a_context_recycles_like_clear() {
        let pool = Arc::new(BufferPool::new());
        let arena_ptr = {
            let mut context = MemoryContext::with_pool(64 * 1024, Arc::clone(&pool));
            context.write(0, &[3u8; 4 * 1024]).unwrap();
            context.committed().as_ptr()
        };
        assert_eq!(pool.stats().recycled, 1);
        let mut next = MemoryContext::with_pool(64 * 1024, Arc::clone(&pool));
        next.write(0, &[4u8; 4 * 1024]).unwrap();
        assert_eq!(next.committed().as_ptr(), arena_ptr);
    }

    #[test]
    fn outstanding_views_block_recycling() {
        let pool = Arc::new(BufferPool::new());
        let mut context = MemoryContext::with_pool(64 * 1024, Arc::clone(&pool));
        context.append(&[5u8; 4 * 1024]).unwrap();
        let view = context.export(0, 4 * 1024).unwrap();
        context.clear();
        // The exported view still owns the old arena, so nothing flowed back
        // to the pool.
        assert_eq!(view[0], 5);
        assert_eq!(pool.stats().recycled, 0);
        assert_eq!(pool.pooled_buffers(), 0);
        // Once the last view drops, the arena is simply freed (not pooled —
        // ownership already left the context).
        drop(view);
        assert_eq!(pool.pooled_buffers(), 0);
    }

    #[test]
    fn exports_without_views_recycle_on_clear() {
        let pool = Arc::new(BufferPool::new());
        let mut context = MemoryContext::with_pool(64 * 1024, Arc::clone(&pool));
        context.append(&[8u8; 4 * 1024]).unwrap();
        drop(context.export(0, 4 * 1024).unwrap());
        // The region is frozen but no views remain: clear reclaims the
        // buffer into the pool.
        context.clear();
        assert_eq!(pool.stats().recycled, 1);
    }

    #[test]
    fn unpooled_contexts_bypass_the_pool() {
        let mut context = MemoryContext::new_unpooled(64 * 1024);
        context.write(0, &[7u8; 8 * 1024]).unwrap();
        assert!(context.pool.is_none());
        context.clear();
        assert_eq!(context.read(0, 1).ok(), None);
    }

    #[test]
    fn ids_are_unique() {
        let a = MemoryContext::new(1);
        let b = MemoryContext::new(1);
        assert_ne!(a.id(), b.id());
    }
}
