//! Bounded, contiguous memory contexts.
//!
//! A *memory context* is the dispatcher's abstraction for the memory a
//! function uses during execution (paper §5): a bounded contiguous region
//! with methods to read and write at offsets and to transfer data to other
//! contexts. The maximum size is the memory requirement declared when the
//! function was registered; physical pages are only committed as data is
//! written, which is what makes Dandelion's per-request memory footprint so
//! small in the Azure-trace experiment (Figure 10).
//!
//! # Zero-copy data passing
//!
//! Composition edges move data between contexts by reference, not by copy
//! (paper §6.1, "Data passing"): [`MemoryContext::export`] freezes the
//! context's own region and hands out [`SharedBytes`] views of it, and
//! [`MemoryContext::import`] attaches a producer's exported view to a
//! consumer context without copying — modeling the page remapping the real
//! backends perform. The explicit byte copy survives only as the documented
//! portable fallback, [`MemoryContext::transfer_to`], and as copy-on-write
//! when a frozen region with outstanding views is written again.

use dandelion_common::{ContextId, DandelionError, DandelionResult, SharedBytes};

/// The context's own region: writable until the first export, then frozen so
/// outstanding views stay valid while the context is reused.
#[derive(Debug)]
enum Backing {
    /// Writable storage; grows lazily up to the capacity.
    Mutable(Vec<u8>),
    /// Frozen storage produced by an export; downstream contexts may hold
    /// views of it.
    Frozen(SharedBytes),
}

impl Backing {
    fn len(&self) -> usize {
        match self {
            Backing::Mutable(bytes) => bytes.len(),
            Backing::Frozen(shared) => shared.len(),
        }
    }

    fn as_slice(&self) -> &[u8] {
        match self {
            Backing::Mutable(bytes) => bytes,
            Backing::Frozen(shared) => shared.as_slice(),
        }
    }
}

/// A bounded, contiguous memory region owned by one function instance, plus
/// the read-only regions imported from other contexts.
#[derive(Debug)]
pub struct MemoryContext {
    id: ContextId,
    /// The context's own region.
    backing: Backing,
    /// Regions attached by [`MemoryContext::import`]; they count toward the
    /// capacity but are never copied.
    imports: Vec<SharedBytes>,
    /// Sum of the imported regions' lengths.
    imported_bytes: usize,
    /// Maximum size of the context (the user-declared memory requirement),
    /// covering the own region and all imports.
    capacity: usize,
    /// High-water mark of bytes ever committed or imported, for accounting.
    high_water: usize,
}

impl MemoryContext {
    /// Creates a context with the given capacity. No memory is committed
    /// until data is written (mirroring demand paging).
    pub fn new(capacity: usize) -> Self {
        Self {
            id: ContextId::next(),
            backing: Backing::Mutable(Vec::new()),
            imports: Vec::new(),
            imported_bytes: 0,
            capacity,
            high_water: 0,
        }
    }

    /// The context identifier.
    pub fn id(&self) -> ContextId {
        self.id
    }

    /// The maximum size of the context in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently committed in the context's own region.
    pub fn committed_bytes(&self) -> usize {
        self.backing.len()
    }

    /// Bytes attached by zero-copy imports.
    pub fn imported_bytes(&self) -> usize {
        self.imported_bytes
    }

    /// Highest number of bytes (committed + imported) this context ever
    /// held.
    pub fn high_water_bytes(&self) -> usize {
        self.high_water
    }

    /// Makes the own region writable again after an export.
    ///
    /// When no views of the frozen region are outstanding the buffer is
    /// reclaimed without copying; otherwise the visible bytes are copied
    /// once (copy-on-write — the documented fallback that keeps exported
    /// views immutable).
    fn make_mutable(&mut self) -> &mut Vec<u8> {
        if matches!(self.backing, Backing::Frozen(_)) {
            // Move the frozen view out before trying to unwrap it, so the
            // context's own reference does not keep the Arc count above one.
            let Backing::Frozen(shared) =
                std::mem::replace(&mut self.backing, Backing::Mutable(Vec::new()))
            else {
                unreachable!("matched above");
            };
            self.backing = match shared.try_unwrap_whole() {
                Ok(vec) => Backing::Mutable(vec),
                Err(shared) => Backing::Mutable(shared.as_slice().to_vec()),
            };
        }
        match &mut self.backing {
            Backing::Mutable(bytes) => bytes,
            Backing::Frozen(_) => unreachable!("unfrozen above"),
        }
    }

    fn ensure_len(&mut self, required: usize) -> DandelionResult<()> {
        let total = required
            .checked_add(self.imported_bytes)
            .ok_or_else(|| DandelionError::ContextError("offset overflow".to_string()))?;
        if total > self.capacity {
            return Err(DandelionError::ContextError(format!(
                "write of {} bytes exceeds context capacity of {} bytes ({} bytes imported)",
                required, self.capacity, self.imported_bytes
            )));
        }
        if required > self.backing.len() {
            let bytes = self.make_mutable();
            bytes.resize(required, 0);
            self.high_water = self.high_water.max(total);
        }
        Ok(())
    }

    /// Writes `data` at `offset`, committing pages as needed.
    pub fn write(&mut self, offset: usize, data: &[u8]) -> DandelionResult<()> {
        let end = offset
            .checked_add(data.len())
            .ok_or_else(|| DandelionError::ContextError("offset overflow".to_string()))?;
        self.ensure_len(end)?;
        self.make_mutable()[offset..end].copy_from_slice(data);
        Ok(())
    }

    /// Appends `data` at the current commit extent and returns its offset.
    pub fn append(&mut self, data: &[u8]) -> DandelionResult<usize> {
        let offset = self.backing.len();
        self.write(offset, data)?;
        Ok(offset)
    }

    /// Reads `len` bytes starting at `offset` of the context's own region.
    pub fn read(&self, offset: usize, len: usize) -> DandelionResult<&[u8]> {
        let end = offset
            .checked_add(len)
            .ok_or_else(|| DandelionError::ContextError("offset overflow".to_string()))?;
        if end > self.backing.len() {
            return Err(DandelionError::ContextError(format!(
                "read of {len} bytes at offset {offset} is out of bounds (committed {})",
                self.backing.len()
            )));
        }
        Ok(&self.backing.as_slice()[offset..end])
    }

    /// Returns the whole committed region.
    pub fn committed(&self) -> &[u8] {
        self.backing.as_slice()
    }

    /// Exports a range of the context's own region as a zero-copy view.
    ///
    /// The first export freezes the region (a move, not a copy); further
    /// exports slice the same frozen buffer. Exported views remain valid
    /// after [`MemoryContext::clear`], which is how a finished function's
    /// outputs outlive its context without being copied. Writing to the
    /// context after an export falls back to copy-on-write only while views
    /// are outstanding.
    pub fn export(&mut self, offset: usize, len: usize) -> DandelionResult<SharedBytes> {
        let end = offset
            .checked_add(len)
            .ok_or_else(|| DandelionError::ContextError("offset overflow".to_string()))?;
        if end > self.backing.len() {
            return Err(DandelionError::ContextError(format!(
                "export of {len} bytes at offset {offset} is out of bounds (committed {})",
                self.backing.len()
            )));
        }
        if let Backing::Mutable(bytes) = &mut self.backing {
            let frozen = SharedBytes::from_vec(std::mem::take(bytes));
            self.backing = Backing::Frozen(frozen);
        }
        match &self.backing {
            Backing::Frozen(shared) => Ok(shared.slice(offset..end)),
            Backing::Mutable(_) => unreachable!("frozen above"),
        }
    }

    /// Attaches another context's exported region to this context without
    /// copying, returning the import's region index.
    ///
    /// The imported bytes count toward this context's capacity exactly as a
    /// copy would have, so memory accounting is unchanged — only the memcpy
    /// is gone.
    pub fn import(&mut self, data: &SharedBytes) -> DandelionResult<usize> {
        let total = self
            .backing
            .len()
            .checked_add(self.imported_bytes)
            .and_then(|used| used.checked_add(data.len()))
            .ok_or_else(|| DandelionError::ContextError("import overflow".to_string()))?;
        if total > self.capacity {
            return Err(DandelionError::ContextError(format!(
                "import of {} bytes exceeds context capacity of {} bytes ({} bytes in use)",
                data.len(),
                self.capacity,
                self.backing.len() + self.imported_bytes
            )));
        }
        self.imports.push(data.clone());
        self.imported_bytes += data.len();
        self.high_water = self.high_water.max(total);
        Ok(self.imports.len() - 1)
    }

    /// Returns an imported region by index.
    pub fn imported(&self, index: usize) -> Option<&SharedBytes> {
        self.imports.get(index)
    }

    /// Copies a range from this context into another context.
    ///
    /// This is the portable *fallback* for moving a finished function's
    /// outputs into the inputs of a waiting function (paper §6.1, "Data
    /// passing"): backends that cannot remap regions do one copy here.
    /// The zero-copy path is [`MemoryContext::export`] on the producer plus
    /// [`MemoryContext::import`] on the consumer.
    pub fn transfer_to(
        &self,
        destination: &mut MemoryContext,
        source_offset: usize,
        length: usize,
        destination_offset: usize,
    ) -> DandelionResult<()> {
        let data = self.read(source_offset, length)?;
        destination.write(destination_offset, data)
    }

    /// Releases committed memory and detaches imports while keeping the
    /// capacity reservation. Views handed out by [`MemoryContext::export`]
    /// keep the frozen buffer alive independently.
    pub fn clear(&mut self) {
        self.backing = Backing::Mutable(Vec::new());
        self.imports.clear();
        self.imported_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_and_read_roundtrip() {
        let mut context = MemoryContext::new(1024);
        assert_eq!(context.committed_bytes(), 0);
        context.write(10, b"hello").unwrap();
        assert_eq!(context.committed_bytes(), 15);
        assert_eq!(context.read(10, 5).unwrap(), b"hello");
        // The gap before the write reads as zeros.
        assert_eq!(context.read(0, 10).unwrap(), &[0u8; 10]);
    }

    #[test]
    fn append_returns_offsets() {
        let mut context = MemoryContext::new(64);
        let first = context.append(b"abc").unwrap();
        let second = context.append(b"defg").unwrap();
        assert_eq!(first, 0);
        assert_eq!(second, 3);
        assert_eq!(context.read(0, 7).unwrap(), b"abcdefg");
    }

    #[test]
    fn capacity_is_enforced() {
        let mut context = MemoryContext::new(8);
        assert!(context.write(0, &[0u8; 8]).is_ok());
        let err = context.write(1, &[0u8; 8]).unwrap_err();
        assert!(matches!(err, DandelionError::ContextError(_)));
        let err = context.append(&[0u8; 1]).unwrap_err();
        assert!(matches!(err, DandelionError::ContextError(_)));
    }

    #[test]
    fn out_of_bounds_reads_fail() {
        let mut context = MemoryContext::new(64);
        context.write(0, b"data").unwrap();
        assert!(context.read(0, 5).is_err());
        assert!(context.read(100, 1).is_err());
        assert!(context.read(usize::MAX, 2).is_err());
    }

    #[test]
    fn transfer_between_contexts() {
        let mut source = MemoryContext::new(64);
        let mut destination = MemoryContext::new(64);
        source.write(0, b"transfer me").unwrap();
        source.transfer_to(&mut destination, 9, 2, 5).unwrap();
        assert_eq!(destination.read(5, 2).unwrap(), b"me");
        assert!(source.transfer_to(&mut destination, 60, 10, 0).is_err());
    }

    #[test]
    fn export_hands_out_views_without_copying() {
        let mut context = MemoryContext::new(64);
        context.append(b"prefix|payload").unwrap();
        let payload = context.export(7, 7).unwrap();
        assert_eq!(payload, b"payload");
        let again = context.export(0, 6).unwrap();
        assert_eq!(again, b"prefix");
        // Both exports are windows of the same frozen buffer.
        assert!(SharedBytes::same_buffer(&payload, &again));
        // The region is still readable after freezing.
        assert_eq!(context.read(0, 6).unwrap(), b"prefix");
        assert!(context.export(10, 10).is_err());
    }

    #[test]
    fn exported_views_survive_clear() {
        let mut context = MemoryContext::new(64);
        context.append(b"outlive").unwrap();
        let view = context.export(0, 7).unwrap();
        context.clear();
        assert_eq!(context.committed_bytes(), 0);
        assert_eq!(view, b"outlive");
    }

    #[test]
    fn writes_after_export_do_not_disturb_views() {
        let mut context = MemoryContext::new(64);
        context.append(b"original").unwrap();
        let view = context.export(0, 8).unwrap();
        // Copy-on-write: the outstanding view keeps its bytes.
        context.write(0, b"REWRITTEN").unwrap();
        assert_eq!(view, b"original");
        assert_eq!(context.read(0, 9).unwrap(), b"REWRITTEN");
    }

    #[test]
    fn unfreezing_without_outstanding_views_avoids_the_copy() {
        let mut context = MemoryContext::new(64);
        context.append(b"transient").unwrap();
        drop(context.export(0, 9).unwrap());
        // No views remain, so the buffer is reclaimed and writable again.
        context.append(b"+more").unwrap();
        assert_eq!(context.read(0, 14).unwrap(), b"transient+more");
    }

    #[test]
    fn import_attaches_views_and_counts_capacity() {
        let mut producer = MemoryContext::new(64);
        producer.append(b"shared payload").unwrap();
        let exported = producer.export(0, 14).unwrap();

        let mut consumer = MemoryContext::new(20);
        let region = consumer.import(&exported).unwrap();
        assert_eq!(consumer.imported_bytes(), 14);
        assert_eq!(consumer.high_water_bytes(), 14);
        // The attached region is the producer's buffer, not a copy.
        assert!(SharedBytes::same_buffer(
            consumer.imported(region).unwrap(),
            &exported
        ));
        // Imports count toward the capacity: 14 imported + 7 written > 20.
        let err = consumer.append(&[0u8; 7]).unwrap_err();
        assert!(matches!(err, DandelionError::ContextError(_)));
        assert!(consumer.append(&[0u8; 6]).is_ok());
        // A second import beyond the capacity is rejected too.
        assert!(consumer.import(&exported).is_err());
    }

    #[test]
    fn huge_write_offsets_with_imports_fail_cleanly() {
        let mut producer = MemoryContext::new(64);
        producer.append(b"0123456789").unwrap();
        let exported = producer.export(0, 10).unwrap();
        let mut consumer = MemoryContext::new(64);
        consumer.import(&exported).unwrap();
        // required + imported_bytes would overflow; must be a typed error,
        // not a panic or a wrapped-around capacity bypass.
        let err = consumer.write(usize::MAX - 3, &[0u8; 1]).unwrap_err();
        assert!(matches!(err, DandelionError::ContextError(_)));
    }

    #[test]
    fn clear_releases_memory_but_keeps_high_water() {
        let mut context = MemoryContext::new(1024);
        context.write(0, &[1u8; 512]).unwrap();
        assert_eq!(context.high_water_bytes(), 512);
        context.clear();
        assert_eq!(context.committed_bytes(), 0);
        assert_eq!(context.imported_bytes(), 0);
        assert_eq!(context.high_water_bytes(), 512);
        assert_eq!(context.capacity(), 1024);
    }

    #[test]
    fn ids_are_unique() {
        let a = MemoryContext::new(1);
        let b = MemoryContext::new(1);
        assert_ne!(a.id(), b.id());
    }
}
