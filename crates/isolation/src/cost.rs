//! Per-backend sandbox lifecycle cost models.
//!
//! Table 1 of the paper breaks the unloaded cold-start latency of each
//! isolation backend into stages (marshal requests, load from disk, transfer
//! input, execute function, get/send output, other), measured on the Arm
//! Morello board for a 1×1 matmul. §7.2 additionally reports total latencies
//! on a stock x86 Linux 5.15 kernel. These numbers parameterize virtual-time
//! experiments: the simulator charges the modeled stage costs, while the
//! real runtime measures its own stage timings.

use std::time::Duration;

use dandelion_common::config::IsolationKind;

/// The sandbox lifecycle stages of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Marshal the request into engine-internal form.
    Marshal,
    /// Load the function binary (from disk when cold, from cache when warm).
    Load,
    /// Transfer the inputs into the function's memory context.
    TransferInput,
    /// Execute the function (sandbox entry/exit plus the function body).
    Execute,
    /// Collect the outputs and hand them back to the dispatcher.
    Output,
    /// Everything else (queueing inside the engine, bookkeeping).
    Other,
}

impl Stage {
    /// All stages in lifecycle order.
    pub const ALL: [Stage; 6] = [
        Stage::Marshal,
        Stage::Load,
        Stage::TransferInput,
        Stage::Execute,
        Stage::Output,
        Stage::Other,
    ];

    /// Stable label used in reports (matches Table 1 row names).
    pub fn label(&self) -> &'static str {
        match self {
            Stage::Marshal => "Marshal requests",
            Stage::Load => "Load from disk",
            Stage::TransferInput => "Transfer input",
            Stage::Execute => "Execute function",
            Stage::Output => "Get/send output",
            Stage::Other => "Other",
        }
    }
}

/// Hardware platform whose calibration numbers are used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HardwarePlatform {
    /// Arm Morello board (the paper's Table 1 and Figure 5 setup).
    Morello,
    /// Dual-socket Xeon E5-2630v3 running stock Linux 5.15 (§7.2, §7.3).
    X86Linux,
}

/// Per-stage cost model for one isolation backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SandboxCostModel {
    /// The backend this model describes.
    pub backend: IsolationKind,
    /// Marshal stage cost.
    pub marshal: Duration,
    /// Binary load cost when the binary must come from disk.
    pub load_from_disk: Duration,
    /// Binary load cost when the binary is cached in memory.
    pub load_from_cache: Duration,
    /// Input transfer cost for a tiny (1×1 matmul) input.
    pub transfer_input: Duration,
    /// Sandbox entry/exit cost (execution overhead, excluding the function
    /// body itself).
    pub execute_overhead: Duration,
    /// Output collection cost.
    pub output: Duration,
    /// Remaining bookkeeping cost.
    pub other: Duration,
    /// Multiplier applied to the function body's compute time (e.g. rWasm's
    /// transpiled matmul runs slower than native, §7.3).
    pub compute_slowdown: f64,
    /// Per-KiB cost added to input transfer and output collection.
    pub per_kib_copy: Duration,
}

impl SandboxCostModel {
    /// The calibrated model for a backend on a hardware platform.
    ///
    /// Morello numbers are Table 1 verbatim; the x86 numbers scale the
    /// Morello stage breakdown to the totals reported in §7.2 (rWasm 109 µs,
    /// process 539 µs, KVM 218 µs; CHERI does not exist on x86 and reuses
    /// its Morello numbers).
    pub fn for_backend(backend: IsolationKind, platform: HardwarePlatform) -> Self {
        let us = Duration::from_micros;
        let base = match backend {
            IsolationKind::Cheri => Self {
                backend,
                marshal: us(12),
                load_from_disk: us(29),
                load_from_cache: us(8),
                transfer_input: us(2),
                execute_overhead: us(5),
                output: us(9),
                other: us(32),
                compute_slowdown: 1.0,
                per_kib_copy: Duration::from_nanos(40),
            },
            IsolationKind::Rwasm => Self {
                backend,
                marshal: us(15),
                load_from_disk: us(147),
                load_from_cache: us(30),
                transfer_input: us(2),
                execute_overhead: us(20),
                output: us(12),
                other: us(45),
                compute_slowdown: 3.0,
                per_kib_copy: Duration::from_nanos(40),
            },
            IsolationKind::Process => Self {
                backend,
                marshal: us(12),
                load_from_disk: us(54),
                load_from_cache: us(15),
                transfer_input: us(6),
                execute_overhead: us(371),
                output: us(9),
                other: us(34),
                compute_slowdown: 1.0,
                per_kib_copy: Duration::from_nanos(60),
            },
            IsolationKind::Kvm => Self {
                backend,
                marshal: us(30),
                load_from_disk: us(194),
                load_from_cache: us(40),
                transfer_input: us(2),
                execute_overhead: us(536),
                output: us(25),
                other: us(102),
                compute_slowdown: 1.0,
                per_kib_copy: Duration::from_nanos(40),
            },
            IsolationKind::Native => Self {
                backend,
                marshal: us(1),
                load_from_disk: us(5),
                load_from_cache: us(1),
                transfer_input: us(1),
                execute_overhead: us(1),
                output: us(1),
                other: us(2),
                compute_slowdown: 1.0,
                per_kib_copy: Duration::from_nanos(30),
            },
        };
        match platform {
            HardwarePlatform::Morello => base,
            HardwarePlatform::X86Linux => {
                // §7.2: totals of 109 µs (rWasm), 539 µs (process), 218 µs
                // (KVM) on the default Linux 5.15 kernel. Scale every stage
                // by total_x86 / total_morello to keep the breakdown shape.
                let target_total_us = match backend {
                    IsolationKind::Rwasm => Some(109.0),
                    IsolationKind::Process => Some(539.0),
                    IsolationKind::Kvm => Some(218.0),
                    IsolationKind::Cheri | IsolationKind::Native => None,
                };
                match target_total_us {
                    None => base,
                    Some(target) => {
                        let current = base.cold_total(true).as_secs_f64() * 1e6;
                        base.scaled(target / current)
                    }
                }
            }
        }
    }

    fn scaled(&self, factor: f64) -> Self {
        let scale = |duration: Duration| duration.mul_f64(factor);
        Self {
            backend: self.backend,
            marshal: scale(self.marshal),
            load_from_disk: scale(self.load_from_disk),
            load_from_cache: scale(self.load_from_cache),
            transfer_input: scale(self.transfer_input),
            execute_overhead: scale(self.execute_overhead),
            output: scale(self.output),
            other: scale(self.other),
            compute_slowdown: self.compute_slowdown,
            per_kib_copy: self.per_kib_copy,
        }
    }

    /// The modeled cost of one stage (using the disk-load cost when
    /// `cold_binary` is true).
    pub fn stage_cost(&self, stage: Stage, cold_binary: bool) -> Duration {
        match stage {
            Stage::Marshal => self.marshal,
            Stage::Load => {
                if cold_binary {
                    self.load_from_disk
                } else {
                    self.load_from_cache
                }
            }
            Stage::TransferInput => self.transfer_input,
            Stage::Execute => self.execute_overhead,
            Stage::Output => self.output,
            Stage::Other => self.other,
        }
    }

    /// Total sandbox creation cost excluding the function body.
    pub fn cold_total(&self, cold_binary: bool) -> Duration {
        Stage::ALL
            .iter()
            .map(|stage| self.stage_cost(*stage, cold_binary))
            .sum()
    }

    /// Full modeled invocation latency: sandbox lifecycle plus the function
    /// body scaled by the backend's compute slowdown plus data copy costs.
    pub fn invocation_latency(
        &self,
        compute_time: Duration,
        input_bytes: usize,
        output_bytes: usize,
        cold_binary: bool,
    ) -> Duration {
        let copy_kib = ((input_bytes + output_bytes) as f64 / 1024.0).ceil() as u32;
        self.cold_total(cold_binary)
            + compute_time.mul_f64(self.compute_slowdown)
            + self.per_kib_copy * copy_kib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1 totals in microseconds on Morello.
    const TABLE1_TOTALS: [(IsolationKind, u64); 4] = [
        (IsolationKind::Cheri, 89),
        (IsolationKind::Rwasm, 241),
        (IsolationKind::Process, 486),
        (IsolationKind::Kvm, 889),
    ];

    #[test]
    fn morello_totals_match_table_1() {
        for (backend, expected_us) in TABLE1_TOTALS {
            let model = SandboxCostModel::for_backend(backend, HardwarePlatform::Morello);
            let total = model.cold_total(true).as_micros() as u64;
            assert_eq!(total, expected_us, "total for {backend}");
        }
    }

    #[test]
    fn x86_totals_match_section_7_2() {
        let expectations = [
            (IsolationKind::Rwasm, 109),
            (IsolationKind::Process, 539),
            (IsolationKind::Kvm, 218),
        ];
        for (backend, expected_us) in expectations {
            let model = SandboxCostModel::for_backend(backend, HardwarePlatform::X86Linux);
            let total = model.cold_total(true).as_micros() as i64;
            assert!(
                (total - expected_us).abs() <= 1,
                "{backend}: {total} vs {expected_us}"
            );
        }
    }

    #[test]
    fn warm_binary_load_is_cheaper() {
        for backend in IsolationKind::PAPER_BACKENDS {
            let model = SandboxCostModel::for_backend(backend, HardwarePlatform::Morello);
            assert!(model.cold_total(false) < model.cold_total(true));
        }
    }

    #[test]
    fn cheri_is_fastest_kvm_is_slowest_on_morello() {
        let totals: Vec<(IsolationKind, Duration)> = IsolationKind::PAPER_BACKENDS
            .iter()
            .map(|backend| {
                (
                    *backend,
                    SandboxCostModel::for_backend(*backend, HardwarePlatform::Morello)
                        .cold_total(true),
                )
            })
            .collect();
        let cheri = totals
            .iter()
            .find(|(b, _)| *b == IsolationKind::Cheri)
            .unwrap()
            .1;
        let kvm = totals
            .iter()
            .find(|(b, _)| *b == IsolationKind::Kvm)
            .unwrap()
            .1;
        assert!(totals.iter().all(|(_, total)| cheri <= *total));
        assert!(totals.iter().all(|(_, total)| kvm >= *total));
        // The paper reports CHERI sandboxes boot in under 90 µs.
        assert!(cheri < Duration::from_micros(90));
    }

    #[test]
    fn invocation_latency_accounts_for_slowdown_and_copies() {
        let rwasm = SandboxCostModel::for_backend(IsolationKind::Rwasm, HardwarePlatform::Morello);
        let cheri = SandboxCostModel::for_backend(IsolationKind::Cheri, HardwarePlatform::Morello);
        let compute = Duration::from_micros(100);
        let rwasm_latency = rwasm.invocation_latency(compute, 0, 0, false);
        let cheri_latency = cheri.invocation_latency(compute, 0, 0, false);
        // rWasm pays the 3x compute slowdown.
        assert!(rwasm_latency > cheri_latency + Duration::from_micros(150));
        // Copy costs scale with data size.
        let small = cheri.invocation_latency(compute, 1024, 0, false);
        let large = cheri.invocation_latency(compute, 1024 * 1024, 0, false);
        assert!(large > small);
    }

    #[test]
    fn stage_labels_are_stable() {
        assert_eq!(Stage::Marshal.label(), "Marshal requests");
        assert_eq!(Stage::ALL.len(), 6);
    }
}
