//! Memory contexts, the compute-function ABI and isolation backends.
//!
//! Dandelion executes untrusted *pure compute functions* inside lightweight
//! sandboxes. The platform prepares an isolated [`MemoryContext`] for each
//! function instance, loads the function binary and its inputs into the
//! context, runs the function through one of several [`IsolationBackend`]s,
//! and parses the outputs the function left behind (paper §5, §6.2).
//!
//! The paper implements four backends (CHERI, KVM, process, rWasm) to show
//! that the platform design is independent of the isolation mechanism. This
//! reproduction keeps the same staged lifecycle and per-backend behaviour,
//! but the hardware mechanisms themselves (Morello capabilities, VT-x) are
//! replaced by an in-process bounds-checked execution with a calibrated cost
//! model (see `DESIGN.md` §1 for the substitution rationale):
//!
//! * every backend really materializes inputs, invokes the function against a
//!   capacity-bounded virtual filesystem, serializes the outputs into the
//!   memory context using the binary descriptor format of
//!   [`output_parser`], and re-parses them exactly as the trusted engine
//!   would;
//! * per-stage latencies for virtual-time experiments come from
//!   [`cost::SandboxCostModel`], calibrated against Table 1 of the paper.
//!
//! The module layout mirrors the subsystems:
//!
//! * [`context`] — bounded, contiguous memory regions managed by the
//!   dispatcher.
//! * [`abi`] — the function ABI: artifacts, the [`abi::ComputeLogic`] trait
//!   and the [`abi::FunctionCtx`] handed to user code.
//! * [`output_parser`] — the small, heavily tested parser for the output
//!   descriptor a function leaves in its context (paper §8 emphasizes this
//!   parser is ~100 lines and must be memory safe).
//! * [`cost`] — per-backend, per-stage latency models (Table 1).
//! * [`policy`] — the syscall stub/deny policy compute functions run under.
//! * [`backend`] — the [`IsolationBackend`] trait and staged executor.
//! * [`backends`] — the CHERI / KVM / process / rWasm / native backends.

pub mod abi;
pub mod backend;
pub mod backends;
pub mod context;
pub mod cost;
pub mod output_parser;
pub mod policy;

pub use abi::{ComputeLogic, FunctionArtifact, FunctionCtx};
pub use backend::{ExecutionReport, ExecutionTask, IsolationBackend, StageTimings};
pub use backends::create_backend;
pub use context::MemoryContext;
pub use cost::{HardwarePlatform, SandboxCostModel, Stage};
pub use policy::{SyscallDisposition, SyscallPolicy};
