//! The function output descriptor format and its parser.
//!
//! Before a compute function exits, the dlibc shim serializes the function's
//! output sets into a descriptor structure inside the function's memory
//! context. The trusted engine then parses that structure to recover the
//! output items (paper §4.1). Because the descriptor bytes are produced by
//! *untrusted* code, the paper stresses that the parser must be tiny and
//! memory safe (§8: "Dandelion's function output parser is merely 100 lines
//! of Rust").
//!
//! The format is length-prefixed and strictly bounded:
//!
//! ```text
//! u32 magic  = 0xDA4D_E110
//! u32 set_count
//! per set:
//!   u32 name_len, name bytes (UTF-8)
//!   u32 item_count
//!   per item:
//!     u32 name_len,  name bytes
//!     u32 key_len,   key bytes (0 length = no key)
//!     u32 data_len,  data bytes
//! ```
//!
//! The parser never panics on malformed input: every length is validated
//! against the remaining buffer and against [`LIMITS`], and any violation
//! produces a descriptive error.

use dandelion_common::{
    DandelionError, DandelionResult, DataItem, DataSet, Rope, SharedBytes, SharedBytesMut,
};

/// Magic number identifying an output descriptor.
pub const MAGIC: u32 = 0xDA4D_E110;

/// Magic number identifying a metadata-only descriptor *frame*
/// (see [`encode_frame`]).
pub const FRAME_MAGIC: u32 = 0xDA4D_E1F2;

/// Hard limits applied while parsing untrusted descriptors.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum number of output sets.
    pub max_sets: u32,
    /// Maximum number of items per set.
    pub max_items_per_set: u32,
    /// Maximum length of a set, item or key name in bytes.
    pub max_name_bytes: u32,
    /// Maximum payload length of one item in bytes.
    pub max_item_bytes: u32,
}

/// Default limits used by the engines.
pub const LIMITS: Limits = Limits {
    max_sets: 256,
    max_items_per_set: 64 * 1024,
    max_name_bytes: 4 * 1024,
    max_item_bytes: 256 * 1024 * 1024,
};

/// Exact byte length of the descriptor *metadata* (everything except item
/// payload bytes).
fn descriptor_meta_len(sets: &[DataSet]) -> usize {
    let mut len = 8; // magic + set count
    for set in sets {
        len += 4 + set.name.len() + 4;
        for item in &set.items {
            len += 4 + item.name.len();
            len += 4 + item.key.as_deref().unwrap_or("").len();
            len += 4; // payload length prefix
        }
    }
    len
}

/// Serializes output sets into the descriptor format as a flat vector
/// (one exact-size allocation; payload bytes are copied in).
///
/// This remains the portable wire format at the HTTP boundary; the
/// in-process path uses [`encode_outputs_rope`], which never copies
/// payloads.
pub fn encode_outputs(sets: &[DataSet]) -> Vec<u8> {
    encode_outputs_rope(sets).to_vec()
}

/// Serializes output sets into the descriptor format as a [`Rope`].
///
/// All descriptor metadata (magic, counts, names, keys, length prefixes) is
/// written once into a single pooled, exactly sized buffer; every item
/// payload is attached to the rope *by reference* as a [`SharedBytes`]
/// segment between slices of that metadata buffer. Building the descriptor
/// therefore costs one buffer regardless of payload sizes, and vectored
/// delivery ([`Rope::write_to`]) never flattens the payloads.
pub fn encode_outputs_rope(sets: &[DataSet]) -> Rope {
    let mut meta = SharedBytesMut::with_capacity(descriptor_meta_len(sets));
    // Pass 1: write the contiguous metadata, remembering where each payload
    // interleaves.
    let mut splits: Vec<usize> = Vec::new();
    meta.put_u32_le(MAGIC);
    meta.put_u32_le(sets.len() as u32);
    for set in sets {
        put_chunk(&mut meta, set.name.as_bytes());
        meta.put_u32_le(set.items.len() as u32);
        for item in &set.items {
            put_chunk(&mut meta, item.name.as_bytes());
            put_chunk(&mut meta, item.key.as_deref().unwrap_or("").as_bytes());
            meta.put_u32_le(item.data.len() as u32);
            splits.push(meta.len());
        }
    }
    debug_assert_eq!(meta.len(), descriptor_meta_len(sets));
    // Pass 2: interleave zero-copy views of the metadata buffer with the
    // payload views.
    let meta = meta.freeze();
    let mut rope = Rope::new();
    let mut cursor = 0;
    let mut split_index = 0;
    for set in sets {
        for item in &set.items {
            let split = splits[split_index];
            split_index += 1;
            rope.push(meta.slice(cursor..split));
            cursor = split;
            rope.push(item.data.clone());
        }
    }
    rope.push(meta.slice(cursor..));
    rope
}

fn put_chunk(out: &mut SharedBytesMut, data: &[u8]) {
    out.put_u32_le(data.len() as u32);
    out.put_slice(data);
}

struct Reader<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, offset: 0 }
    }

    fn error(&self, message: &str) -> DandelionError {
        DandelionError::DataLayout(format!("{message} (at byte {})", self.offset))
    }

    fn read_u32(&mut self) -> DandelionResult<u32> {
        let end = self
            .offset
            .checked_add(4)
            .ok_or_else(|| self.error("offset overflow"))?;
        if end > self.bytes.len() {
            return Err(self.error("truncated descriptor"));
        }
        let mut buf = [0u8; 4];
        buf.copy_from_slice(&self.bytes[self.offset..end]);
        self.offset = end;
        Ok(u32::from_le_bytes(buf))
    }

    fn read_bytes(&mut self, len: u32) -> DandelionResult<&'a [u8]> {
        let len = len as usize;
        let end = self
            .offset
            .checked_add(len)
            .ok_or_else(|| self.error("offset overflow"))?;
        if end > self.bytes.len() {
            return Err(self.error("truncated descriptor"));
        }
        let slice = &self.bytes[self.offset..end];
        self.offset = end;
        Ok(slice)
    }

    fn read_name(&mut self, limits: &Limits, what: &str) -> DandelionResult<String> {
        let len = self.read_u32()?;
        if len > limits.max_name_bytes {
            return Err(self.error(&format!("{what} name of {len} bytes exceeds the limit")));
        }
        let bytes = self.read_bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| self.error(&format!("{what} name is not valid UTF-8")))
    }
}

/// Parses an output descriptor produced by an untrusted compute function.
pub fn parse_outputs(bytes: &[u8]) -> DandelionResult<Vec<DataSet>> {
    parse_outputs_with_limits(bytes, &LIMITS)
}

/// Parses an output descriptor with explicit limits. Item payloads are
/// copied out of the descriptor buffer.
pub fn parse_outputs_with_limits(bytes: &[u8], limits: &Limits) -> DandelionResult<Vec<DataSet>> {
    parse_outputs_impl(bytes, limits, &mut |range| {
        SharedBytes::copy_from_slice(&bytes[range])
    })
}

/// Parses an output descriptor held in a [`SharedBytes`] buffer, handing out
/// item payloads as zero-copy views of that buffer.
///
/// This is the engine's hot path: a producer context [`exports`] its
/// descriptor region once, and every item parsed from it — including `each`
/// fan-out and `key` grouping downstream — references the producer's bytes
/// instead of copying them. Validation is identical to [`parse_outputs`].
///
/// [`exports`]: crate::context::MemoryContext::export
pub fn parse_outputs_shared(shared: &SharedBytes) -> DandelionResult<Vec<DataSet>> {
    parse_outputs_impl(shared.as_slice(), &LIMITS, &mut |range| shared.slice(range))
}

fn parse_outputs_impl(
    bytes: &[u8],
    limits: &Limits,
    make_data: &mut dyn FnMut(std::ops::Range<usize>) -> SharedBytes,
) -> DandelionResult<Vec<DataSet>> {
    let mut reader = Reader::new(bytes);
    let magic = reader.read_u32()?;
    if magic != MAGIC {
        return Err(reader.error("bad descriptor magic"));
    }
    let set_count = reader.read_u32()?;
    if set_count > limits.max_sets {
        return Err(reader.error(&format!("{set_count} sets exceed the limit")));
    }
    let mut sets = Vec::with_capacity(set_count as usize);
    for _ in 0..set_count {
        let set_name = reader.read_name(limits, "set")?;
        let item_count = reader.read_u32()?;
        if item_count > limits.max_items_per_set {
            return Err(reader.error(&format!("{item_count} items exceed the per-set limit")));
        }
        let mut set = DataSet::new(set_name);
        for _ in 0..item_count {
            let item_name = reader.read_name(limits, "item")?;
            let key = reader.read_name(limits, "key")?;
            let data_len = reader.read_u32()?;
            if data_len > limits.max_item_bytes {
                return Err(reader.error(&format!("item of {data_len} bytes exceeds the limit")));
            }
            let start = reader.offset;
            reader.read_bytes(data_len)?;
            let mut item = DataItem::new(item_name, make_data(start..reader.offset));
            if !key.is_empty() {
                item.key = Some(key);
            }
            set.push(item);
        }
        sets.push(set);
    }
    if reader.offset != bytes.len() {
        return Err(reader.error("trailing bytes after descriptor"));
    }
    Ok(sets)
}

/// One set of a parsed descriptor [frame](encode_frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameSet {
    /// The set name.
    pub name: String,
    /// The set's item metadata, in production order.
    pub items: Vec<FrameItem>,
}

/// One item of a [`FrameSet`]: everything about the item except the payload
/// bytes, which stay in the function's memory and are attached by reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameItem {
    /// The item name.
    pub name: String,
    /// The grouping key, if any.
    pub key: Option<String>,
    /// Declared payload length in bytes, checked against the attached
    /// payload region.
    pub data_len: usize,
}

/// Serializes output sets into a metadata-only descriptor *frame*.
///
/// The frame carries the structure of the outputs — set and item names,
/// keys, and payload lengths — but not the payload bytes: those already live
/// in the function's memory and are passed by reference ([`SharedBytes`]).
/// The trusted engine round-trips the frame through [`parse_frame`] with the
/// same hard limits as the full descriptor, then attaches each payload
/// region zero-copy after checking its length against the frame. The full
/// payload-carrying descriptor ([`encode_outputs`]) remains the portable
/// wire format for set lists crossing the HTTP boundary.
pub fn encode_frame(sets: &[DataSet]) -> Vec<u8> {
    encode_frame_shared(sets).into_vec()
}

/// Like [`encode_frame`] but returns the frame as a frozen [`SharedBytes`]
/// built in one pooled, exactly sized buffer.
///
/// This is the engine's steady-state path: the frame is written once, frozen
/// without copy, attached to the function's memory context by reference
/// (capacity-accounted like any import) and parsed in place — no descriptor
/// bytes ever round-trip through the global allocator.
pub fn encode_frame_shared(sets: &[DataSet]) -> SharedBytes {
    // A frame is the descriptor metadata with payload bytes omitted, so the
    // metadata length is exact for it too.
    let mut out = SharedBytesMut::with_capacity(descriptor_meta_len(sets));
    out.put_u32_le(FRAME_MAGIC);
    out.put_u32_le(sets.len() as u32);
    for set in sets {
        put_chunk(&mut out, set.name.as_bytes());
        out.put_u32_le(set.items.len() as u32);
        for item in &set.items {
            put_chunk(&mut out, item.name.as_bytes());
            put_chunk(&mut out, item.key.as_deref().unwrap_or("").as_bytes());
            out.put_u32_le(item.data.len() as u32);
        }
    }
    debug_assert_eq!(out.len(), descriptor_meta_len(sets));
    out.freeze()
}

/// Parses a descriptor frame produced by [`encode_frame`], applying the
/// default [`LIMITS`]. Like [`parse_outputs`] this never panics on
/// malformed input.
pub fn parse_frame(bytes: &[u8]) -> DandelionResult<Vec<FrameSet>> {
    parse_frame_with_limits(bytes, &LIMITS)
}

/// Parses a descriptor frame with explicit limits.
pub fn parse_frame_with_limits(bytes: &[u8], limits: &Limits) -> DandelionResult<Vec<FrameSet>> {
    let mut reader = Reader::new(bytes);
    let magic = reader.read_u32()?;
    if magic != FRAME_MAGIC {
        return Err(reader.error("bad frame magic"));
    }
    let set_count = reader.read_u32()?;
    if set_count > limits.max_sets {
        return Err(reader.error(&format!("{set_count} sets exceed the limit")));
    }
    let mut sets = Vec::with_capacity(set_count as usize);
    for _ in 0..set_count {
        let name = reader.read_name(limits, "set")?;
        let item_count = reader.read_u32()?;
        if item_count > limits.max_items_per_set {
            return Err(reader.error(&format!("{item_count} items exceed the per-set limit")));
        }
        let mut items = Vec::with_capacity(item_count.min(1024) as usize);
        for _ in 0..item_count {
            let item_name = reader.read_name(limits, "item")?;
            let key = reader.read_name(limits, "key")?;
            let data_len = reader.read_u32()?;
            if data_len > limits.max_item_bytes {
                return Err(reader.error(&format!("item of {data_len} bytes exceeds the limit")));
            }
            items.push(FrameItem {
                name: item_name,
                key: (!key.is_empty()).then_some(key),
                data_len: data_len as usize,
            });
        }
        sets.push(FrameSet { name, items });
    }
    if reader.offset != bytes.len() {
        return Err(reader.error("trailing bytes after frame"));
    }
    Ok(sets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sets() -> Vec<DataSet> {
        vec![
            DataSet::with_items(
                "responses",
                vec![
                    DataItem::new("r0", b"hello".to_vec()),
                    DataItem::with_key("r1", "eu-west", b"world".to_vec()),
                ],
            ),
            DataSet::new("errors"),
        ]
    }

    #[test]
    fn encode_parse_roundtrip() {
        let sets = sample_sets();
        let encoded = encode_outputs(&sets);
        let decoded = parse_outputs(&encoded).unwrap();
        assert_eq!(decoded, sets);
    }

    #[test]
    fn empty_output_roundtrip() {
        let encoded = encode_outputs(&[]);
        assert_eq!(parse_outputs(&encoded).unwrap(), Vec::<DataSet>::new());
    }

    #[test]
    fn rope_encoding_matches_the_flat_descriptor_and_shares_payloads() {
        let big = SharedBytes::from_vec(vec![0x7Au8; 64 * 1024]);
        let sets = vec![DataSet::with_items(
            "blobs",
            vec![
                DataItem::new("b0", big.clone()),
                DataItem::with_key("b1", "k", b"tiny".to_vec()),
            ],
        )];
        let rope = encode_outputs_rope(&sets);
        assert_eq!(rope.to_vec(), encode_outputs(&sets));
        // The big payload is attached by reference, not copied.
        assert!(
            rope.shared_segments()
                .any(|segment| SharedBytes::same_buffer(segment, &big)),
            "payload must appear in the rope as a view of the caller's buffer"
        );
        // And the rope round-trips through the untrusted parser.
        let decoded = parse_outputs(&rope.to_vec()).unwrap();
        assert_eq!(decoded, sets);
    }

    #[test]
    fn empty_rope_descriptor_is_header_only() {
        let rope = encode_outputs_rope(&[]);
        assert_eq!(rope.to_vec(), encode_outputs(&[]));
        assert_eq!(rope.segment_count(), 1);
    }

    #[test]
    fn frame_shared_matches_frame() {
        let sets = sample_sets();
        assert_eq!(encode_frame_shared(&sets).as_slice(), encode_frame(&sets));
        let parsed = parse_frame(&encode_frame_shared(&sets)).unwrap();
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn shared_parse_hands_out_views_of_the_descriptor() {
        let sets = sample_sets();
        let encoded = SharedBytes::from_vec(encode_outputs(&sets));
        let decoded = parse_outputs_shared(&encoded).unwrap();
        assert_eq!(decoded, sets);
        // Every payload is a window of the descriptor buffer, not a copy.
        for set in &decoded {
            for item in &set.items {
                assert!(SharedBytes::same_buffer(&item.data, &encoded));
            }
        }
    }

    #[test]
    fn frame_roundtrip_preserves_structure() {
        let sets = sample_sets();
        let frame = encode_frame(&sets);
        let parsed = parse_frame(&frame).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "responses");
        assert_eq!(parsed[0].items.len(), 2);
        assert_eq!(parsed[0].items[0].name, "r0");
        assert_eq!(parsed[0].items[0].data_len, 5);
        assert!(parsed[0].items[0].key.is_none());
        assert_eq!(parsed[0].items[1].key.as_deref(), Some("eu-west"));
        assert!(parsed[1].items.is_empty());
    }

    #[test]
    fn frame_rejects_truncation_trailing_bytes_and_wrong_magic() {
        let frame = encode_frame(&sample_sets());
        for cut in 0..frame.len() {
            assert!(parse_frame(&frame[..cut]).is_err(), "truncation at {cut}");
        }
        let mut trailing = frame.clone();
        trailing.push(0);
        assert!(parse_frame(&trailing).is_err());
        // A full descriptor is not a frame and vice versa.
        assert!(parse_frame(&encode_outputs(&sample_sets())).is_err());
        assert!(parse_outputs(&frame).is_err());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut encoded = encode_outputs(&sample_sets());
        encoded[0] ^= 0xFF;
        assert!(parse_outputs(&encoded).is_err());
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let encoded = encode_outputs(&sample_sets());
        for cut in 0..encoded.len() {
            assert!(
                parse_outputs(&encoded[..cut]).is_err(),
                "truncation at {cut} should fail"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut encoded = encode_outputs(&sample_sets());
        encoded.push(0);
        assert!(parse_outputs(&encoded).is_err());
    }

    #[test]
    fn enforces_limits() {
        let strict = Limits {
            max_sets: 1,
            max_items_per_set: 1,
            max_name_bytes: 4,
            max_item_bytes: 4,
        };
        // Too many sets.
        let encoded = encode_outputs(&sample_sets());
        assert!(parse_outputs_with_limits(&encoded, &strict).is_err());
        // Item too large.
        let big = vec![DataSet::with_items(
            "s",
            vec![DataItem::new("i", vec![0u8; 16])],
        )];
        assert!(parse_outputs_with_limits(&encode_outputs(&big), &strict).is_err());
        // Name too long.
        let long_name = vec![DataSet::new("very-long-set-name")];
        assert!(parse_outputs_with_limits(&encode_outputs(&long_name), &strict).is_err());
    }

    #[test]
    fn rejects_invalid_utf8_names() {
        // Hand-craft a descriptor whose set name is invalid UTF-8.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(parse_outputs(&bytes).is_err());
    }

    #[test]
    fn malicious_length_does_not_overallocate() {
        // A descriptor claiming u32::MAX items must fail fast rather than
        // attempt to allocate.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(b's');
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(parse_outputs(&bytes).is_err());
    }
}
