//! The syscall policy compute functions run under.
//!
//! Pure compute functions may not issue system calls (paper §4.1). The dlibc
//! shim provides stub implementations for calls that well-behaved code may
//! still reach (e.g. `mmap` from an allocator probe) which return error
//! codes, while anything else observed by the sandbox (ptrace in the process
//! backend, a VM exit in the KVM backend) terminates the function.
//!
//! Because the functions in this repository are Rust closures rather than
//! native binaries, syscall attempts are modeled: user code asks for a
//! syscall through [`crate::abi::FunctionCtx::syscall`], and the policy
//! decides whether that returns a stub error or kills the function. This
//! keeps the trust boundary of the paper intact — the platform never performs
//! I/O on behalf of a compute function.

use std::collections::BTreeSet;

/// What happens when a compute function attempts a system call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallDisposition {
    /// The call returns an error code to the function (dlibc stub).
    Stub {
        /// The errno-style code the stub returns.
        errno: i32,
    },
    /// The sandbox terminates the function and reports a fault.
    Terminate,
}

/// Policy mapping syscall names to dispositions.
#[derive(Debug, Clone)]
pub struct SyscallPolicy {
    stubbed: BTreeSet<&'static str>,
    /// Whether unknown syscalls terminate the function (`true` for the
    /// process backend which traces every call) or also stub.
    strict: bool,
}

impl SyscallPolicy {
    /// Syscalls the dlibc shim stubs out with error returns (paper §4.1
    /// names mmap, mprotect, socket and threading explicitly).
    pub const DEFAULT_STUBBED: [&'static str; 8] = [
        "mmap", "munmap", "mprotect", "socket", "connect", "clone", "futex", "openat",
    ];

    /// The policy used by backends that intercept every call (process/KVM).
    pub fn strict() -> Self {
        Self {
            stubbed: Self::DEFAULT_STUBBED.into_iter().collect(),
            strict: true,
        }
    }

    /// A policy that stubs every call; used by the native reference backend
    /// so that tests can exercise stub paths without faulting.
    pub fn permissive() -> Self {
        Self {
            stubbed: Self::DEFAULT_STUBBED.into_iter().collect(),
            strict: false,
        }
    }

    /// Decides what happens for an attempted syscall.
    pub fn disposition(&self, name: &str) -> SyscallDisposition {
        if self.stubbed.contains(name) {
            // ENOSYS, the "function not implemented" errno.
            SyscallDisposition::Stub { errno: 38 }
        } else if self.strict {
            SyscallDisposition::Terminate
        } else {
            SyscallDisposition::Stub { errno: 38 }
        }
    }

    /// Returns `true` if unknown syscalls terminate the function.
    pub fn is_strict(&self) -> bool {
        self.strict
    }
}

impl Default for SyscallPolicy {
    fn default() -> Self {
        Self::strict()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stubbed_calls_return_enosys() {
        let policy = SyscallPolicy::strict();
        assert_eq!(
            policy.disposition("mmap"),
            SyscallDisposition::Stub { errno: 38 }
        );
        assert_eq!(
            policy.disposition("socket"),
            SyscallDisposition::Stub { errno: 38 }
        );
    }

    #[test]
    fn strict_policy_terminates_unknown_calls() {
        let policy = SyscallPolicy::strict();
        assert!(policy.is_strict());
        assert_eq!(policy.disposition("execve"), SyscallDisposition::Terminate);
        assert_eq!(policy.disposition("ptrace"), SyscallDisposition::Terminate);
    }

    #[test]
    fn permissive_policy_stubs_everything() {
        let policy = SyscallPolicy::permissive();
        assert!(!policy.is_strict());
        assert_eq!(
            policy.disposition("execve"),
            SyscallDisposition::Stub { errno: 38 }
        );
    }
}
