//! Latency and cost models for Figure 9's Query-as-a-Service comparison.
//!
//! The paper compares Dandelion running SSB queries on an EC2 `m7a.8xlarge`
//! (billed per second) against AWS Athena (billed per byte scanned, with a
//! 10 MB minimum per query). Absolute numbers depend on AWS pricing at the
//! time; the models here use the published list prices and the latency
//! characteristics the paper describes (Athena adds a fixed engine-startup
//! overhead that dominates short queries, which is exactly the elasticity gap
//! Dandelion closes).

use std::time::Duration;

/// Cost and latency of one query execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryCost {
    /// End-to-end query latency.
    pub latency: Duration,
    /// Cost in US cents.
    pub cost_cents: f64,
}

/// AWS Athena model: `$5 per TB scanned` with a 10 MB per-query minimum,
/// plus a fixed startup/queueing overhead and a scan-throughput term.
#[derive(Debug, Clone, Copy)]
pub struct AthenaModel {
    /// Price per terabyte scanned, in dollars.
    pub dollars_per_tb: f64,
    /// Minimum billed bytes per query.
    pub minimum_billed_bytes: u64,
    /// Fixed engine startup / scheduling overhead.
    pub startup: Duration,
    /// Effective scan throughput of the managed engine.
    pub scan_bytes_per_second: f64,
}

impl Default for AthenaModel {
    fn default() -> Self {
        Self {
            dollars_per_tb: 5.0,
            minimum_billed_bytes: 10 * 1024 * 1024,
            // Short queries on Athena spend most of their time on engine
            // startup and scheduling; the paper's Figure 9 shows ~2.5-4.5 s
            // for ~700 MB queries.
            startup: Duration::from_millis(2300),
            scan_bytes_per_second: 450.0 * 1024.0 * 1024.0,
        }
    }
}

impl AthenaModel {
    /// The modeled latency and cost of a query scanning `scanned_bytes`.
    pub fn query(&self, scanned_bytes: u64) -> QueryCost {
        let billed = scanned_bytes.max(self.minimum_billed_bytes);
        let cost_dollars = billed as f64 / 1e12 * self.dollars_per_tb;
        let scan = Duration::from_secs_f64(scanned_bytes as f64 / self.scan_bytes_per_second);
        QueryCost {
            latency: self.startup + scan,
            cost_cents: cost_dollars * 100.0,
        }
    }
}

/// EC2 on-demand model for running Dandelion as the QaaS engine.
#[derive(Debug, Clone, Copy)]
pub struct Ec2Model {
    /// On-demand price of the instance per hour, in dollars
    /// (`m7a.8xlarge` ≈ $1.85/h).
    pub dollars_per_hour: f64,
    /// Number of vCPUs of the instance (m7a.8xlarge has 32).
    pub vcpus: usize,
}

impl Default for Ec2Model {
    fn default() -> Self {
        Self {
            dollars_per_hour: 1.853,
            vcpus: 32,
        }
    }
}

impl Ec2Model {
    /// Cost of occupying the whole instance for `latency`.
    pub fn query(&self, latency: Duration) -> QueryCost {
        let hours = latency.as_secs_f64() / 3600.0;
        QueryCost {
            latency,
            cost_cents: hours * self.dollars_per_hour * 100.0,
        }
    }

    /// Estimates the query latency on the instance given the single-core
    /// engine execution time, the number of partitions Dandelion fans out
    /// to, per-sandbox overhead, and optionally the S3 fetch time that is
    /// overlapped with execution.
    pub fn dandelion_latency(
        &self,
        single_core_execution: Duration,
        partitions: usize,
        per_sandbox_overhead: Duration,
        fetch: Duration,
    ) -> Duration {
        let partitions = partitions.clamp(1, self.vcpus);
        let parallel =
            Duration::from_secs_f64(single_core_execution.as_secs_f64() / partitions as f64);
        parallel + per_sandbox_overhead + fetch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn athena_bills_per_byte_with_minimum() {
        let athena = AthenaModel::default();
        let tiny = athena.query(1024);
        // 10 MB minimum at $5/TB = 0.005 cents.
        assert!((tiny.cost_cents - 0.005).abs() < 0.0005);
        let large = athena.query(700 * 1024 * 1024);
        assert!(large.cost_cents > tiny.cost_cents * 60.0);
        // The paper reports ~0.32-0.33 cents per ~700 MB SSB query.
        assert!(
            (0.25..0.45).contains(&large.cost_cents),
            "{}",
            large.cost_cents
        );
        assert!(large.latency > athena.startup);
    }

    #[test]
    fn ec2_bills_per_second() {
        let ec2 = Ec2Model::default();
        let short = ec2.query(Duration::from_secs(2));
        // 2 s of a $1.853/h instance ≈ 0.1 cents.
        assert!(
            (short.cost_cents - 0.103).abs() < 0.01,
            "{}",
            short.cost_cents
        );
        let long = ec2.query(Duration::from_secs(20));
        assert!((long.cost_cents / short.cost_cents - 10.0).abs() < 0.1);
    }

    #[test]
    fn dandelion_on_ec2_is_cheaper_and_faster_for_short_queries() {
        // Mirror the Figure 9 shape: ~700 MB scanned, a couple of seconds of
        // single-core work spread over 32 cores.
        let athena = AthenaModel::default().query(700 * 1024 * 1024);
        let ec2 = Ec2Model::default();
        let latency = ec2.dandelion_latency(
            Duration::from_secs(40),
            32,
            Duration::from_millis(5),
            Duration::from_millis(900),
        );
        let dandelion = ec2.query(latency);
        assert!(dandelion.latency < athena.latency);
        assert!(dandelion.cost_cents < athena.cost_cents);
        // Roughly the paper's reported margins: ~40% lower latency and
        // ~67% lower cost.
        assert!(dandelion.latency.as_secs_f64() < athena.latency.as_secs_f64() * 0.8);
        assert!(dandelion.cost_cents < athena.cost_cents * 0.5);
    }

    #[test]
    fn partitioning_is_clamped_to_the_instance_size() {
        let ec2 = Ec2Model::default();
        let one = ec2.dandelion_latency(Duration::from_secs(32), 1, Duration::ZERO, Duration::ZERO);
        let capped = ec2.dandelion_latency(
            Duration::from_secs(32),
            1000,
            Duration::ZERO,
            Duration::ZERO,
        );
        assert_eq!(one, Duration::from_secs(32));
        assert_eq!(capped, Duration::from_secs(1));
    }
}
