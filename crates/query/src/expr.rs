//! Scalar expressions and predicates over tables.

use crate::table::{Column, Table, Value};

/// A scalar expression evaluated row-wise over a table.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column by name.
    Column(String),
    /// A literal value broadcast to every row.
    Literal(Value),
    /// Arithmetic or comparison between two expressions.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Addition (integers).
    Add,
    /// Subtraction (integers).
    Sub,
    /// Multiplication (integers).
    Mul,
    /// Equality (integers or strings).
    Eq,
    /// Inequality.
    NotEq,
    /// Less-than (integers).
    Lt,
    /// Less-or-equal (integers).
    LtEq,
    /// Greater-than (integers).
    Gt,
    /// Greater-or-equal (integers).
    GtEq,
    /// Logical and (boolean-as-integer columns).
    And,
    /// Logical or (boolean-as-integer columns).
    Or,
}

impl Expr {
    /// Column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column(name.to_string())
    }

    /// Integer literal.
    pub fn int(value: i64) -> Expr {
        Expr::Literal(Value::Int(value))
    }

    /// String literal.
    pub fn str(value: &str) -> Expr {
        Expr::Literal(Value::Str(value.to_string()))
    }

    fn binary(self, op: BinaryOp, other: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(self),
            op,
            right: Box::new(other),
        }
    }

    /// `self + other`
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Add, other)
    }

    /// `self - other`
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Sub, other)
    }

    /// `self * other`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Mul, other)
    }

    /// `self = other`
    pub fn eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Eq, other)
    }

    /// `self != other`
    pub fn not_eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::NotEq, other)
    }

    /// `self < other`
    pub fn lt(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Lt, other)
    }

    /// `self <= other`
    pub fn lt_eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::LtEq, other)
    }

    /// `self > other`
    pub fn gt(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Gt, other)
    }

    /// `self >= other`
    pub fn gt_eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::GtEq, other)
    }

    /// `self AND other`
    pub fn and(self, other: Expr) -> Expr {
        self.binary(BinaryOp::And, other)
    }

    /// `self OR other`
    pub fn or(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Or, other)
    }

    /// `low <= self <= high`
    pub fn between(self, low: i64, high: i64) -> Expr {
        self.clone()
            .gt_eq(Expr::int(low))
            .and(self.lt_eq(Expr::int(high)))
    }

    /// Evaluates the expression over every row of `table`.
    pub fn evaluate(&self, table: &Table) -> Result<Column, String> {
        match self {
            Expr::Column(name) => table
                .column(name)
                .cloned()
                .ok_or_else(|| format!("no column named `{name}`")),
            Expr::Literal(value) => {
                let rows = table.rows();
                Ok(match value {
                    Value::Int(v) => Column::Int64(vec![*v; rows]),
                    Value::Str(v) => Column::Utf8(vec![v.clone(); rows]),
                })
            }
            Expr::Binary { left, op, right } => {
                let left = left.evaluate(table)?;
                let right = right.evaluate(table)?;
                evaluate_binary(&left, *op, &right)
            }
        }
    }

    /// Evaluates the expression as a row-selection mask.
    ///
    /// The expression must produce an integer column where non-zero means
    /// "keep the row".
    pub fn evaluate_mask(&self, table: &Table) -> Result<Vec<bool>, String> {
        match self.evaluate(table)? {
            Column::Int64(values) => Ok(values.into_iter().map(|value| value != 0).collect()),
            Column::Utf8(_) => Err("predicate did not evaluate to a boolean column".to_string()),
        }
    }
}

fn evaluate_binary(left: &Column, op: BinaryOp, right: &Column) -> Result<Column, String> {
    match (left, right) {
        (Column::Int64(left), Column::Int64(right)) => {
            let values: Vec<i64> = left
                .iter()
                .zip(right)
                .map(|(l, r)| apply_int(*l, op, *r))
                .collect::<Result<_, String>>()?;
            Ok(Column::Int64(values))
        }
        (Column::Utf8(left), Column::Utf8(right)) => {
            let values: Vec<i64> = left
                .iter()
                .zip(right)
                .map(|(l, r)| match op {
                    BinaryOp::Eq => Ok((l == r) as i64),
                    BinaryOp::NotEq => Ok((l != r) as i64),
                    BinaryOp::Lt => Ok((l < r) as i64),
                    BinaryOp::Gt => Ok((l > r) as i64),
                    other => Err(format!("operator {other:?} is not defined on strings")),
                })
                .collect::<Result<_, String>>()?;
            Ok(Column::Int64(values))
        }
        _ => Err("binary expression over mismatched column types".to_string()),
    }
}

fn apply_int(left: i64, op: BinaryOp, right: i64) -> Result<i64, String> {
    Ok(match op {
        BinaryOp::Add => left.wrapping_add(right),
        BinaryOp::Sub => left.wrapping_sub(right),
        BinaryOp::Mul => left.wrapping_mul(right),
        BinaryOp::Eq => (left == right) as i64,
        BinaryOp::NotEq => (left != right) as i64,
        BinaryOp::Lt => (left < right) as i64,
        BinaryOp::LtEq => (left <= right) as i64,
        BinaryOp::Gt => (left > right) as i64,
        BinaryOp::GtEq => (left >= right) as i64,
        BinaryOp::And => ((left != 0) && (right != 0)) as i64,
        BinaryOp::Or => ((left != 0) || (right != 0)) as i64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{DataType, Schema};

    fn table() -> Table {
        Table::new(
            Schema::new(&[
                ("qty", DataType::Int64),
                ("price", DataType::Int64),
                ("region", DataType::Utf8),
            ]),
            vec![
                Column::Int64(vec![10, 20, 30]),
                Column::Int64(vec![5, 7, 9]),
                Column::Utf8(vec!["ASIA".into(), "AMERICA".into(), "ASIA".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn arithmetic_and_comparison() {
        let table = table();
        let revenue = Expr::col("qty")
            .mul(Expr::col("price"))
            .evaluate(&table)
            .unwrap();
        assert_eq!(revenue, Column::Int64(vec![50, 140, 270]));
        let mask = Expr::col("qty")
            .lt(Expr::int(25))
            .evaluate_mask(&table)
            .unwrap();
        assert_eq!(mask, vec![true, true, false]);
        let between = Expr::col("qty")
            .between(15, 30)
            .evaluate_mask(&table)
            .unwrap();
        assert_eq!(between, vec![false, true, true]);
    }

    #[test]
    fn string_predicates_and_conjunction() {
        let table = table();
        let mask = Expr::col("region")
            .eq(Expr::str("ASIA"))
            .and(Expr::col("price").gt(Expr::int(5)))
            .evaluate_mask(&table)
            .unwrap();
        assert_eq!(mask, vec![false, false, true]);
        let either = Expr::col("region")
            .eq(Expr::str("AMERICA"))
            .or(Expr::col("qty").eq(Expr::int(10)))
            .evaluate_mask(&table)
            .unwrap();
        assert_eq!(either, vec![true, true, false]);
    }

    #[test]
    fn errors_are_reported() {
        let table = table();
        assert!(Expr::col("missing").evaluate(&table).is_err());
        assert!(Expr::col("region")
            .add(Expr::str("x"))
            .evaluate(&table)
            .is_err());
        assert!(Expr::col("region")
            .eq(Expr::int(1))
            .evaluate(&table)
            .is_err());
        assert!(Expr::col("region").evaluate_mask(&table).is_err());
    }
}
