//! A small columnar query engine and the Star Schema Benchmark.
//!
//! The elastic query processing experiment (paper §7.7, Figure 9) runs Star
//! Schema Benchmark (SSB) queries by porting Apache Arrow Acero operators to
//! Dandelion compute functions and ingesting the data from S3. This crate is
//! the from-scratch substrate for that experiment:
//!
//! * [`table`] — columnar tables (Int64 and Utf8 columns), schemas, CSV
//!   encoding/decoding for object-store storage.
//! * [`expr`] — scalar expressions and predicates over tables.
//! * [`ops`] — relational operators: filter, project, hash join, group-by
//!   aggregation, sort and limit.
//! * [`ssb`] — the SSB schema, a deterministic data generator, the four
//!   query flights' first queries (Q1.1, Q2.1, Q3.1, Q4.1) and a
//!   partition-parallel execution strategy matching how Dandelion spreads a
//!   query across sandboxes.
//! * [`athena`] — latency and cost models for AWS Athena (per-byte pricing)
//!   and for Dandelion on an EC2 instance (per-second pricing), used to
//!   regenerate Figure 9's cost comparison.

pub mod athena;
pub mod expr;
pub mod ops;
pub mod ssb;
pub mod table;

pub use athena::{AthenaModel, Ec2Model, QueryCost};
pub use expr::Expr;
pub use ssb::{generate_database, SsbDatabase, SsbQuery};
pub use table::{Column, DataType, Schema, Table, Value};
