//! Relational operators.
//!
//! These mirror the Acero operators the paper ports to Dandelion: filter,
//! projection, hash join, group-by aggregation, sort and limit. Each operator
//! consumes and produces [`Table`]s, so a query is an explicit operator
//! pipeline — exactly the shape that maps onto a composition of compute
//! functions.

use std::collections::HashMap;

use crate::expr::Expr;
use crate::table::{Column, DataType, Schema, Table, Value};

/// Keeps the rows of `input` for which `predicate` evaluates to true.
pub fn filter(input: &Table, predicate: &Expr) -> Result<Table, String> {
    let mask = predicate.evaluate_mask(input)?;
    Ok(input.filter(&mask))
}

/// Projects `input` onto named expressions.
pub fn project(input: &Table, columns: &[(&str, Expr)]) -> Result<Table, String> {
    let mut fields = Vec::with_capacity(columns.len());
    let mut data = Vec::with_capacity(columns.len());
    for (name, expr) in columns {
        let column = expr.evaluate(input)?;
        fields.push((*name, column.data_type()));
        data.push(column);
    }
    Table::new(Schema::new(&fields), data)
}

/// Inner hash join on `left.left_key == right.right_key`.
///
/// Columns of the right table are appended to the left table's columns; a
/// right column whose name collides with a left column gets a `right_`
/// prefix.
pub fn hash_join(
    left: &Table,
    left_key: &str,
    right: &Table,
    right_key: &str,
) -> Result<Table, String> {
    let left_keys = left.int_column(left_key)?;
    let right_keys = right.int_column(right_key)?;

    // Build side: the right table.
    let mut build: HashMap<i64, Vec<usize>> = HashMap::new();
    for (row, key) in right_keys.iter().enumerate() {
        build.entry(*key).or_default().push(row);
    }

    let mut left_indices = Vec::new();
    let mut right_indices = Vec::new();
    for (row, key) in left_keys.iter().enumerate() {
        if let Some(matches) = build.get(key) {
            for matched in matches {
                left_indices.push(row);
                right_indices.push(*matched);
            }
        }
    }

    let left_result = left.take(&left_indices);
    let right_result = right.take(&right_indices);

    let mut fields: Vec<(String, DataType)> = left_result.schema.fields.clone();
    let mut columns = left_result.columns;
    for ((name, data_type), column) in right_result.schema.fields.iter().zip(right_result.columns) {
        let final_name = if fields.iter().any(|(existing, _)| existing == name) {
            format!("right_{name}")
        } else {
            name.clone()
        };
        fields.push((final_name, *data_type));
        columns.push(column);
    }
    let schema = Schema { fields };
    Table::new(schema, columns)
}

/// An aggregate function over an integer column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Sum of the column.
    Sum,
    /// Number of rows.
    Count,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
}

/// Groups `input` by `group_by` columns and computes the aggregates.
///
/// Each aggregate is `(output name, input column, function)`; for
/// [`Aggregate::Count`] the input column is ignored.
pub fn aggregate(
    input: &Table,
    group_by: &[&str],
    aggregates: &[(&str, &str, Aggregate)],
) -> Result<Table, String> {
    // Resolve group columns up front.
    let group_columns: Vec<&Column> = group_by
        .iter()
        .map(|name| {
            input
                .column(name)
                .ok_or_else(|| format!("no column named `{name}`"))
        })
        .collect::<Result<_, _>>()?;
    let agg_inputs: Vec<Option<&Vec<i64>>> = aggregates
        .iter()
        .map(|(_, column, function)| match function {
            Aggregate::Count => Ok(None),
            _ => input.int_column(column).map(Some),
        })
        .collect::<Result<_, String>>()?;

    // Group rows by their key tuple, preserving first-seen order.
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for row in 0..input.rows() {
        let key: Vec<Value> = group_columns
            .iter()
            .map(|column| column.value(row))
            .collect();
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(row);
    }
    if group_by.is_empty() && groups.is_empty() {
        // Global aggregation over an empty input still yields one row of
        // neutral aggregate values.
        let key: Vec<Value> = Vec::new();
        order.push(key.clone());
        groups.insert(key, Vec::new());
    }

    // Assemble the output schema: group columns followed by aggregates.
    let mut fields: Vec<(String, DataType)> = group_by
        .iter()
        .map(|name| {
            let index = input.schema.index_of(name).expect("validated above");
            (name.to_string(), input.schema.fields[index].1)
        })
        .collect();
    for (output, _, _) in aggregates {
        fields.push((output.to_string(), DataType::Int64));
    }

    let mut group_data: Vec<Vec<Value>> = vec![Vec::new(); group_by.len()];
    let mut agg_data: Vec<Vec<i64>> = vec![Vec::new(); aggregates.len()];
    for key in &order {
        let rows = &groups[key];
        for (column_index, value) in key.iter().enumerate() {
            group_data[column_index].push(value.clone());
        }
        for (agg_index, ((_, _, function), input_column)) in
            aggregates.iter().zip(&agg_inputs).enumerate()
        {
            let value = match function {
                Aggregate::Count => rows.len() as i64,
                Aggregate::Sum => rows
                    .iter()
                    .map(|row| input_column.expect("sum has an input")[*row])
                    .sum(),
                Aggregate::Min => rows
                    .iter()
                    .map(|row| input_column.expect("min has an input")[*row])
                    .min()
                    .unwrap_or(0),
                Aggregate::Max => rows
                    .iter()
                    .map(|row| input_column.expect("max has an input")[*row])
                    .max()
                    .unwrap_or(0),
            };
            agg_data[agg_index].push(value);
        }
    }

    let mut columns: Vec<Column> = Vec::with_capacity(fields.len());
    for (column_index, _) in group_by.iter().enumerate() {
        let values = &group_data[column_index];
        // The output column type follows the input schema (not the first
        // value) so that empty groupings still type-check.
        let column = match fields[column_index].1 {
            DataType::Utf8 => Column::Utf8(
                values
                    .iter()
                    .map(|value| value.as_str().unwrap_or_default().to_string())
                    .collect(),
            ),
            DataType::Int64 => Column::Int64(
                values
                    .iter()
                    .map(|value| value.as_int().unwrap_or(0))
                    .collect(),
            ),
        };
        columns.push(column);
    }
    for data in agg_data {
        columns.push(Column::Int64(data));
    }
    let schema = Schema { fields };
    Table::new(schema, columns)
}

/// Sort direction for [`sort`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending order.
    Ascending,
    /// Descending order.
    Descending,
}

/// Sorts `input` by the given `(column, order)` keys.
pub fn sort(input: &Table, keys: &[(&str, SortOrder)]) -> Result<Table, String> {
    let key_columns: Vec<(&Column, SortOrder)> = keys
        .iter()
        .map(|(name, order)| {
            input
                .column(name)
                .map(|column| (column, *order))
                .ok_or_else(|| format!("no column named `{name}`"))
        })
        .collect::<Result<_, _>>()?;
    let mut indices: Vec<usize> = (0..input.rows()).collect();
    indices.sort_by(|a, b| {
        for (column, order) in &key_columns {
            let ordering = column.value(*a).cmp(&column.value(*b));
            let ordering = match order {
                SortOrder::Ascending => ordering,
                SortOrder::Descending => ordering.reverse(),
            };
            if ordering != std::cmp::Ordering::Equal {
                return ordering;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(input.take(&indices))
}

/// Keeps at most the first `count` rows.
pub fn limit(input: &Table, count: usize) -> Table {
    let indices: Vec<usize> = (0..input.rows().min(count)).collect();
    input.take(&indices)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orders() -> Table {
        Table::new(
            Schema::new(&[
                ("order_id", DataType::Int64),
                ("cust_id", DataType::Int64),
                ("qty", DataType::Int64),
                ("price", DataType::Int64),
            ]),
            vec![
                Column::Int64(vec![1, 2, 3, 4, 5]),
                Column::Int64(vec![10, 20, 10, 30, 20]),
                Column::Int64(vec![5, 3, 8, 1, 9]),
                Column::Int64(vec![100, 250, 40, 900, 60]),
            ],
        )
        .unwrap()
    }

    fn customers() -> Table {
        Table::new(
            Schema::new(&[("cust_id", DataType::Int64), ("region", DataType::Utf8)]),
            vec![
                Column::Int64(vec![10, 20, 30]),
                Column::Utf8(vec!["ASIA".into(), "AMERICA".into(), "ASIA".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn filter_and_project() {
        let table = orders();
        let cheap = filter(&table, &Expr::col("price").lt(Expr::int(100))).unwrap();
        assert_eq!(cheap.rows(), 2);
        let revenue = project(
            &cheap,
            &[
                ("order_id", Expr::col("order_id")),
                ("revenue", Expr::col("qty").mul(Expr::col("price"))),
            ],
        )
        .unwrap();
        assert_eq!(revenue.int_column("revenue").unwrap(), &vec![320, 540]);
    }

    #[test]
    fn hash_join_matches_rows_and_renames_collisions() {
        let joined = hash_join(&orders(), "cust_id", &customers(), "cust_id").unwrap();
        assert_eq!(joined.rows(), 5);
        assert!(joined.column("right_cust_id").is_some());
        assert_eq!(
            joined.str_column("region").unwrap(),
            &vec!["ASIA", "AMERICA", "ASIA", "ASIA", "AMERICA"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
        // Non-matching keys are dropped (inner join).
        let few_customers = customers().filter(&[true, false, false]);
        let joined = hash_join(&orders(), "cust_id", &few_customers, "cust_id").unwrap();
        assert_eq!(joined.rows(), 2);
    }

    #[test]
    fn aggregate_grouped_and_global() {
        let table = orders();
        let by_customer = aggregate(
            &table,
            &["cust_id"],
            &[
                ("total_qty", "qty", Aggregate::Sum),
                ("orders", "qty", Aggregate::Count),
            ],
        )
        .unwrap();
        assert_eq!(by_customer.rows(), 3);
        assert_eq!(
            by_customer.int_column("total_qty").unwrap(),
            &vec![13, 12, 1]
        );
        assert_eq!(by_customer.int_column("orders").unwrap(), &vec![2, 2, 1]);

        let global = aggregate(
            &table,
            &[],
            &[
                ("max_price", "price", Aggregate::Max),
                ("min_price", "price", Aggregate::Min),
            ],
        )
        .unwrap();
        assert_eq!(global.rows(), 1);
        assert_eq!(global.int_column("max_price").unwrap(), &vec![900]);
        assert_eq!(global.int_column("min_price").unwrap(), &vec![40]);
    }

    #[test]
    fn sort_and_limit() {
        let table = orders();
        let sorted = sort(&table, &[("price", SortOrder::Descending)]).unwrap();
        assert_eq!(
            sorted.int_column("price").unwrap(),
            &vec![900, 250, 100, 60, 40]
        );
        let top2 = limit(&sorted, 2);
        assert_eq!(top2.rows(), 2);
        assert_eq!(top2.int_column("order_id").unwrap(), &vec![4, 2]);
        // Multi-key sort with string keys.
        let joined = hash_join(&orders(), "cust_id", &customers(), "cust_id").unwrap();
        let sorted = sort(
            &joined,
            &[
                ("region", SortOrder::Ascending),
                ("price", SortOrder::Ascending),
            ],
        )
        .unwrap();
        assert_eq!(sorted.str_column("region").unwrap()[0], "AMERICA");
    }

    #[test]
    fn operator_errors() {
        let table = orders();
        assert!(filter(&table, &Expr::col("missing").lt(Expr::int(1))).is_err());
        assert!(hash_join(&table, "missing", &customers(), "cust_id").is_err());
        assert!(aggregate(&table, &["nope"], &[("x", "qty", Aggregate::Sum)]).is_err());
        assert!(sort(&table, &[("nope", SortOrder::Ascending)]).is_err());
    }
}
