//! The Star Schema Benchmark: schema, data generator and queries.
//!
//! The paper evaluates elastic query processing with SSB queries 1.1, 2.1,
//! 3.1 and 4.1 over ~700 MB of data in S3 (Figure 9). The generator here
//! produces a deterministic, proportionally scaled-down database with the
//! same schema and value distributions the queries select on, and
//! [`SsbQuery::run`] executes each query through the operator pipeline of
//! [`crate::ops`]. [`run_partitioned`] runs the same query as independent
//! partial aggregations over horizontal partitions of the fact table — the
//! execution strategy Dandelion uses to spread a query across sandboxes —
//! and merges the partials, which must give the same result.

use dandelion_common::rng::SplitMix64;

use crate::expr::Expr;
use crate::ops::{aggregate, filter, hash_join, sort, Aggregate, SortOrder};
use crate::table::{Column, DataType, Schema, Table};

/// The five SSB tables.
#[derive(Debug, Clone)]
pub struct SsbDatabase {
    /// The fact table.
    pub lineorder: Table,
    /// The date dimension.
    pub date: Table,
    /// The customer dimension.
    pub customer: Table,
    /// The supplier dimension.
    pub supplier: Table,
    /// The part dimension.
    pub part: Table,
}

impl SsbDatabase {
    /// Total approximate size in bytes across all tables.
    pub fn total_bytes(&self) -> usize {
        self.lineorder.byte_size()
            + self.date.byte_size()
            + self.customer.byte_size()
            + self.supplier.byte_size()
            + self.part.byte_size()
    }
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS_PER_REGION: usize = 5;

fn nation_name(region: usize, nation: usize) -> String {
    format!("{}-N{nation}", REGIONS[region])
}

/// Schema of the lineorder fact table (subset of columns the queries touch).
pub fn lineorder_schema() -> Schema {
    Schema::new(&[
        ("lo_orderkey", DataType::Int64),
        ("lo_custkey", DataType::Int64),
        ("lo_partkey", DataType::Int64),
        ("lo_suppkey", DataType::Int64),
        ("lo_orderdate", DataType::Int64),
        ("lo_quantity", DataType::Int64),
        ("lo_extendedprice", DataType::Int64),
        ("lo_discount", DataType::Int64),
        ("lo_revenue", DataType::Int64),
        ("lo_supplycost", DataType::Int64),
    ])
}

/// Generates a deterministic SSB database.
///
/// `scale` controls the fact-table size: `scale = 1.0` produces 60 000
/// lineorder rows (1/100th of SF1), which keeps tests fast while preserving
/// the join selectivities the queries rely on.
pub fn generate_database(scale: f64, seed: u64) -> SsbDatabase {
    let mut rng = SplitMix64::new(seed);
    let lineorder_rows = ((60_000.0 * scale) as usize).max(100);
    let customers = ((3_000.0 * scale) as usize).max(20);
    let suppliers = ((200.0 * scale) as usize).max(10);
    let parts = ((2_000.0 * scale) as usize).max(20);

    // Date dimension: 7 years of days, datekey = yyyymmdd.
    let mut d_datekey = Vec::new();
    let mut d_year = Vec::new();
    let mut d_yearmonthnum = Vec::new();
    for year in 1992..=1998i64 {
        for month in 1..=12i64 {
            for day in 1..=28i64 {
                d_datekey.push(year * 10_000 + month * 100 + day);
                d_year.push(year);
                d_yearmonthnum.push(year * 100 + month);
            }
        }
    }
    let date = Table::new(
        Schema::new(&[
            ("d_datekey", DataType::Int64),
            ("d_year", DataType::Int64),
            ("d_yearmonthnum", DataType::Int64),
        ]),
        vec![
            Column::Int64(d_datekey.clone()),
            Column::Int64(d_year),
            Column::Int64(d_yearmonthnum),
        ],
    )
    .expect("static date schema");

    // Customer dimension.
    let mut c_custkey = Vec::new();
    let mut c_nation = Vec::new();
    let mut c_region = Vec::new();
    for key in 0..customers as i64 {
        let region = rng.next_bounded(REGIONS.len() as u64) as usize;
        let nation = rng.next_bounded(NATIONS_PER_REGION as u64) as usize;
        c_custkey.push(key);
        c_region.push(REGIONS[region].to_string());
        c_nation.push(nation_name(region, nation));
    }
    let customer = Table::new(
        Schema::new(&[
            ("c_custkey", DataType::Int64),
            ("c_nation", DataType::Utf8),
            ("c_region", DataType::Utf8),
        ]),
        vec![
            Column::Int64(c_custkey),
            Column::Utf8(c_nation),
            Column::Utf8(c_region),
        ],
    )
    .expect("static customer schema");

    // Supplier dimension.
    let mut s_suppkey = Vec::new();
    let mut s_nation = Vec::new();
    let mut s_region = Vec::new();
    for key in 0..suppliers as i64 {
        let region = rng.next_bounded(REGIONS.len() as u64) as usize;
        let nation = rng.next_bounded(NATIONS_PER_REGION as u64) as usize;
        s_suppkey.push(key);
        s_region.push(REGIONS[region].to_string());
        s_nation.push(nation_name(region, nation));
    }
    let supplier = Table::new(
        Schema::new(&[
            ("s_suppkey", DataType::Int64),
            ("s_nation", DataType::Utf8),
            ("s_region", DataType::Utf8),
        ]),
        vec![
            Column::Int64(s_suppkey),
            Column::Utf8(s_nation),
            Column::Utf8(s_region),
        ],
    )
    .expect("static supplier schema");

    // Part dimension: categories MFGR#11..45, brands within category.
    let mut p_partkey = Vec::new();
    let mut p_mfgr = Vec::new();
    let mut p_category = Vec::new();
    let mut p_brand1 = Vec::new();
    for key in 0..parts as i64 {
        let mfgr = rng.next_bounded(5) + 1;
        let category_index = rng.next_bounded(5) + 1;
        let category = format!("MFGR#{mfgr}{category_index}");
        let brand = format!("{category}{:02}", rng.next_bounded(40) + 1);
        p_partkey.push(key);
        p_mfgr.push(format!("MFGR#{mfgr}"));
        p_category.push(category);
        p_brand1.push(brand);
    }
    let part = Table::new(
        Schema::new(&[
            ("p_partkey", DataType::Int64),
            ("p_mfgr", DataType::Utf8),
            ("p_category", DataType::Utf8),
            ("p_brand1", DataType::Utf8),
        ]),
        vec![
            Column::Int64(p_partkey),
            Column::Utf8(p_mfgr),
            Column::Utf8(p_category),
            Column::Utf8(p_brand1),
        ],
    )
    .expect("static part schema");

    // Fact table.
    let mut lo_orderkey = Vec::with_capacity(lineorder_rows);
    let mut lo_custkey = Vec::with_capacity(lineorder_rows);
    let mut lo_partkey = Vec::with_capacity(lineorder_rows);
    let mut lo_suppkey = Vec::with_capacity(lineorder_rows);
    let mut lo_orderdate = Vec::with_capacity(lineorder_rows);
    let mut lo_quantity = Vec::with_capacity(lineorder_rows);
    let mut lo_extendedprice = Vec::with_capacity(lineorder_rows);
    let mut lo_discount = Vec::with_capacity(lineorder_rows);
    let mut lo_revenue = Vec::with_capacity(lineorder_rows);
    let mut lo_supplycost = Vec::with_capacity(lineorder_rows);
    for key in 0..lineorder_rows as i64 {
        let quantity = (rng.next_bounded(50) + 1) as i64;
        let price = (rng.next_bounded(100_000) + 1_000) as i64;
        let discount = rng.next_bounded(11) as i64;
        lo_orderkey.push(key);
        lo_custkey.push(rng.next_bounded(customers as u64) as i64);
        lo_partkey.push(rng.next_bounded(parts as u64) as i64);
        lo_suppkey.push(rng.next_bounded(suppliers as u64) as i64);
        lo_orderdate.push(d_datekey[rng.next_bounded(d_datekey.len() as u64) as usize]);
        lo_quantity.push(quantity);
        lo_extendedprice.push(price);
        lo_discount.push(discount);
        lo_revenue.push(price * quantity * (100 - discount) / 100);
        lo_supplycost.push(price * 6 / 10);
    }
    let lineorder = Table::new(
        lineorder_schema(),
        vec![
            Column::Int64(lo_orderkey),
            Column::Int64(lo_custkey),
            Column::Int64(lo_partkey),
            Column::Int64(lo_suppkey),
            Column::Int64(lo_orderdate),
            Column::Int64(lo_quantity),
            Column::Int64(lo_extendedprice),
            Column::Int64(lo_discount),
            Column::Int64(lo_revenue),
            Column::Int64(lo_supplycost),
        ],
    )
    .expect("static lineorder schema");

    SsbDatabase {
        lineorder,
        date,
        customer,
        supplier,
        part,
    }
}

/// The four evaluated SSB queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SsbQuery {
    /// Q1.1 — revenue from discounted orders in 1993.
    Q1_1,
    /// Q2.1 — revenue by year and brand for one category in AMERICA.
    Q2_1,
    /// Q3.1 — revenue by customer/supplier nation within ASIA, 1992–1997.
    Q3_1,
    /// Q4.1 — profit by year and customer nation in AMERICA.
    Q4_1,
}

impl SsbQuery {
    /// All evaluated queries in paper order.
    pub const ALL: [SsbQuery; 4] = [
        SsbQuery::Q1_1,
        SsbQuery::Q2_1,
        SsbQuery::Q3_1,
        SsbQuery::Q4_1,
    ];

    /// The label used in Figure 9.
    pub fn label(&self) -> &'static str {
        match self {
            SsbQuery::Q1_1 => "Query 1.1",
            SsbQuery::Q2_1 => "Query 2.1",
            SsbQuery::Q3_1 => "Query 3.1",
            SsbQuery::Q4_1 => "Query 4.1",
        }
    }

    /// Runs the query over the whole database.
    pub fn run(&self, db: &SsbDatabase) -> Result<Table, String> {
        self.run_over(db, &db.lineorder)
    }

    /// Runs the query with the given fact table (used for partitioned
    /// execution; dimensions always come from `db`).
    pub fn run_over(&self, db: &SsbDatabase, lineorder: &Table) -> Result<Table, String> {
        match self {
            SsbQuery::Q1_1 => {
                // Filter the fact table first, then join with dates of 1993.
                let filtered = filter(
                    lineorder,
                    &Expr::col("lo_discount")
                        .between(1, 3)
                        .and(Expr::col("lo_quantity").lt(Expr::int(25))),
                )?;
                let dates_1993 = filter(&db.date, &Expr::col("d_year").eq(Expr::int(1993)))?;
                let joined = hash_join(&filtered, "lo_orderdate", &dates_1993, "d_datekey")?;
                let with_revenue = crate::ops::project(
                    &joined,
                    &[(
                        "discounted_revenue",
                        Expr::col("lo_extendedprice").mul(Expr::col("lo_discount")),
                    )],
                )?;
                aggregate(
                    &with_revenue,
                    &[],
                    &[("revenue", "discounted_revenue", Aggregate::Sum)],
                )
            }
            SsbQuery::Q2_1 => {
                let parts = filter(&db.part, &Expr::col("p_category").eq(Expr::str("MFGR#12")))?;
                let suppliers = filter(
                    &db.supplier,
                    &Expr::col("s_region").eq(Expr::str("AMERICA")),
                )?;
                let joined = hash_join(lineorder, "lo_partkey", &parts, "p_partkey")?;
                let joined = hash_join(&joined, "lo_suppkey", &suppliers, "s_suppkey")?;
                let joined = hash_join(&joined, "lo_orderdate", &db.date, "d_datekey")?;
                let grouped = aggregate(
                    &joined,
                    &["d_year", "p_brand1"],
                    &[("revenue", "lo_revenue", Aggregate::Sum)],
                )?;
                sort(
                    &grouped,
                    &[
                        ("d_year", SortOrder::Ascending),
                        ("p_brand1", SortOrder::Ascending),
                    ],
                )
            }
            SsbQuery::Q3_1 => {
                let customers = filter(&db.customer, &Expr::col("c_region").eq(Expr::str("ASIA")))?;
                let suppliers = filter(&db.supplier, &Expr::col("s_region").eq(Expr::str("ASIA")))?;
                let dates = filter(
                    &db.date,
                    &Expr::col("d_year")
                        .gt_eq(Expr::int(1992))
                        .and(Expr::col("d_year").lt_eq(Expr::int(1997))),
                )?;
                let joined = hash_join(lineorder, "lo_custkey", &customers, "c_custkey")?;
                let joined = hash_join(&joined, "lo_suppkey", &suppliers, "s_suppkey")?;
                let joined = hash_join(&joined, "lo_orderdate", &dates, "d_datekey")?;
                let grouped = aggregate(
                    &joined,
                    &["c_nation", "s_nation", "d_year"],
                    &[("revenue", "lo_revenue", Aggregate::Sum)],
                )?;
                sort(
                    &grouped,
                    &[
                        ("d_year", SortOrder::Ascending),
                        ("revenue", SortOrder::Descending),
                    ],
                )
            }
            SsbQuery::Q4_1 => {
                let customers = filter(
                    &db.customer,
                    &Expr::col("c_region").eq(Expr::str("AMERICA")),
                )?;
                let suppliers = filter(
                    &db.supplier,
                    &Expr::col("s_region").eq(Expr::str("AMERICA")),
                )?;
                let parts = filter(
                    &db.part,
                    &Expr::col("p_mfgr")
                        .eq(Expr::str("MFGR#1"))
                        .or(Expr::col("p_mfgr").eq(Expr::str("MFGR#2"))),
                )?;
                let joined = hash_join(lineorder, "lo_custkey", &customers, "c_custkey")?;
                let joined = hash_join(&joined, "lo_suppkey", &suppliers, "s_suppkey")?;
                let joined = hash_join(&joined, "lo_partkey", &parts, "p_partkey")?;
                let joined = hash_join(&joined, "lo_orderdate", &db.date, "d_datekey")?;
                let with_profit = crate::ops::project(
                    &joined,
                    &[
                        ("d_year", Expr::col("d_year")),
                        ("c_nation", Expr::col("c_nation")),
                        (
                            "row_profit",
                            Expr::col("lo_revenue").sub(Expr::col("lo_supplycost")),
                        ),
                    ],
                )?;
                let grouped = aggregate(
                    &with_profit,
                    &["d_year", "c_nation"],
                    &[("profit", "row_profit", Aggregate::Sum)],
                )?;
                sort(
                    &grouped,
                    &[
                        ("d_year", SortOrder::Ascending),
                        ("c_nation", SortOrder::Ascending),
                    ],
                )
            }
        }
    }

    /// The name of the aggregate output column of this query.
    pub fn measure_column(&self) -> &'static str {
        match self {
            SsbQuery::Q1_1 | SsbQuery::Q2_1 | SsbQuery::Q3_1 => "revenue",
            SsbQuery::Q4_1 => "profit",
        }
    }

    /// The group-by key columns of this query (empty for Q1.1).
    pub fn group_columns(&self) -> &'static [&'static str] {
        match self {
            SsbQuery::Q1_1 => &[],
            SsbQuery::Q2_1 => &["d_year", "p_brand1"],
            SsbQuery::Q3_1 => &["c_nation", "s_nation", "d_year"],
            SsbQuery::Q4_1 => &["d_year", "c_nation"],
        }
    }
}

/// Runs a query by partitioning the fact table, executing the query over
/// each partition independently, and merging the partial aggregates.
///
/// This mirrors Dandelion's execution: each partition is one compute
/// function instance, the merge is the final function.
pub fn run_partitioned(
    db: &SsbDatabase,
    query: SsbQuery,
    partitions: usize,
) -> Result<Table, String> {
    let parts = db.lineorder.partition(partitions);
    let partials: Vec<Table> = parts
        .iter()
        .map(|part| query.run_over(db, part))
        .collect::<Result<_, _>>()?;
    merge_partials(query, &partials)
}

/// Merges per-partition query results into the final result.
pub fn merge_partials(query: SsbQuery, partials: &[Table]) -> Result<Table, String> {
    let combined = Table::concat(partials)?;
    let measure = query.measure_column();
    let merged = aggregate(
        &combined,
        query.group_columns(),
        &[(measure, measure, Aggregate::Sum)],
    )?;
    match query {
        SsbQuery::Q1_1 => Ok(merged),
        SsbQuery::Q2_1 => sort(
            &merged,
            &[
                ("d_year", SortOrder::Ascending),
                ("p_brand1", SortOrder::Ascending),
            ],
        ),
        SsbQuery::Q3_1 => sort(
            &merged,
            &[
                ("d_year", SortOrder::Ascending),
                ("revenue", SortOrder::Descending),
            ],
        ),
        SsbQuery::Q4_1 => sort(
            &merged,
            &[
                ("d_year", SortOrder::Ascending),
                ("c_nation", SortOrder::Ascending),
            ],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> SsbDatabase {
        generate_database(0.05, 17)
    }

    #[test]
    fn generator_is_deterministic_and_scaled() {
        let a = generate_database(0.05, 17);
        let b = generate_database(0.05, 17);
        assert_eq!(a.lineorder, b.lineorder);
        assert_eq!(a.part, b.part);
        let small = generate_database(0.02, 17);
        assert!(small.lineorder.rows() < a.lineorder.rows());
        assert!(a.total_bytes() > 100_000);
    }

    #[test]
    fn q1_1_produces_a_single_aggregate() {
        let db = db();
        let result = SsbQuery::Q1_1.run(&db).unwrap();
        assert_eq!(result.rows(), 1);
        let revenue = result.int_column("revenue").unwrap()[0];
        assert!(revenue > 0, "revenue should be positive, got {revenue}");
    }

    #[test]
    fn q2_1_groups_by_year_and_brand() {
        let db = db();
        let result = SsbQuery::Q2_1.run(&db).unwrap();
        assert!(result.rows() > 1);
        assert!(result.column("d_year").is_some());
        assert!(result.column("p_brand1").is_some());
        // Sorted by year ascending.
        let years = result.int_column("d_year").unwrap();
        assert!(years.windows(2).all(|window| window[0] <= window[1]));
    }

    #[test]
    fn q3_1_restricts_to_asia() {
        let db = db();
        let result = SsbQuery::Q3_1.run(&db).unwrap();
        assert!(result.rows() > 0);
        for nation in result.str_column("c_nation").unwrap() {
            assert!(nation.starts_with("ASIA"), "unexpected nation {nation}");
        }
        // Within a year revenues are sorted descending.
        let years = result.int_column("d_year").unwrap();
        let revenues = result.int_column("revenue").unwrap();
        for window in years.iter().zip(revenues).collect::<Vec<_>>().windows(2) {
            if window[0].0 == window[1].0 {
                assert!(window[0].1 >= window[1].1);
            }
        }
    }

    #[test]
    fn q4_1_computes_profit_by_year_and_nation() {
        let db = db();
        let result = SsbQuery::Q4_1.run(&db).unwrap();
        assert!(result.rows() > 0);
        assert!(result.column("profit").is_some());
        for nation in result.str_column("c_nation").unwrap() {
            assert!(nation.starts_with("AMERICA"));
        }
    }

    #[test]
    fn partitioned_execution_matches_single_node() {
        let db = db();
        for query in SsbQuery::ALL {
            let whole = query.run(&db).unwrap();
            for partitions in [2, 7] {
                let split = run_partitioned(&db, query, partitions).unwrap();
                assert_eq!(
                    whole,
                    split,
                    "{} with {partitions} partitions diverged",
                    query.label()
                );
            }
        }
    }

    #[test]
    fn query_labels_and_measures() {
        assert_eq!(SsbQuery::Q1_1.label(), "Query 1.1");
        assert_eq!(SsbQuery::Q4_1.measure_column(), "profit");
        assert_eq!(SsbQuery::Q1_1.group_columns().len(), 0);
        assert_eq!(SsbQuery::ALL.len(), 4);
    }
}
