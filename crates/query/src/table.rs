//! Columnar tables.

use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// 64-bit signed integers (also used for keys, dates and prices).
    Int64,
    /// UTF-8 strings.
    Utf8,
}

/// A single scalar value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A string value.
    Str(String),
}

impl Value {
    /// Returns the integer value, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(value) => Some(*value),
            Value::Str(_) => None,
        }
    }

    /// Returns the string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(value) => Some(value),
            Value::Int(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(value) => write!(f, "{value}"),
            Value::Str(value) => f.write_str(value),
        }
    }
}

/// A column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Integer column.
    Int64(Vec<i64>),
    /// String column.
    Utf8(Vec<String>),
}

impl Column {
    /// The number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(values) => values.len(),
            Column::Utf8(values) => values.len(),
        }
    }

    /// Returns `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64(_) => DataType::Int64,
            Column::Utf8(_) => DataType::Utf8,
        }
    }

    /// The value at `row`.
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int64(values) => Value::Int(values[row]),
            Column::Utf8(values) => Value::Str(values[row].clone()),
        }
    }

    /// Keeps only the rows selected by `mask`.
    pub fn filter(&self, mask: &[bool]) -> Column {
        match self {
            Column::Int64(values) => Column::Int64(
                values
                    .iter()
                    .zip(mask)
                    .filter(|(_, keep)| **keep)
                    .map(|(value, _)| *value)
                    .collect(),
            ),
            Column::Utf8(values) => Column::Utf8(
                values
                    .iter()
                    .zip(mask)
                    .filter(|(_, keep)| **keep)
                    .map(|(value, _)| value.clone())
                    .collect(),
            ),
        }
    }

    /// Gathers the rows at `indices`.
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::Int64(values) => {
                Column::Int64(indices.iter().map(|index| values[*index]).collect())
            }
            Column::Utf8(values) => {
                Column::Utf8(indices.iter().map(|index| values[*index].clone()).collect())
            }
        }
    }

    /// Approximate in-memory size in bytes.
    pub fn byte_size(&self) -> usize {
        match self {
            Column::Int64(values) => values.len() * 8,
            Column::Utf8(values) => values.iter().map(|value| value.len() + 16).sum(),
        }
    }
}

/// Column names and types.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// `(name, type)` pairs in column order.
    pub fields: Vec<(String, DataType)>,
}

impl Schema {
    /// Creates a schema from `(name, type)` pairs.
    pub fn new(fields: &[(&str, DataType)]) -> Self {
        Self {
            fields: fields
                .iter()
                .map(|(name, ty)| (name.to_string(), *ty))
                .collect(),
        }
    }

    /// The index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|(field, _)| field == name)
    }

    /// The number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Returns `true` for a schema without columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

/// A columnar table: a schema plus equally long columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// The schema.
    pub schema: Schema,
    /// The columns, in schema order.
    pub columns: Vec<Column>,
}

impl Table {
    /// Creates a table, validating that all columns have equal length and
    /// match the schema's types.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Result<Self, String> {
        if schema.len() != columns.len() {
            return Err(format!(
                "schema has {} fields but {} columns were provided",
                schema.len(),
                columns.len()
            ));
        }
        let row_count = columns.first().map(Column::len).unwrap_or(0);
        for ((name, data_type), column) in schema.fields.iter().zip(&columns) {
            if column.len() != row_count {
                return Err(format!("column `{name}` has inconsistent length"));
            }
            if column.data_type() != *data_type {
                return Err(format!("column `{name}` has the wrong type"));
            }
        }
        Ok(Self { schema, columns })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.columns.first().map(Column::len).unwrap_or(0)
    }

    /// The column named `name`.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|index| &self.columns[index])
    }

    /// Integer column accessor (errors if missing or not Int64).
    pub fn int_column(&self, name: &str) -> Result<&Vec<i64>, String> {
        match self.column(name) {
            Some(Column::Int64(values)) => Ok(values),
            Some(_) => Err(format!("column `{name}` is not Int64")),
            None => Err(format!("no column named `{name}`")),
        }
    }

    /// String column accessor (errors if missing or not Utf8).
    pub fn str_column(&self, name: &str) -> Result<&Vec<String>, String> {
        match self.column(name) {
            Some(Column::Utf8(values)) => Ok(values),
            Some(_) => Err(format!("column `{name}` is not Utf8")),
            None => Err(format!("no column named `{name}`")),
        }
    }

    /// Keeps only the rows selected by `mask`.
    pub fn filter(&self, mask: &[bool]) -> Table {
        Table {
            schema: self.schema.clone(),
            columns: self
                .columns
                .iter()
                .map(|column| column.filter(mask))
                .collect(),
        }
    }

    /// Gathers the rows at `indices`.
    pub fn take(&self, indices: &[usize]) -> Table {
        Table {
            schema: self.schema.clone(),
            columns: self
                .columns
                .iter()
                .map(|column| column.take(indices))
                .collect(),
        }
    }

    /// Splits the table into `parts` horizontal partitions of near-equal
    /// size (the last partition absorbs the remainder).
    pub fn partition(&self, parts: usize) -> Vec<Table> {
        let parts = parts.max(1);
        let rows = self.rows();
        let chunk = rows.div_ceil(parts);
        (0..parts)
            .map(|part| {
                let start = (part * chunk).min(rows);
                let end = ((part + 1) * chunk).min(rows);
                let indices: Vec<usize> = (start..end).collect();
                self.take(&indices)
            })
            .collect()
    }

    /// Concatenates tables with identical schemas.
    pub fn concat(tables: &[Table]) -> Result<Table, String> {
        let Some(first) = tables.first() else {
            return Ok(Table::default());
        };
        let mut columns = first.columns.clone();
        for table in &tables[1..] {
            if table.schema != first.schema {
                return Err("cannot concatenate tables with different schemas".to_string());
            }
            for (target, source) in columns.iter_mut().zip(&table.columns) {
                match (target, source) {
                    (Column::Int64(target), Column::Int64(source)) => {
                        target.extend_from_slice(source)
                    }
                    (Column::Utf8(target), Column::Utf8(source)) => {
                        target.extend(source.iter().cloned())
                    }
                    _ => return Err("column type mismatch".to_string()),
                }
            }
        }
        Ok(Table {
            schema: first.schema.clone(),
            columns,
        })
    }

    /// Approximate in-memory size in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(Column::byte_size).sum()
    }

    /// Serializes the table as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let header: Vec<&str> = self
            .schema
            .fields
            .iter()
            .map(|(name, _)| name.as_str())
            .collect();
        out.push_str(&header.join(","));
        for row in 0..self.rows() {
            out.push('\n');
            let cells: Vec<String> = self
                .columns
                .iter()
                .map(|column| column.value(row).to_string())
                .collect();
            out.push_str(&cells.join(","));
        }
        out
    }

    /// Parses a CSV produced by [`Table::to_csv`], using `schema` for types.
    pub fn from_csv(schema: Schema, csv: &str) -> Result<Table, String> {
        let mut lines = csv.lines();
        let header = lines.next().ok_or("empty CSV")?;
        let names: Vec<&str> = header.split(',').collect();
        if names.len() != schema.len() {
            return Err(format!(
                "CSV has {} columns but the schema expects {}",
                names.len(),
                schema.len()
            ));
        }
        let mut columns: Vec<Column> = schema
            .fields
            .iter()
            .map(|(_, data_type)| match data_type {
                DataType::Int64 => Column::Int64(Vec::new()),
                DataType::Utf8 => Column::Utf8(Vec::new()),
            })
            .collect();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let cells: Vec<&str> = line.split(',').collect();
            if cells.len() != schema.len() {
                return Err(format!(
                    "row has {} cells, expected {}",
                    cells.len(),
                    schema.len()
                ));
            }
            for (column, cell) in columns.iter_mut().zip(cells) {
                match column {
                    Column::Int64(values) => values.push(
                        cell.trim()
                            .parse()
                            .map_err(|_| format!("`{cell}` is not an integer"))?,
                    ),
                    Column::Utf8(values) => values.push(cell.to_string()),
                }
            }
        }
        Table::new(schema, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::new(
            Schema::new(&[("id", DataType::Int64), ("name", DataType::Utf8)]),
            vec![
                Column::Int64(vec![1, 2, 3, 4]),
                Column::Utf8(vec!["a".into(), "b".into(), "c".into(), "d".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_shape() {
        assert!(Table::new(
            Schema::new(&[("id", DataType::Int64)]),
            vec![Column::Utf8(vec!["x".into()])]
        )
        .is_err());
        assert!(Table::new(
            Schema::new(&[("id", DataType::Int64), ("name", DataType::Utf8)]),
            vec![Column::Int64(vec![1]), Column::Utf8(vec![])]
        )
        .is_err());
        let table = sample();
        assert_eq!(table.rows(), 4);
        assert_eq!(table.byte_size(), 4 * 8 + 4 * 17);
    }

    #[test]
    fn filter_take_and_partition() {
        let table = sample();
        let filtered = table.filter(&[true, false, true, false]);
        assert_eq!(filtered.rows(), 2);
        assert_eq!(filtered.int_column("id").unwrap(), &vec![1, 3]);
        let taken = table.take(&[3, 0]);
        assert_eq!(
            taken.str_column("name").unwrap(),
            &vec!["d".to_string(), "a".to_string()]
        );
        let parts = table.partition(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(Table::rows).sum::<usize>(), 4);
        let rejoined = Table::concat(&parts).unwrap();
        assert_eq!(rejoined, table);
    }

    #[test]
    fn csv_roundtrip() {
        let table = sample();
        let csv = table.to_csv();
        assert!(csv.starts_with("id,name\n1,a"));
        let parsed = Table::from_csv(table.schema.clone(), &csv).unwrap();
        assert_eq!(parsed, table);
        assert!(Table::from_csv(table.schema.clone(), "id\n1").is_err());
        assert!(Table::from_csv(table.schema.clone(), "id,name\nx,a").is_err());
    }

    #[test]
    fn accessors_report_missing_columns() {
        let table = sample();
        assert!(table.int_column("name").is_err());
        assert!(table.str_column("missing").is_err());
        assert_eq!(table.column("id").unwrap().value(2), Value::Int(3));
        assert_eq!(Value::Str("a".into()).as_str(), Some("a"));
        assert_eq!(Value::Int(7).as_int(), Some(7));
    }
}
