//! Serves the demo worker over TCP.
//!
//! ```text
//! dandelion-serve [--addr 127.0.0.1:8080] [--cores N] [--threads N]
//!                 [--max-connections N] [--max-head-bytes N]
//!                 [--max-body-bytes N] [--read-timeout-ms N]
//! ```
//!
//! The worker comes up with every demo application registered (matmul,
//! log processing, image compression, fetch-and-compute, Text2SQL, SSB
//! queries) and the simulated service environment, so the v1 endpoints are
//! immediately invocable with `curl` — see the README's "Serving over the
//! network" section for examples.

use std::process::exit;
use std::sync::Arc;

use dandelion_core::Frontend;
use dandelion_server::{Server, ServerConfig};

struct Options {
    config: ServerConfig,
    cores: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: dandelion-serve [--addr HOST:PORT] [--cores N] [--threads N] \
         [--max-connections N] [--max-head-bytes N] [--max-body-bytes N] \
         [--read-timeout-ms N]"
    );
    exit(2);
}

fn parse_options() -> Options {
    let mut options = Options {
        config: ServerConfig::default(),
        cores: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            usage();
        }
        let Some(value) = args.next() else { usage() };
        let numeric = || -> usize {
            value.parse().unwrap_or_else(|_| {
                eprintln!("{flag} expects a number, got `{value}`");
                exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => options.config.addr = value.clone(),
            "--cores" => options.cores = numeric(),
            "--threads" => options.config.threads = numeric(),
            "--max-connections" => options.config.max_connections = numeric(),
            "--max-head-bytes" => options.config.limits.max_head_bytes = numeric(),
            "--max-body-bytes" => options.config.limits.max_body_bytes = numeric(),
            "--read-timeout-ms" => {
                options.config.read_timeout = std::time::Duration::from_millis(numeric() as u64)
            }
            _ => usage(),
        }
    }
    options
}

fn main() {
    let options = parse_options();
    let worker = match dandelion_apps::setup::demo_worker(options.cores, false) {
        Ok(worker) => worker,
        Err(error) => {
            eprintln!("failed to start worker: {error}");
            exit(1);
        }
    };
    let frontend = Arc::new(Frontend::new(Arc::clone(&worker)));
    let server = match Server::start(options.config, frontend) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("failed to bind: {error}");
            exit(1);
        }
    };
    println!(
        "dandelion-serve listening on http://{}",
        server.local_addr()
    );
    println!("  {} cores, {} registered compositions", options.cores, {
        worker.registry().composition_names().len()
    });
    println!("  try: curl http://{}/healthz", server.local_addr());
    // Serve until the process is killed; the server's threads do the work.
    loop {
        std::thread::park();
    }
}
