//! Serves the demo worker over TCP — standalone, as a cluster gateway, or
//! as a cluster member.
//!
//! ```text
//! dandelion-serve [--addr 127.0.0.1:8080] [--cores N] [--event-loops N]
//!                 [--max-connections N] [--max-head-bytes N]
//!                 [--max-body-bytes N] [--read-timeout-ms N]
//!                 [--rate-limit RPS] [--rate-burst N]
//!                 [--pin-cores] [--single-listener]
//!                 [--gateway] [--member HOST:PORT]... [--join HOST:PORT]
//! ```
//!
//! Roles:
//!
//! * **standalone** (default): one worker behind one server, every demo
//!   application registered and immediately invocable with `curl`.
//! * **gateway** (`--gateway`): no local worker. The server fronts the
//!   cluster members named by `--member` flags (more can join at runtime
//!   via `POST /v1/cluster/members`) and routes v1 traffic across them —
//!   see the README's "Cluster serving" section.
//! * **member** (`--join GATEWAY`): a standalone worker that announces
//!   itself to a running gateway after binding, then serves as usual.
//!
//! Flag combinations are validated up front (a clear message and exit code
//! `2`, never a panic), and the *actually bound* address is reported on
//! startup — `--addr 127.0.0.1:0` picks an ephemeral port and prints it.

use std::process::exit;
use std::sync::Arc;

use dandelion_core::Frontend;
use dandelion_server::{GatewayConfig, RateLimit, Router, Server, ServerConfig};

struct Options {
    config: ServerConfig,
    cores: usize,
    /// Run as the cluster gateway (no local worker).
    gateway: bool,
    /// Members a gateway joins at startup.
    members: Vec<String>,
    /// Gateway a member announces itself to after binding.
    join: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: dandelion-serve [--addr HOST:PORT] [--cores N] [--event-loops N] \
         [--max-connections N] [--max-head-bytes N] [--max-body-bytes N] \
         [--read-timeout-ms N] [--rate-limit RPS] [--rate-burst N] \
         [--pin-cores] [--single-listener] \
         [--gateway] [--member HOST:PORT]... [--join HOST:PORT]"
    );
    exit(2);
}

fn invalid(message: &str) -> ! {
    eprintln!("invalid options: {message}");
    exit(2);
}

fn parse_options() -> Options {
    let mut options = Options {
        config: ServerConfig::default(),
        // The worker needs one compute plus one communication core, so the
        // default is floored at 2 even on single-core machines.
        cores: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
            .max(2),
        gateway: false,
        members: Vec::new(),
        join: None,
    };
    let mut rate_limit: Option<u32> = None;
    let mut rate_burst: Option<u32> = None;
    let mut event_loops_flag = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            usage();
        }
        if flag == "--gateway" {
            options.gateway = true;
            continue;
        }
        if flag == "--pin-cores" {
            options.config.pin_cores = true;
            continue;
        }
        // Opt out of `SO_REUSEPORT` accept sharding: one listener owned by
        // loop 0, placing connections on the least-loaded loop.
        if flag == "--single-listener" {
            options.config.reuseport = false;
            continue;
        }
        let Some(value) = args.next() else { usage() };
        let numeric = || -> usize {
            value.parse().unwrap_or_else(|_| {
                eprintln!("{flag} expects a number, got `{value}`");
                exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => options.config.addr = value.clone(),
            "--cores" => options.cores = numeric(),
            "--event-loops" => {
                options.config.event_loops = numeric();
                event_loops_flag = true;
            }
            "--max-connections" => options.config.max_connections = numeric(),
            "--max-head-bytes" => options.config.limits.max_head_bytes = numeric(),
            "--max-body-bytes" => options.config.limits.max_body_bytes = numeric(),
            "--read-timeout-ms" => {
                options.config.read_timeout = std::time::Duration::from_millis(numeric() as u64)
            }
            "--rate-limit" => rate_limit = Some(numeric() as u32),
            "--rate-burst" => rate_burst = Some(numeric() as u32),
            "--member" => options.members.push(value.clone()),
            "--join" => options.join = Some(value.clone()),
            _ => usage(),
        }
    }
    // Flag-combination validation, before any resource is created.
    if options.cores < 2 {
        invalid("--cores must be >= 2 (one compute core plus one communication core)");
    }
    match (rate_limit, rate_burst) {
        (Some(rps), burst) => {
            if rps == 0 {
                invalid("--rate-limit must be >= 1 request/second");
            }
            // Default burst: double the sustained rate.
            options.config.rate_limit = Some(RateLimit {
                requests_per_sec: rps,
                burst: burst.unwrap_or(rps.saturating_mul(2)).max(1),
            });
        }
        (None, Some(_)) => invalid("--rate-burst requires --rate-limit"),
        (None, None) => {}
    }
    // `0` means "auto" in the config but is almost certainly a mistake on
    // the command line; the explicit flag must name a real count.
    if event_loops_flag && options.config.event_loops == 0 {
        invalid("--event-loops must be >= 1");
    }
    if options.gateway && options.join.is_some() {
        invalid("--gateway and --join are mutually exclusive (a gateway is not a member)");
    }
    if !options.gateway && !options.members.is_empty() {
        invalid("--member requires --gateway");
    }
    if let Err(problem) = options.config.validate() {
        invalid(&problem);
    }
    options
}

/// Gateway role: no local worker; route across the members.
fn run_gateway(options: Options) -> ! {
    let router = Router::start(GatewayConfig::default());
    let event_loops = options.config.resolved_event_loops();
    let members = options.members.clone();
    let server = match Server::start_gateway(options.config, Arc::clone(&router)) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("failed to bind: {error}");
            exit(1);
        }
    };
    for member in &members {
        match member.parse() {
            Ok(addr) => match router.join(addr) {
                Ok(node) => println!("  member {member} joined as {node}"),
                Err(problem) => eprintln!("  member {member} failed to join: {problem}"),
            },
            Err(_) => invalid(&format!("--member expects HOST:PORT, got `{member}`")),
        }
    }
    println!(
        "dandelion-serve gateway listening on http://{}",
        server.local_addr()
    );
    println!(
        "  {} event loops, {} members",
        event_loops,
        router.member_rows().len()
    );
    println!(
        "  try: curl http://{}/v1/cluster/members",
        server.local_addr()
    );
    loop {
        std::thread::park();
    }
}

/// Announces a member's bound address to its gateway.
fn announce_to_gateway(gateway: &str, local: std::net::SocketAddr) {
    use dandelion_http::HttpRequest;
    use dandelion_server::HttpClientConnection;
    let body = format!("{{\"addr\":\"{local}\"}}").into_bytes();
    let result = HttpClientConnection::connect(gateway, std::time::Duration::from_secs(2))
        .and_then(|mut client| client.request(&HttpRequest::post("/v1/cluster/members", body)));
    match result {
        Ok(response) if response.status.is_success() => {
            println!("  joined gateway {gateway}");
        }
        Ok(response) => eprintln!(
            "  gateway {gateway} refused the join ({}): {}",
            response.status.0,
            response.body_text()
        ),
        Err(error) => eprintln!("  could not reach gateway {gateway}: {error}"),
    }
}

fn main() {
    let options = parse_options();
    if options.gateway {
        run_gateway(options);
    }
    let worker = match dandelion_apps::setup::demo_worker(options.cores, false) {
        Ok(worker) => worker,
        Err(error) => {
            eprintln!("failed to start worker: {error}");
            exit(1);
        }
    };
    let frontend = Arc::new(Frontend::new(Arc::clone(&worker)));
    let event_loops = options.config.resolved_event_loops();
    let join = options.join.clone();
    let server = match Server::start(options.config, frontend) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("failed to bind: {error}");
            exit(1);
        }
    };
    // The *bound* address: with `--addr host:0` this carries the ephemeral
    // port the kernel picked.
    println!(
        "dandelion-serve listening on http://{}",
        server.local_addr()
    );
    println!(
        "  {} cores, {} event loops, {} registered compositions",
        options.cores,
        event_loops,
        worker.registry().composition_names().len()
    );
    println!("  try: curl http://{}/healthz", server.local_addr());
    if let Some(gateway) = join {
        announce_to_gateway(&gateway, server.local_addr());
    }
    // Serve until the process is killed; the server's threads do the work.
    loop {
        std::thread::park();
    }
}
