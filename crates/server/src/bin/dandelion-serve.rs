//! Serves the demo worker over TCP.
//!
//! ```text
//! dandelion-serve [--addr 127.0.0.1:8080] [--cores N] [--event-loops N]
//!                 [--max-connections N] [--max-head-bytes N]
//!                 [--max-body-bytes N] [--read-timeout-ms N]
//!                 [--rate-limit RPS] [--rate-burst N]
//! ```
//!
//! The worker comes up with every demo application registered (matmul,
//! log processing, image compression, fetch-and-compute, Text2SQL, SSB
//! queries) and the simulated service environment, so the v1 endpoints are
//! immediately invocable with `curl` — see the README's "Serving over the
//! network" section for examples.
//!
//! Flag combinations are validated up front (a clear message and exit code
//! `2`, never a panic), and the *actually bound* address is reported on
//! startup — `--addr 127.0.0.1:0` picks an ephemeral port and prints it.

use std::process::exit;
use std::sync::Arc;

use dandelion_core::Frontend;
use dandelion_server::{RateLimit, Server, ServerConfig};

struct Options {
    config: ServerConfig,
    cores: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: dandelion-serve [--addr HOST:PORT] [--cores N] [--event-loops N] \
         [--max-connections N] [--max-head-bytes N] [--max-body-bytes N] \
         [--read-timeout-ms N] [--rate-limit RPS] [--rate-burst N]"
    );
    exit(2);
}

fn invalid(message: &str) -> ! {
    eprintln!("invalid options: {message}");
    exit(2);
}

fn parse_options() -> Options {
    let mut options = Options {
        config: ServerConfig::default(),
        // The worker needs one compute plus one communication core, so the
        // default is floored at 2 even on single-core machines.
        cores: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
            .max(2),
    };
    let mut rate_limit: Option<u32> = None;
    let mut rate_burst: Option<u32> = None;
    let mut event_loops_flag = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            usage();
        }
        let Some(value) = args.next() else { usage() };
        let numeric = || -> usize {
            value.parse().unwrap_or_else(|_| {
                eprintln!("{flag} expects a number, got `{value}`");
                exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => options.config.addr = value.clone(),
            "--cores" => options.cores = numeric(),
            "--event-loops" => {
                options.config.event_loops = numeric();
                event_loops_flag = true;
            }
            "--max-connections" => options.config.max_connections = numeric(),
            "--max-head-bytes" => options.config.limits.max_head_bytes = numeric(),
            "--max-body-bytes" => options.config.limits.max_body_bytes = numeric(),
            "--read-timeout-ms" => {
                options.config.read_timeout = std::time::Duration::from_millis(numeric() as u64)
            }
            "--rate-limit" => rate_limit = Some(numeric() as u32),
            "--rate-burst" => rate_burst = Some(numeric() as u32),
            _ => usage(),
        }
    }
    // Flag-combination validation, before any resource is created.
    if options.cores < 2 {
        invalid("--cores must be >= 2 (one compute core plus one communication core)");
    }
    match (rate_limit, rate_burst) {
        (Some(rps), burst) => {
            if rps == 0 {
                invalid("--rate-limit must be >= 1 request/second");
            }
            // Default burst: double the sustained rate.
            options.config.rate_limit = Some(RateLimit {
                requests_per_sec: rps,
                burst: burst.unwrap_or(rps.saturating_mul(2)).max(1),
            });
        }
        (None, Some(_)) => invalid("--rate-burst requires --rate-limit"),
        (None, None) => {}
    }
    // `0` means "auto" in the config but is almost certainly a mistake on
    // the command line; the explicit flag must name a real count.
    if event_loops_flag && options.config.event_loops == 0 {
        invalid("--event-loops must be >= 1");
    }
    if let Err(problem) = options.config.validate() {
        invalid(&problem);
    }
    options
}

fn main() {
    let options = parse_options();
    let worker = match dandelion_apps::setup::demo_worker(options.cores, false) {
        Ok(worker) => worker,
        Err(error) => {
            eprintln!("failed to start worker: {error}");
            exit(1);
        }
    };
    let frontend = Arc::new(Frontend::new(Arc::clone(&worker)));
    let event_loops = options.config.resolved_event_loops();
    let server = match Server::start(options.config, frontend) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("failed to bind: {error}");
            exit(1);
        }
    };
    // The *bound* address: with `--addr host:0` this carries the ephemeral
    // port the kernel picked.
    println!(
        "dandelion-serve listening on http://{}",
        server.local_addr()
    );
    println!(
        "  {} cores, {} event loops, {} registered compositions",
        options.cores,
        event_loops,
        worker.registry().composition_names().len()
    );
    println!("  try: curl http://{}/healthz", server.local_addr());
    // Serve until the process is killed; the server's threads do the work.
    loop {
        std::thread::park();
    }
}
