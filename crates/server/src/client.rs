//! A minimal blocking HTTP/1.1 client for loopback benchmarking and tests.
//!
//! This is the in-repo load generator's transport: one keep-alive
//! connection per client, requests serialized with the same vectored
//! [`Rope`](dandelion_common::Rope) writes the server uses, responses
//! decoded incrementally with [`ResponseDecoder`]. It is intentionally not
//! a general HTTP client — no TLS, no chunked bodies, no redirects — just
//! enough to drive the v1 API over a real socket.

use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use dandelion_common::KIB;
use dandelion_http::{HttpRequest, HttpResponse, ParseLimits, ResponseDecoder};

/// Bytes requested from the kernel per read.
const READ_CHUNK: usize = 64 * KIB;

/// A blocking keep-alive connection to a Dandelion server.
pub struct HttpClientConnection {
    stream: TcpStream,
    decoder: ResponseDecoder,
}

impl HttpClientConnection {
    /// Connects with a read timeout (slow servers surface as errors rather
    /// than hangs).
    pub fn connect(addr: impl ToSocketAddrs, read_timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout))?;
        Ok(Self {
            stream,
            decoder: ResponseDecoder::new(ParseLimits::default()),
        })
    }

    /// Sends a request without waiting for its response (pipelining).
    pub fn send(&mut self, request: &HttpRequest) -> io::Result<()> {
        request.to_rope().write_to(&mut self.stream)?;
        self.stream.flush()
    }

    /// Reads the next response off the connection.
    pub fn receive(&mut self) -> io::Result<HttpResponse> {
        loop {
            match self.decoder.next_response() {
                Ok(Some(response)) => return Ok(response),
                Ok(None) => {
                    if self.decoder.read_from(&mut self.stream, READ_CHUNK)? == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed the connection mid-response",
                        ));
                    }
                }
                Err(error) => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, error));
                }
            }
        }
    }

    /// Sends a request and waits for its response.
    pub fn request(&mut self, request: &HttpRequest) -> io::Result<HttpResponse> {
        self.send(request)?;
        self.receive()
    }
}
