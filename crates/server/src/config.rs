//! Configuration of the network server.

use std::time::Duration;

use dandelion_common::KIB;
use dandelion_http::ParseLimits;

use crate::rate::RateLimit;

/// Tunables of the TCP serving layer.
///
/// The defaults serve loopback benchmarks and tests well; a deployment
/// mostly adjusts `addr`, `event_loops` and the admission limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Address to bind (`host:port`; port `0` picks an ephemeral port).
    pub addr: String,
    /// Event-loop threads multiplexing all connections; `0` resolves to a
    /// core-derived default. A connection consumes memory only — never a
    /// thread — so a small pool serves thousands of mostly-idle keep-alive
    /// clients.
    pub event_loops: usize,
    /// Sharded accept (the default): every event loop binds its own
    /// `SO_REUSEPORT` listener and the kernel load-balances incoming
    /// connections across them, so no loop is the admission chokepoint.
    /// `false` falls back to the single listener owned by loop 0 with
    /// least-loaded placement over the loop gauges — a deterministic path
    /// placement-sensitive tests (and kernels without `SO_REUSEPORT`
    /// balancing) can rely on.
    pub reuseport: bool,
    /// Pin each event-loop thread to one core (`loop index % cores`), so a
    /// connection's buffers, slab entry and pool allocations stay on one
    /// core's cache hierarchy. Off by default: pinning helps a dedicated
    /// serving node and hurts a box shared with other workloads.
    pub pin_cores: bool,
    /// Admission control: connections held open concurrently. Further
    /// clients get `503` and an immediate close.
    pub max_connections: usize,
    /// Per-request head/body size limits (oversized requests are rejected
    /// with `431`/`413` before they are buffered in full).
    pub limits: ParseLimits,
    /// Deadline for a request to finish arriving once its first byte is in,
    /// and for an idle keep-alive connection to show a next request. A
    /// mid-request stall past it gets `408` and a close; an idle connection
    /// is closed silently (counted in `idle_closed`).
    pub read_timeout: Duration,
    /// Deadline for an in-flight response to make write progress. A client
    /// that stops reading (zero bytes drained for this long) is closed
    /// silently and counted in `write_timeouts` — it would otherwise pin
    /// its response buffers until drain.
    pub write_timeout: Duration,
    /// How long shutdown waits for in-flight invocations to settle — and
    /// the hard ceiling on how long a draining event loop keeps unfinished
    /// connections open.
    pub drain_timeout: Duration,
    /// Bytes requested from the kernel per socket read.
    pub read_chunk_bytes: usize,
    /// Per-client-IP token-bucket rate limit applied before request
    /// dispatch; `None` disables it. Over-limit requests are answered with
    /// `429` and the stable `rate_limited` code, the connection stays open.
    pub rate_limit: Option<RateLimit>,
    /// Responses a connection may have queued or in flight before the
    /// server stops reading further pipelined requests from it (read
    /// interest resumes as the backlog drains).
    pub max_pipelined: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".to_string(),
            event_loops: 0,
            reuseport: true,
            pin_cores: false,
            max_connections: 4096,
            limits: ParseLimits::default(),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(30),
            read_chunk_bytes: 64 * KIB,
            rate_limit: None,
            max_pipelined: 64,
        }
    }
}

impl ServerConfig {
    /// The event-loop count after resolving the `0` = core-derived default:
    /// one loop per available core, capped at 8 — readiness-driven loops
    /// are I/O bound, so a handful multiplexes tens of thousands of
    /// connections and the worker's engines get the remaining cores.
    pub fn resolved_event_loops(&self) -> usize {
        if self.event_loops > 0 {
            return self.event_loops;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
            .min(8)
    }

    /// Validates the configuration, returning a human-readable description
    /// of the first problem. [`Server::start`](crate::Server::start) calls
    /// this so misconfiguration is a clear error, not a panic or a hang.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_connections == 0 {
            return Err("max_connections must be >= 1".to_string());
        }
        if self.read_chunk_bytes == 0 {
            return Err("read_chunk_bytes must be >= 1".to_string());
        }
        if self.max_pipelined == 0 {
            return Err("max_pipelined must be >= 1".to_string());
        }
        if self.limits.max_head_bytes < 16 {
            return Err("limits.max_head_bytes must be >= 16 (a minimal request line)".to_string());
        }
        if self.read_timeout.is_zero() {
            return Err("read_timeout must be non-zero".to_string());
        }
        if self.write_timeout.is_zero() {
            return Err("write_timeout must be non-zero".to_string());
        }
        if let Some(rate) = &self.rate_limit {
            if rate.requests_per_sec == 0 {
                return Err("rate_limit.requests_per_sec must be >= 1".to_string());
            }
            if rate.burst == 0 {
                return Err("rate_limit.burst must be >= 1".to_string());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_resolve_event_loops_from_the_machine() {
        let config = ServerConfig::default();
        assert!((1..=8).contains(&config.resolved_event_loops()));
        let fixed = ServerConfig {
            event_loops: 3,
            ..ServerConfig::default()
        };
        assert_eq!(fixed.resolved_event_loops(), 3);
    }

    #[test]
    fn validation_catches_degenerate_settings() {
        assert!(ServerConfig::default().validate().is_ok());
        let no_conns = ServerConfig {
            max_connections: 0,
            ..ServerConfig::default()
        };
        assert!(no_conns.validate().unwrap_err().contains("max_connections"));
        let zero_rate = ServerConfig {
            rate_limit: Some(RateLimit {
                requests_per_sec: 0,
                burst: 8,
            }),
            ..ServerConfig::default()
        };
        assert!(zero_rate.validate().unwrap_err().contains("rate_limit"));
        let zero_chunk = ServerConfig {
            read_chunk_bytes: 0,
            ..ServerConfig::default()
        };
        assert!(zero_chunk.validate().is_err());
    }
}
