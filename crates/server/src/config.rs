//! Configuration of the network server.

use std::time::Duration;

use dandelion_common::KIB;
use dandelion_http::ParseLimits;

/// Tunables of the TCP serving layer.
///
/// The defaults serve loopback benchmarks and tests well; a deployment
/// mostly adjusts `addr`, `threads` and the admission limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Address to bind (`host:port`; port `0` picks an ephemeral port).
    pub addr: String,
    /// Connection-handler threads; `0` means one per available core.
    pub threads: usize,
    /// Admission control: connections accepted concurrently (queued +
    /// being served). Further clients get `503` and an immediate close.
    pub max_connections: usize,
    /// Per-request head/body size limits (oversized requests are rejected
    /// with `431`/`413` before they are buffered in full).
    pub limits: ParseLimits,
    /// Read deadline per socket read. A client that stalls mid-request
    /// longer than this gets `408` and the connection is closed, so slow
    /// clients cannot pin a handler; an idle keep-alive connection is
    /// closed silently.
    pub read_timeout: Duration,
    /// How long shutdown waits for in-flight invocations to settle.
    pub drain_timeout: Duration,
    /// Bytes requested from the kernel per socket read.
    pub read_chunk_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".to_string(),
            threads: 0,
            max_connections: 256,
            limits: ParseLimits::default(),
            read_timeout: Duration::from_secs(5),
            drain_timeout: Duration::from_secs(30),
            read_chunk_bytes: 64 * KIB,
        }
    }
}

impl ServerConfig {
    /// The handler-thread count after resolving the `0` = per-core default.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_resolve_threads_from_the_machine() {
        let config = ServerConfig::default();
        assert!(config.resolved_threads() >= 1);
        let fixed = ServerConfig {
            threads: 3,
            ..ServerConfig::default()
        };
        assert_eq!(fixed.resolved_threads(), 3);
    }
}
